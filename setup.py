"""Shim so legacy ``python setup.py develop`` works in offline environments
where the ``wheel`` package (needed by PEP 660 editable installs) is absent.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
