"""Protocol-vs-protocol ratio series and surfaces (Figs. 5, 6, 8, 9).

The paper's comparative figures all plot *ratios*: waste ratios against
DOUBLE-NBL at fixed MTBF (Figs. 5/8) and success-probability ratios over
(M, T) grids (Figs. 6/9).  Ratios where the denominator saturates (waste 1
/ success 0) are returned as ``nan`` rather than garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.protocols import ProtocolSpec, get_protocol
from ..experiments.scenarios import Scenario, get_scenario
from .sweep import risk_surface, waste_cut

__all__ = ["RatioSurface", "waste_ratio_cut", "ratio_surface"]


@dataclass(frozen=True)
class RatioSurface:
    """Ratio of two risk surfaces over the same (M, T) grid."""

    numerator: str
    denominator: str
    scenario: str
    m_grid: np.ndarray
    t_grid: np.ndarray
    ratio: np.ndarray
    meta: dict = field(default_factory=dict)


def _safe_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(den > 0, num / den, np.nan)
    return out


def waste_ratio_cut(
    numerator: ProtocolSpec | str,
    denominator: ProtocolSpec | str,
    scenario: Scenario | str,
    *,
    M: float | str | None = None,
    num_phi: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Waste ratio vs ``φ/R`` at fixed MTBF (Fig. 5/8 series).

    Returns ``(phi_over_r, ratio)``; the denominator protocol's waste must
    stay below 1 for the ratio to be finite.
    """
    scenario = get_scenario(scenario)
    x_num, w_num = waste_cut(numerator, scenario, M=M, num_phi=num_phi)
    x_den, w_den = waste_cut(denominator, scenario, M=M, num_phi=num_phi)
    assert np.allclose(x_num, x_den)
    mask_saturated = (w_num >= 1.0) | (w_den >= 1.0)
    ratio = _safe_ratio(w_num, w_den)
    return x_num, np.where(mask_saturated, np.nan, ratio)


def ratio_surface(
    numerator: ProtocolSpec | str,
    denominator: ProtocolSpec | str,
    scenario: Scenario | str,
    *,
    theta_policy: str = "max",
    num_m: int = 31,
    num_t: int = 30,
    method: str = "paper",
) -> RatioSurface:
    """Success-probability ratio over the (M, T) grid (Fig. 6/9 surfaces).

    A value below 1 means the *numerator* protocol is more likely to fail;
    the paper plots e.g. NBL/BOF (Fig. 6a) and BOF/TRIPLE (Fig. 6b).
    """
    num_spec = get_protocol(numerator)
    den_spec = get_protocol(denominator)
    scenario = get_scenario(scenario)
    s_num = risk_surface(
        num_spec, scenario, theta_policy=theta_policy,
        num_m=num_m, num_t=num_t, method=method,
    )
    s_den = risk_surface(
        den_spec, scenario, theta_policy=theta_policy,
        num_m=num_m, num_t=num_t, method=method,
    )
    return RatioSurface(
        numerator=num_spec.key,
        denominator=den_spec.key,
        scenario=scenario.key,
        m_grid=s_num.m_grid,
        t_grid=s_num.t_grid,
        ratio=_safe_ratio(s_num.success, s_den.success),
        meta={"theta_policy": theta_policy, "method": method},
    )
