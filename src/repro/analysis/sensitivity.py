"""Local sensitivity analysis of the optimal waste.

The paper's §VIII flags the overlap factor ``α`` as the parameter whose
"refined values" future work should measure.  This module quantifies how
much each model parameter actually matters: central finite-difference
sensitivities ``∂WASTE*/∂p`` and dimensionless elasticities
``(p/WASTE*)·∂WASTE*/∂p`` of the waste-at-optimum with respect to every
scalar parameter, at a given operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..core.waste import waste_at_optimum
from ..errors import ParameterError

__all__ = ["Sensitivity", "waste_sensitivities", "elasticity"]

#: Parameters the waste responds to (``n`` only enters the risk model).
_SENSITIVITY_FIELDS = ("D", "delta", "R", "alpha", "M")


@dataclass(frozen=True)
class Sensitivity:
    """Finite-difference sensitivity of the optimal waste to one field."""

    field: str
    value: float
    waste: float
    derivative: float
    elasticity: float


def _waste_at(spec: ProtocolSpec, params: Parameters, phi_over_r: float) -> float:
    # Hold the *normalised* overhead fixed: perturbing R rescales phi too,
    # matching how the figures parameterise the protocols.
    phi = phi_over_r * params.R
    return float(waste_at_optimum(spec, params, phi).total)


def waste_sensitivities(
    spec: ProtocolSpec | str,
    params: Parameters,
    phi: float,
    *,
    rel_step: float = 1e-4,
) -> dict[str, Sensitivity]:
    """Central-difference sensitivities of the optimal waste.

    ``phi`` is interpreted at the base point and held fixed *relative to
    R* under perturbations.  Fields with value 0 (e.g. ``D`` in the Base
    scenario) use a one-sided forward difference with an absolute step.
    """
    spec = get_protocol(spec)
    if not 0 < rel_step < 0.1:
        raise ParameterError("rel_step must lie in (0, 0.1)")
    phi_over_r = float(phi) / params.R
    base_waste = _waste_at(spec, params, phi_over_r)
    out: dict[str, Sensitivity] = {}
    for name in _SENSITIVITY_FIELDS:
        value = float(getattr(params, name))
        if value != 0.0:
            step = abs(value) * rel_step
            lo = params.with_updates(**{name: value - step})
            hi = params.with_updates(**{name: value + step})
            deriv = (_waste_at(spec, hi, phi_over_r) - _waste_at(spec, lo, phi_over_r)) / (
                2.0 * step
            )
        else:
            step = rel_step * params.R  # absolute step scaled to the platform
            hi = params.with_updates(**{name: step})
            deriv = (_waste_at(spec, hi, phi_over_r) - base_waste) / step
        elas = deriv * value / base_waste if base_waste > 0 and value != 0 else np.nan
        out[name] = Sensitivity(
            field=name,
            value=value,
            waste=base_waste,
            derivative=float(deriv),
            elasticity=float(elas) if np.isfinite(elas) else float("nan"),
        )
    return out


def elasticity(
    spec: ProtocolSpec | str, params: Parameters, phi: float, field: str
) -> float:
    """Convenience accessor: one field's elasticity (see module docstring)."""
    if field not in _SENSITIVITY_FIELDS:
        raise ParameterError(
            f"field must be one of {_SENSITIVITY_FIELDS}, got {field!r}"
        )
    return waste_sensitivities(spec, params, phi)[field].elasticity
