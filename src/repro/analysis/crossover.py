"""Crossover finding: where one protocol stops beating another.

Two crossovers the paper reads off its figures, computed here by root
finding instead of eyeball:

* :func:`find_phi_crossover` — the ``φ/R`` at which two protocols' optimal
  wastes are equal at fixed MTBF (Fig. 5: TRIPLE/DOUBLE-NBL crosses 1
  between φ/R ≈ 0.5 and 0.6 on Base).
* :func:`find_mtbf_frontier` — for each ``φ``, the smallest MTBF at which
  a protocol's waste stays below a target (the "waste will be important
  when failures hit more than once a day" statement of §VI-B).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as spo

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..core.waste import waste_at_optimum
from ..errors import ParameterError

__all__ = ["find_phi_crossover", "find_mtbf_frontier"]


def find_phi_crossover(
    spec_a: ProtocolSpec | str,
    spec_b: ProtocolSpec | str,
    params: Parameters,
    *,
    lo: float = 1e-6,
    hi: float | None = None,
) -> float | None:
    """``φ`` where ``waste_a(φ) = waste_b(φ)`` at optimal periods.

    Searches ``[lo, hi]`` (defaults to ``(0, R]``); returns ``None`` when
    the difference does not change sign on the bracket (one protocol
    dominates throughout).
    """
    spec_a = get_protocol(spec_a)
    spec_b = get_protocol(spec_b)
    hi = params.R if hi is None else hi
    if not 0 <= lo < hi <= params.R:
        raise ParameterError("need 0 <= lo < hi <= R")

    def diff(phi: float) -> float:
        wa = float(waste_at_optimum(spec_a, params, phi).total)
        wb = float(waste_at_optimum(spec_b, params, phi).total)
        return wa - wb

    f_lo, f_hi = diff(lo), diff(hi)
    if not np.isfinite(f_lo) or not np.isfinite(f_hi) or f_lo * f_hi > 0:
        return None
    root = spo.brentq(diff, lo, hi, xtol=1e-10 * params.R)
    return float(root)


def find_mtbf_frontier(
    spec: ProtocolSpec | str,
    params: Parameters,
    phi: float,
    *,
    waste_target: float = 0.5,
    m_lo: float = 1.0,
    m_hi: float = 30 * 86400.0,
) -> float:
    """Smallest MTBF at which the optimal waste drops to ``waste_target``.

    The waste-at-optimum is decreasing in ``M``, so this is a bisection on
    a monotone function.  Returns ``inf`` if even ``m_hi`` cannot reach the
    target, and ``m_lo`` if the target is already met there.
    """
    spec = get_protocol(spec)
    if not 0 < waste_target < 1:
        raise ParameterError("waste_target must lie in (0, 1)")
    if not 0 < m_lo < m_hi:
        raise ParameterError("need 0 < m_lo < m_hi")

    def value(M: float) -> float:
        return float(waste_at_optimum(spec, params, phi, M=M).total) - waste_target

    if value(m_hi) > 0:
        return float("inf")
    if value(m_lo) <= 0:
        return float(m_lo)
    return float(spo.brentq(value, m_lo, m_hi, xtol=1e-6, rtol=1e-12))
