"""Joint (φ, P) tuning: how much overhead should a runtime aim for?

The paper treats the overhead ``φ`` as an exogenous property of the
application ("we plan to … propose refined values", §VIII), and all its
figures sweep it.  But through the overlap model, ``φ`` is partly a
*choice*: a runtime can send the buddy image faster (small ``θ``, large
``φ``) or slower (large ``θ``, small ``φ``).  The trade-off in the waste
model:

* smaller ``φ`` shrinks the fault-free cost ``c`` (``δ+φ`` or ``2φ``) —
  good;
* but stretches ``θ = θmin + α(θmin−φ)``, which grows the per-failure
  constant ``A = D + R + θ`` *and* the risk window — bad when failures
  are frequent.

So there is an interior optimum ``φ*`` whenever ``M`` is small enough
that the failure term competes with the fault-free term.
:func:`optimal_phi` finds it; :func:`optimal_phi_constrained` adds the
bi-criteria twist: the least-waste ``φ`` whose success probability over a
mission time still meets a floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize as spo

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..core.risk import success_probability
from ..core.waste import waste_at_optimum
from ..errors import InfeasibleModelError, ParameterError

__all__ = ["PhiChoice", "optimal_phi", "optimal_phi_constrained"]


@dataclass(frozen=True)
class PhiChoice:
    """A tuned overhead with its consequences."""

    protocol: str
    phi: float
    theta: float
    period: float
    waste: float
    risk_window: float
    #: Success probability over the mission time (nan if no T given).
    success: float = float("nan")


def _waste_of(spec: ProtocolSpec, params: Parameters, phi: float) -> float:
    return float(np.asarray(waste_at_optimum(spec, params, phi).total))


def optimal_phi(
    spec: ProtocolSpec | str, params: Parameters, *, xatol: float = 1e-6
) -> PhiChoice:
    """Waste-minimising overhead ``φ* ∈ [0, R]`` (period re-optimised).

    Uses bounded scalar minimisation; the waste is piecewise-smooth and
    unimodal in ``φ`` on the feasible range (the ``c``/``A`` trade-off),
    with possible boundary optima at 0 (large ``M``) or ``R`` (tiny
    ``M``, where a short window keeps ``A`` below ``M``).
    """
    spec = get_protocol(spec)

    def objective(phi: float) -> float:
        return _waste_of(spec, params, float(np.clip(phi, 0.0, params.R)))

    result = spo.minimize_scalar(
        objective, bounds=(0.0, params.R), method="bounded",
        options={"xatol": xatol * params.R},
    )
    # Compare against the boundaries explicitly: minimize_scalar can sit
    # in a flat saturated region when most of [0, R] is infeasible.
    candidates = [float(result.x), 0.0, params.R]
    phi_star = min(candidates, key=objective)
    w = objective(phi_star)
    if w >= 1.0:
        raise InfeasibleModelError(
            f"{spec.key}: waste saturates for every phi at M={params.M:g}s"
        )
    from ..core.period import optimal_period

    return PhiChoice(
        protocol=spec.key,
        phi=phi_star,
        theta=float(np.asarray(spec.theta(params, phi_star))),
        period=float(optimal_period(spec, params, phi_star)),
        waste=w,
        risk_window=float(np.asarray(spec.risk_window(params, phi_star))),
    )


def optimal_phi_constrained(
    spec: ProtocolSpec | str,
    params: Parameters,
    T: float,
    *,
    min_success: float = 0.999,
    num_grid: int = 257,
) -> PhiChoice | None:
    """Least-waste ``φ`` subject to ``P(success over T) ≥ min_success``.

    Larger ``φ`` always shortens the risk window (θ shrinks), so the
    feasible set is an upper interval of ``[0, R]``; we evaluate on a
    dense grid (both criteria are cheap) and return ``None`` when even
    ``φ = R`` misses the floor — then only a protocol change helps.
    """
    spec = get_protocol(spec)
    if T <= 0:
        raise ParameterError("T must be > 0")
    if not 0 < min_success < 1:
        raise ParameterError("min_success must lie in (0, 1)")
    if num_grid < 2:
        raise ParameterError("num_grid must be >= 2")
    phis = np.linspace(0.0, params.R, num_grid)
    wastes = np.asarray(waste_at_optimum(spec, params, phis).total)
    success = np.asarray(success_probability(spec, params, phis, T))
    ok = (success >= min_success) & (wastes < 1.0)
    if not ok.any():
        return None
    idx = int(np.flatnonzero(ok)[np.argmin(wastes[ok])])
    from ..core.period import optimal_period

    phi_star = float(phis[idx])
    return PhiChoice(
        protocol=spec.key,
        phi=phi_star,
        theta=float(np.asarray(spec.theta(params, phi_star))),
        period=float(optimal_period(spec, params, phi_star)),
        waste=float(wastes[idx]),
        risk_window=float(np.asarray(spec.risk_window(params, phi_star))),
        success=float(success[idx]),
    )
