"""Parameter sweeps producing the paper's figure grids.

All sweeps are single vectorised evaluations (no Python loops over grid
points): the core model broadcasts over ``phi`` (columns) × ``M`` (rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.protocols import ProtocolSpec, get_protocol
from ..core.risk import success_probability
from ..core.waste import waste_at_optimum
from ..errors import ParameterError
from ..experiments.scenarios import Scenario, get_scenario

__all__ = ["WasteSurface", "RiskSurface", "waste_surface", "waste_cut", "risk_surface"]


@dataclass(frozen=True)
class WasteSurface:
    """Waste at the optimal period over a (M, φ) grid (Figs. 4/7 data)."""

    protocol: str
    scenario: str
    m_grid: np.ndarray  #: shape (nm,), seconds
    phi_grid: np.ndarray  #: shape (np,), work units in [0, R]
    waste: np.ndarray  #: shape (nm, np)
    period: np.ndarray  #: optimal period per cell (nan = infeasible)
    meta: dict = field(default_factory=dict)

    @property
    def phi_over_r(self) -> np.ndarray:
        r = self.meta.get("R")
        return self.phi_grid / r if r else self.phi_grid


@dataclass(frozen=True)
class RiskSurface:
    """Success probability over a (M, T) grid (Figs. 6/9 data)."""

    protocol: str
    scenario: str
    m_grid: np.ndarray  #: shape (nm,), seconds
    t_grid: np.ndarray  #: shape (nt,), seconds of platform life
    success: np.ndarray  #: shape (nm, nt)
    risk_window: np.ndarray  #: scalar risk length per M row (same phi)
    meta: dict = field(default_factory=dict)


def waste_surface(
    spec: ProtocolSpec | str,
    scenario: Scenario | str,
    *,
    num_phi: int = 41,
    num_m: int = 49,
) -> WasteSurface:
    """Waste-at-optimum over the scenario's (M, φ) grid.

    Rows sweep the MTBF (log-spaced, 15 s → 1 day), columns sweep
    ``φ ∈ [0, R]`` — exactly the axes of Figures 4 and 7.
    """
    spec = get_protocol(spec)
    scenario = get_scenario(scenario)
    phis = scenario.phi_grid(num_phi)
    ms = scenario.m_grid(num_m)
    params = scenario.parameters(M=ms[0])  # M overridden per-row below
    bd = waste_at_optimum(spec, params, phis[None, :], M=ms[:, None])
    return WasteSurface(
        protocol=spec.key,
        scenario=scenario.key,
        m_grid=ms,
        phi_grid=phis,
        waste=np.asarray(bd.total),
        period=np.asarray(bd.period),
        meta={"R": scenario.R, "alpha": scenario.alpha},
    )


def waste_cut(
    spec: ProtocolSpec | str,
    scenario: Scenario | str,
    *,
    M: float | str | None = None,
    num_phi: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """1-D waste curve vs φ at fixed MTBF (Figs. 5/8 ingredients).

    Returns ``(phi_over_r, waste)``.  ``M`` defaults to the scenario's
    ratio-cut MTBF (7 h in the paper).
    """
    spec = get_protocol(spec)
    scenario = get_scenario(scenario)
    params = scenario.parameters(M=scenario.m_ratio_cut if M is None else M)
    phis = scenario.phi_grid(num_phi)
    w = waste_at_optimum(spec, params, phis).total
    return phis / scenario.R, np.asarray(w)


def risk_surface(
    spec: ProtocolSpec | str,
    scenario: Scenario | str,
    *,
    theta_policy: str = "max",
    num_m: int = 31,
    num_t: int = 30,
    method: str = "paper",
) -> RiskSurface:
    """Success probability over the scenario's (M, T) grid (Figs. 6/9).

    ``theta_policy="max"`` reproduces the paper's worst-case choice
    ``θ = (α+1)R`` (fully stretched window, i.e. ``φ = 0`` — the largest
    possible risk period); ``"min"`` evaluates ``θ = R`` (``φ = R``).
    """
    spec = get_protocol(spec)
    scenario = get_scenario(scenario)
    if theta_policy == "max":
        phi = 0.0
    elif theta_policy == "min":
        phi = scenario.R
    else:
        raise ParameterError("theta_policy must be 'max' or 'min'")
    m_grid, t_grid = scenario.risk_grids(num_m, num_t)
    success = np.empty((m_grid.size, t_grid.size))
    risk_windows = np.empty(m_grid.size)
    for i, m in enumerate(m_grid):  # M enters via params.lam -> per-row eval
        params = scenario.parameters(M=float(m))
        success[i, :] = np.asarray(
            success_probability(spec, params, phi, t_grid, method=method)
        )
        risk_windows[i] = float(np.asarray(spec.risk_window(params, phi)))
    return RiskSurface(
        protocol=spec.key,
        scenario=scenario.key,
        m_grid=m_grid,
        t_grid=t_grid,
        success=success,
        risk_window=risk_windows,
        meta={"phi": phi, "theta_policy": theta_policy, "method": method,
              "n": scenario.n},
    )
