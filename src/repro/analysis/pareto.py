"""Bi-criteria (waste, risk) protocol selection — the paper's punchline
as an operator-facing decision procedure.

The paper argues protocols must be judged on performance *and* risk
(§I, §VII: "a two-criteria assessment").  This module operationalises
that: sweep every protocol over the overhead grid, collect
``(waste-at-optimum, fatal-failure-probability)`` points, extract the
Pareto-efficient set, and pick operating points under either constraint:

* :func:`pareto_front` — the efficient (waste, fatal) points.
* :func:`cheapest_safe` — least waste subject to a success-probability
  floor.
* :func:`safest_within` — highest success subject to a waste ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.parameters import Parameters
from ..core.protocols import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    ProtocolSpec,
)
from ..core.risk import fatal_failure_probability
from ..core.waste import waste_at_optimum
from ..errors import ParameterError

__all__ = ["OperatingPoint", "candidate_points", "pareto_front",
           "cheapest_safe", "safest_within"]

DEFAULT_PROTOCOLS = (DOUBLE_BLOCKING, DOUBLE_NBL, DOUBLE_BOF, TRIPLE, TRIPLE_BOF)


@dataclass(frozen=True)
class OperatingPoint:
    """One (protocol, φ) configuration with both criteria evaluated."""

    protocol: str
    phi: float
    period: float
    waste: float
    fatal_probability: float

    @property
    def success_probability(self) -> float:
        return 1.0 - self.fatal_probability

    def dominates(self, other: "OperatingPoint") -> bool:
        """Weakly better on both criteria, strictly on one."""
        no_worse = (
            self.waste <= other.waste + 1e-15
            and self.fatal_probability <= other.fatal_probability + 1e-15
        )
        better = (
            self.waste < other.waste - 1e-15
            or self.fatal_probability < other.fatal_probability - 1e-15
        )
        return no_worse and better


def candidate_points(
    params: Parameters,
    T: float,
    *,
    protocols: tuple[ProtocolSpec, ...] = DEFAULT_PROTOCOLS,
    num_phi: int = 33,
) -> list[OperatingPoint]:
    """Evaluate every (protocol, φ) candidate on both criteria.

    Infeasible candidates (waste 1) are dropped — they are dominated by
    construction wherever any feasible point exists.
    """
    if T <= 0:
        raise ParameterError("T must be > 0")
    if num_phi < 2:
        raise ParameterError("need at least 2 phi points")
    phis = np.linspace(0.0, params.R, num_phi)
    points: list[OperatingPoint] = []
    for spec in protocols:
        bd = waste_at_optimum(spec, params, phis)
        fatal = np.asarray(
            fatal_failure_probability(spec, params, phis, T), dtype=float
        )
        for i, phi in enumerate(phis):
            w = float(np.asarray(bd.total)[i])
            p = float(np.asarray(bd.period)[i])
            if w >= 1.0 or not np.isfinite(p):
                continue
            points.append(OperatingPoint(
                protocol=spec.key, phi=float(phi), period=p,
                waste=w, fatal_probability=float(fatal[i]),
            ))
    return points


def pareto_front(points: list[OperatingPoint]) -> list[OperatingPoint]:
    """Non-dominated subset, sorted by waste (ties broken by risk).

    Criterion-identical duplicates (e.g. DOUBLE-BLOCKING, whose pinned
    ``φ`` makes every candidate coincide) are collapsed to their first
    representative.
    """
    front = [
        p for p in points
        if not any(q.dominates(p) for q in points)
    ]
    seen: set[tuple[float, float]] = set()
    unique: list[OperatingPoint] = []
    for p in sorted(front, key=lambda p: (p.waste, p.fatal_probability)):
        key = (round(p.waste, 15), round(p.fatal_probability, 15))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def cheapest_safe(
    points: list[OperatingPoint], *, min_success: float
) -> OperatingPoint | None:
    """Least-waste point with success probability ≥ ``min_success``."""
    if not 0 < min_success <= 1:
        raise ParameterError("min_success must lie in (0, 1]")
    eligible = [p for p in points if p.success_probability >= min_success]
    return min(eligible, key=lambda p: p.waste, default=None)


def safest_within(
    points: list[OperatingPoint], *, max_waste: float
) -> OperatingPoint | None:
    """Highest-success point with waste ≤ ``max_waste``."""
    if not 0 < max_waste <= 1:
        raise ParameterError("max_waste must lie in (0, 1]")
    eligible = [p for p in points if p.waste <= max_waste]
    return min(eligible, key=lambda p: p.fatal_probability, default=None)
