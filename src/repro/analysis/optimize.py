"""Independent numerical optimisation of the checkpointing period.

The paper derived its optimal periods with Maple; we replace that with a
two-step verification:

1. the closed forms of :mod:`repro.core.period` (hand-derived in the
   docstrings), and
2. :func:`numeric_optimal_period` — bounded scalar minimisation of the
   exact waste expression via :func:`scipy.optimize.minimize_scalar`,
   entirely independent of the derivation.

:func:`verify_closed_form` runs both and reports the relative
discrepancy; the test suite asserts it below 10⁻⁴ across scenario grids,
which is this library's substitute for the paper's computer-algebra step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize as spo

from ..core.parameters import Parameters
from ..core.period import optimal_period
from ..core.protocols import ProtocolSpec, get_protocol
from ..core.waste import waste
from ..errors import InfeasibleModelError

__all__ = ["numeric_optimal_period", "verify_closed_form", "ClosedFormCheck"]


def numeric_optimal_period(
    spec: ProtocolSpec | str,
    params: Parameters,
    phi: float,
    *,
    upper_factor: float = 8.0,
) -> float:
    """Minimise the waste in ``P`` numerically (bounded golden-section).

    The bracket is ``[P_min, max(upper_factor·√(2cM), 4·P_min)]`` which
    always contains the interior optimum ``√(2c(M−A)) ≤ √(2cM)``.
    Raises :class:`~repro.errors.InfeasibleModelError` when the waste
    saturates at 1 everywhere.
    """
    spec = get_protocol(spec)
    p_min = float(np.asarray(spec.min_period(params, phi)))
    c = float(np.asarray(spec.cost_coefficient(params, phi)))
    hi = max(upper_factor * np.sqrt(max(2.0 * c * params.M, 1e-12)), 4.0 * p_min)

    def objective(P: float) -> float:
        return float(waste(spec, params, phi, P))

    result = spo.minimize_scalar(
        objective, bounds=(p_min, hi), method="bounded",
        options={"xatol": 1e-8 * hi},
    )
    if objective(float(result.x)) >= 1.0 - 1e-12:
        raise InfeasibleModelError(
            f"{spec.key}: waste saturates at 1 for M={params.M:g}s, phi={phi:g}"
        )
    return float(result.x)


@dataclass(frozen=True)
class ClosedFormCheck:
    """Closed-form vs numerical optimum comparison."""

    protocol: str
    phi: float
    M: float
    period_closed: float
    period_numeric: float
    waste_closed: float
    waste_numeric: float

    @property
    def period_rel_error(self) -> float:
        return abs(self.period_closed - self.period_numeric) / self.period_numeric

    @property
    def waste_abs_error(self) -> float:
        return abs(self.waste_closed - self.waste_numeric)


def verify_closed_form(
    spec: ProtocolSpec | str, params: Parameters, phi: float
) -> ClosedFormCheck:
    """Compare Eq. 9/10/15 (clamped) against the scipy optimum."""
    spec = get_protocol(spec)
    p_closed = optimal_period(spec, params, phi)
    if not np.isfinite(p_closed):
        raise InfeasibleModelError(
            f"{spec.key}: closed form infeasible at M={params.M:g}s"
        )
    p_numeric = numeric_optimal_period(spec, params, phi)
    return ClosedFormCheck(
        protocol=spec.key,
        phi=float(phi),
        M=params.M,
        period_closed=float(p_closed),
        period_numeric=p_numeric,
        waste_closed=float(waste(spec, params, phi, p_closed)),
        waste_numeric=float(waste(spec, params, phi, p_numeric)),
    )
