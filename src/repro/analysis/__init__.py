"""Analysis layer: sweeps, ratios, numeric optimisation and sensitivity.

Thin, vectorised conveniences on top of :mod:`repro.core` that turn the
model into the grids/series the paper's figures plot:

``sweep``
    Waste/period/risk surfaces over (φ, M) or (M, T) grids.
``ratios``
    Protocol-vs-protocol ratio surfaces (Figs. 5/6/8/9).
``optimize``
    Independent numerical optimisation of the period via scipy —
    cross-checks the closed forms.
``sensitivity``
    Local sensitivities/elasticities of the waste to each parameter.
``crossover``
    Root-finding for protocol crossover points (e.g. the φ/R where TRIPLE
    stops beating DOUBLE-NBL).
"""

from .sweep import waste_surface, waste_cut, risk_surface, WasteSurface, RiskSurface
from .ratios import ratio_surface, waste_ratio_cut
from .optimize import numeric_optimal_period, verify_closed_form
from .sensitivity import waste_sensitivities, elasticity
from .crossover import find_phi_crossover, find_mtbf_frontier
from .pareto import (
    OperatingPoint,
    candidate_points,
    pareto_front,
    cheapest_safe,
    safest_within,
)
from .tuning import PhiChoice, optimal_phi, optimal_phi_constrained

__all__ = [
    "OperatingPoint",
    "candidate_points",
    "pareto_front",
    "cheapest_safe",
    "safest_within",
    "PhiChoice",
    "optimal_phi",
    "optimal_phi_constrained",
    "waste_surface",
    "waste_cut",
    "risk_surface",
    "WasteSurface",
    "RiskSurface",
    "ratio_surface",
    "waste_ratio_cut",
    "numeric_optimal_period",
    "verify_closed_form",
    "waste_sensitivities",
    "elasticity",
    "find_phi_crossover",
    "find_mtbf_frontier",
]
