"""In-process read-through cache of decoded hot store entries.

Every consumer of :class:`~repro.store.CampaignStore` — the executor's
store-mode cell reads, :class:`~repro.sim.distributed.DistributedBackend`
workers, and ``report --from-spec`` — pays the same per-hit cost on a
warm lookup: read the entry bytes, JSON-decode them, and re-verify the
decoded result against the stored payload (full-key match, payload
digest, serialisation round-trip).  That is the right price to pay
*once* — the store must never silently serve a wrong result — but hot
cells (a report queried in a loop, overlapping campaigns replaying the
same grid rows, a long-lived service answering the same waste-surface
query) re-pay it on every hit.

:class:`HotCellCache` is the fix: a byte-bounded, LRU, process-wide
cache of *already verified* decoded entries.  The store's entries are
immutable by construction (content-addressed, deterministic bytes per
key), so a cached value can never go stale — at worst the entry was
gc-evicted from disk, and serving the cached copy is still
byte-correct.  What changes on a cached re-read is the *verification
level*:

* ``"full"`` on first read (in :meth:`CampaignStore.lookup`): bytes are
  read from disk and the complete integrity check runs before the entry
  is admitted to the cache;
* ``"digest"`` (the default) on cached re-reads: the cached canonical
  payload text is re-hashed and compared against the digest recorded on
  first read — memory corruption is caught, the JSON decode and
  round-trip serialisation are skipped;
* ``"full"`` may be requested for cached re-reads too
  (``CampaignStore(..., cached_verification="full")``): the cached
  result object is additionally re-serialised and compared against the
  cached payload text, catching in-place mutation of the shared result
  object at decode-equivalent cost (disk is still not touched).

One module-level default cache (:func:`default_cache`) is shared by
every ``CampaignStore`` that does not bring its own, so the executor, a
distributed worker's per-claimed-cell lookups and an offline report in
the same process all warm one another.  :func:`configure_cache` resizes
(or disables) that shared cache process-wide.

The cache is keyed on ``(store root, surrogate)`` where the surrogate
(:func:`cache_key`) is a cheap flat tuple of the replica key's scalar
fields — computing the store's real content address costs ~8µs of
canonical-JSON + SHA-256 per call, which would dominate a cache hit.
The surrogate is *not* guaranteed unique (two keys differing only in,
say, their failure-law dict share one), so every hit compares the full
stored key: a mismatch is simply a miss (the caller falls through to
the content-addressed disk path), never a wrong answer.  A lock guards
the map, so concurrent readers (the planned campaign-service threads)
are safe; it is per-process state — distributed workers on other
machines each warm their own.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ParameterError
from ..obs import Counter, Gauge, default_registry

__all__ = [
    "CACHED_VERIFICATION_LEVELS",
    "DEFAULT_CACHE_BYTES",
    "CachedEntry",
    "CacheStats",
    "HotCellCache",
    "cache_key",
    "configure_cache",
    "default_cache",
]

#: Levels a store may re-verify cached re-reads at (see module docstring).
CACHED_VERIFICATION_LEVELS = ("digest", "full")

#: Default byte budget of the shared process-wide cache: large enough to
#: hold the hot rows of a fleet-scale report workload (~100k typical
#: entries), small enough to disappear inside any modern RSS budget.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


def cache_key(key: dict) -> tuple:
    """Cheap hashable surrogate of a replica key, for cache addressing.

    A flat tuple of the key's scalar fields — ~10x cheaper to build
    than the store's canonical-JSON SHA-256 address, which matters
    because the surrogate is computed on *every* lookup, hit or miss.
    Collisions are possible (keys differing only inside nested dicts
    share a surrogate) and harmless: the cache stores the full key and
    every hit compares it, so a collision is a miss, never a mix-up.
    """
    params = key.get("params")
    if not isinstance(params, dict):
        params = {}
    return (
        key.get("protocol"), key.get("phi"), key.get("seed"),
        key.get("trace_seed"), key.get("work_target"),
        key.get("engine"), params.get("M"), params.get("n"),
    )


@dataclass(frozen=True)
class CachedEntry:
    """One verified, decoded store entry as the cache holds it.

    ``payload_text`` is the canonical payload serialisation — exactly the
    byte string (as ``str``) a warm campaign emits for this replica, and
    exactly what ``payload_sha256`` digests.  Keeping it lets a cached
    re-read re-verify at ``"digest"`` level without re-serialising, and
    at ``"full"`` level without touching disk.  ``hash``/``origin``
    record where the bytes came from, so a loose hit can refresh its
    file's gc-LRU clock without recomputing the content address.
    """

    key: dict
    result: object
    payload_text: str
    payload_sha256: str
    hash: str = ""
    origin: str = "loose"

    @property
    def size(self) -> int:
        return len(self.payload_text)

    def verify(self, level: str) -> bool:
        """Re-check this cached entry at ``level``; True when intact."""
        digest = hashlib.sha256(
            self.payload_text.encode("utf-8")
        ).hexdigest()
        if digest != self.payload_sha256:
            return False
        if level == "full":
            from .. import io as repro_io

            return repro_io.dump_result(self.result) == self.payload_text
        return True


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`HotCellCache` (``hits`` are re-reads
    served without disk I/O)."""

    entries: int
    bytes: int
    max_bytes: int
    hits: int
    misses: int
    evictions: int

    def describe(self) -> str:
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (f"{self.entries} entries, {self.bytes}/{self.max_bytes} "
                f"bytes, {self.hits}/{total} hits ({rate:.0%}), "
                f"{self.evictions} evicted")


class HotCellCache:
    """Byte-bounded LRU of verified decoded store entries.

    ``max_bytes <= 0`` builds a disabled cache (every ``get`` misses,
    every ``put`` is dropped) so callers never need a ``None`` branch.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES,
                 *, registry=None):
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], CachedEntry] = \
            OrderedDict()
        # The counters are registry instruments (repro_store_cache_*):
        # per-instance state exactly as before, additionally exported
        # process-wide when a registry is passed (the shared default
        # cache registers into repro.obs.default_registry()).
        self._hits = Counter("repro_store_cache_hits_total",
                             help="Cached re-reads served without disk "
                                  "I/O.")
        self._misses = Counter("repro_store_cache_misses_total",
                               help="Cache probes that fell through to "
                                    "disk.")
        self._evictions = Counter("repro_store_cache_evictions_total",
                                  help="Entries evicted by the byte "
                                       "budget.")
        self._gauge_entries = Gauge("repro_store_cache_entries",
                                    help="Entries resident right now.")
        self._gauge_bytes = Gauge("repro_store_cache_bytes",
                                  help="Payload bytes resident right "
                                       "now.")
        self._gauge_max = Gauge("repro_store_cache_max_bytes",
                                help="Configured byte budget.")
        self._gauge_max.set(self.max_bytes)
        self._bytes = 0
        if registry is not None:
            for instrument in (self._hits, self._misses,
                               self._evictions, self._gauge_entries,
                               self._gauge_bytes, self._gauge_max):
                registry.register(instrument)

    def get(self, root: str, token) -> CachedEntry | None:
        """The entry under ``(root, token)``, LRU-refreshed, or None.

        ``token`` is opaque to the cache — any hashable; the store
        passes :func:`cache_key` surrogates.  Callers MUST compare the
        returned entry's full ``key`` (surrogates can collide).
        """
        with self._lock:
            entry = self._entries.get((root, token))
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end((root, token))
            self._hits.inc()
            return entry

    def peek(self, root: str, token) -> CachedEntry | None:
        """Like :meth:`get` but invisible: no LRU refresh, no counters.

        For bulk preloaders deciding what still needs reading — a peek
        is bookkeeping, not a served read, so it must not inflate the
        hit rate the live counters report."""
        with self._lock:
            return self._entries.get((root, token))

    def put(self, root: str, token, entry: CachedEntry) -> None:
        if entry.size > self.max_bytes:
            return  # would evict everything and still not fit
        with self._lock:
            old = self._entries.pop((root, token), None)
            if old is not None:
                self._bytes -= old.size
            self._entries[(root, token)] = entry
            self._bytes += entry.size
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size
                self._evictions.inc()
            self._gauge_entries.set(len(self._entries))
            self._gauge_bytes.set(self._bytes)

    def invalidate(self, root: str, token) -> None:
        """Drop one entry (a lookup found its copy corrupt)."""
        with self._lock:
            old = self._entries.pop((root, token), None)
            if old is not None:
                self._bytes -= old.size
                self._gauge_entries.set(len(self._entries))
                self._gauge_bytes.set(self._bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._gauge_entries.set(0)
            self._gauge_bytes.set(0)

    def stats(self) -> CacheStats:
        """This cache's counters as a :class:`CacheStats`.

        .. deprecated:: the ad-hoc snapshot shape — now a thin view
           over the cache's registry instruments
           (``repro_store_cache_*``); kept exact per instance for
           existing callers and ``/healthz``.  Prefer the process-wide
           :func:`repro.obs.default_registry` snapshot for anything
           new.
        """
        with self._lock:
            return CacheStats(
                entries=len(self._entries), bytes=self._bytes,
                max_bytes=self.max_bytes, hits=int(self._hits.value),
                misses=int(self._misses.value),
                evictions=int(self._evictions.value),
            )


_default_cache = HotCellCache(registry=default_registry())
_default_lock = threading.Lock()


def default_cache() -> HotCellCache:
    """The process-wide cache shared by every store that does not bring
    its own."""
    return _default_cache


def configure_cache(max_bytes: int) -> HotCellCache:
    """Resize the shared process-wide cache (0 disables it).

    Replaces the shared instance, so stores constructed *afterwards* see
    the new budget; stores already holding the old instance keep it (a
    cache is per-consumer state, never coordination).
    """
    global _default_cache
    if max_bytes < 0:
        raise ParameterError(
            f"cache max_bytes must be >= 0, got {max_bytes!r}"
        )
    with _default_lock:
        _default_cache = HotCellCache(max_bytes,
                                      registry=default_registry())
        return _default_cache
