"""The content-addressed results warehouse behind ``repro.store``.

See the package docstring (:mod:`repro.store`) for the design; this
module holds the mechanism:

* :func:`replica_key` — the identity of one stored simulation,
* :class:`CampaignStore` — publish/lookup/query/compact/gc/export over
  a store directory,
* :func:`cells_from_store` — a spec's aggregated cells with zero
  re-simulation (the engine behind ``report --from-spec``).

Storage layout (all three coexist; lookups check them in this order):

* ``segments/<id>.seg`` + ``.idx`` — compacted entries
  (:mod:`repro.store.segments`): one index probe + one ``pread`` per
  lookup, index-only queries, written by :meth:`CampaignStore.compact`;
* ``objects/<2-hex>/<hash>.json`` — loose entries, the atomic-rename
  publish path (2-hex fan-out so no single directory grows unbounded);
* ``objects/<hash>.json`` — the historical flat layout, read
  transparently and migrated into the fan-out on first touch (and into
  segments by compaction).

Hot reads are additionally served by an in-process byte-bounded LRU
(:mod:`repro.store.cache`): full verification on the first disk read,
digest-level verification on cached re-reads.

Import discipline: this module imports only the seed-schedule helpers
from :mod:`repro.sim.backends` at module level; everything that would
close an import cycle (:mod:`repro.sim.spec`, :mod:`repro.sim.executor`,
:mod:`repro.sim.distributed`) is imported lazily inside the functions
that need it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ParameterError
from ..fsclock import clamped_age, filesystem_now
from ..obs import Counter, Gauge, Histogram, default_registry
from ..obs.metrics import DEFAULT_TIME_BUCKETS
from ..obs.trace import current_tracer
from ..sim.backends import replica_seed, trace_seed
from ..sim.campaign import CampaignConfig
from ..sim.distributed import _atomic_write
from ..sim.results import DesResult
from ..sim.spec import STORE_MODES  # noqa: F401 - canonical home is the policy
from .cache import (
    CACHED_VERIFICATION_LEVELS,
    CachedEntry,
    cache_key,
    default_cache,
)
from .segments import Segment, SegmentEntry, load_segments, write_segment

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "STORE_MODES",
    "replica_key",
    "cell_keys",
    "key_hash",
    "CampaignStore",
    "ReadStats",
    "StoreEntry",
    "StoreStat",
    "GcReport",
    "ExportReport",
    "VerifyReport",
    "CompactReport",
    "cells_from_store",
]

STORE_FORMAT = "repro-store"
_ENTRY_FORMAT = "repro-store-entry"
#: Written version; readers refuse other numbers by name, like every
#: envelope in :mod:`repro.io`.  Segments are *additive*: a compacted
#: store still speaks version 1, and a pre-segment reader simply sees
#: the segment-resident entries as cache misses (wasted work, never
#: wrong results).
STORE_VERSION = 1

_HASH_RE = re.compile(r"^[0-9a-f]{64}\.json$")
#: A publish is write-temp-then-rename; gc only sweeps temp files (and
#: orphan segment data files from crashed compactions) older than this
#: (seconds) so it cannot race a live writer's rename.
_TMP_SWEEP_GRACE = 3600.0
#: Engines whose results the store may key (mirrors
#: :data:`repro.sim.spec.CAMPAIGN_BACKENDS`; duplicated here because the
#: store validates *keys*, which outlive any one policy object).
_ENGINES = ("des", "vectorized")

#: Sentinel: "use the process-wide shared hot-cell cache".
_DEFAULT_CACHE = object()


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def replica_key(
    config: CampaignConfig, plan, replica: int, *, engine: str = "des"
) -> dict:
    """The store identity of one (grid cell, replica) simulation.

    Deliberately *finer* than a campaign fingerprint: it names exactly
    the inputs that determine the simulation's output bytes — protocol,
    requested φ, workload, horizon, the fully-resolved platform
    parameters (M substituted), the failure-law dict, and the *derived*
    seed-schedule entry (the DES seed, and the shared-trace seed or
    ``None`` when traces are not shared).  The campaign seed and the
    cell's grid coordinates appear only through the derived seeds, so
    two different campaigns whose grids overlap share cached cells —
    including campaigns whose M axes list the same value at different
    positions (no trace sharing), where the raw ``(seed, m_index)`` pair
    would differ but the derived schedule does not.

    ``engine`` names the simulation engine that produced (or must
    produce) the bytes.  The engines are statistically equivalent but
    not byte-identical, so they must never serve each other's results:
    any engine other than the historical ``"des"`` is spliced into the
    key (the ``"des"`` spelling is left exactly as always, so existing
    warehouses keep their contents addressable).  Cells a vectorized
    campaign *falls back* to the DES for carry ``engine="des"`` — the
    caller resolves the per-cell engine
    (:func:`repro.sim.vectorized.plan_engine`) before keying — and
    those cells therefore share cache entries with plain DES campaigns.
    """
    if engine not in _ENGINES:
        raise ParameterError(
            f"unknown engine {engine!r}; known: {list(_ENGINES)}"
        )
    params = config.base_params.with_updates(M=float(plan.M))
    dist = config.distribution
    key = {
        "format": _ENTRY_FORMAT,
        "version": STORE_VERSION,
        "protocol": plan.protocol,
        "phi": float(plan.phi),
        "work_target": float(config.work_target),
        "max_time": None if config.max_time is None else float(config.max_time),
        "params": params.to_dict(),
        "distribution": None if dist is None else dist.to_dict(),
        "seed": replica_seed(config, replica),
        "trace_seed": trace_seed(config, plan.m_index, replica)
        if config.share_traces else None,
    }
    if engine != "des":
        key["engine"] = engine
    return key


def cell_keys(
    config: CampaignConfig, plan, max_replicas: int, *, engine: str = "des"
) -> Iterator[dict]:
    """The replica keys of one grid cell, in seed order."""
    for replica in range(max_replicas):
        yield replica_key(config, plan, replica, engine=engine)


def key_hash(key: dict) -> str:
    """Content address of a key: SHA-256 of its canonical JSON."""
    text = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _payload_digest(payload: dict) -> str:
    """SHA-256 of a payload's canonical JSON (the tamper witness)."""
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _key_fields(key: dict) -> dict:
    """The queryable fields of an entry key (what index rows carry)."""
    params = key.get("params") or {}
    return {
        "protocol": key.get("protocol"),
        "M": float(params.get("M", float("nan"))),
        "phi": float(key.get("phi", float("nan"))),
        "n": int(params.get("n", 0)),
        "seed": key.get("seed"),
        "trace_seed": key.get("trace_seed"),
        "work_target": float(key.get("work_target", float("nan"))),
    }


def _spec_hashes(spec) -> set[str]:
    """Every replica hash a spec can touch (its pin/coverage footprint).

    Uses the grid's full replica budget, not the adaptive stop points:
    pinning a superset is always safe, and the footprint stays a pure
    function of the spec (no simulation, no store access).
    """
    from ..sim.executor import plan_cells

    from ..sim.vectorized import plan_engine

    config = spec.config()
    backend = getattr(spec.policy, "backend", "des")
    hashes: set[str] = set()
    for plan in plan_cells(config):
        engine = plan_engine(backend, config, plan)
        for key in cell_keys(config, plan, spec.grid.replicas, engine=engine):
            hashes.add(key_hash(key))
    return hashes


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One stored replica result, as the query layer sees it."""

    hash: str
    protocol: str
    M: float
    phi: float
    n: int
    seed: int
    trace_seed: int | None
    work_target: float
    size: int
    mtime: float
    #: Where the bytes live: ``"loose"`` (one file) or ``"segment"``.
    origin: str = "loose"


@dataclass(frozen=True)
class StoreStat:
    """Aggregate accounting of a store directory."""

    entries: int
    total_bytes: int
    protocols: dict[str, int]
    oldest_mtime: float | None
    newest_mtime: float | None
    #: Layout breakdown: loose files vs segment-resident entries.
    loose_entries: int = 0
    segment_entries: int = 0
    segments: int = 0

    def describe(self) -> str:
        per_protocol = ", ".join(
            f"{k}={v}" for k, v in sorted(self.protocols.items())
        ) or "empty"
        layout = f"{self.loose_entries} loose"
        if self.segments:
            layout += (f" + {self.segment_entries} in "
                       f"{self.segments} segment(s)")
        return (f"{self.entries} entries, {self.total_bytes} bytes "
                f"({per_protocol}; {layout})")


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`CampaignStore.gc` pass did (or would do)."""

    entries_before: int
    bytes_before: int
    evicted_entries: int
    evicted_bytes: int
    pinned_entries: int
    dry_run: bool

    @property
    def entries_after(self) -> int:
        return self.entries_before - self.evicted_entries

    @property
    def bytes_after(self) -> int:
        return self.bytes_before - self.evicted_bytes

    def describe(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        return (f"{verb} {self.evicted_entries} entries "
                f"({self.evicted_bytes} bytes); "
                f"{self.entries_after} entries ({self.bytes_after} bytes) "
                f"remain, {self.pinned_entries} pinned")


@dataclass(frozen=True)
class ExportReport:
    """What :meth:`CampaignStore.export` materialised."""

    cells: int
    frames: int
    bytes_written: int

    def describe(self) -> str:
        return (f"{self.cells} cells ({self.frames} frames, "
                f"{self.bytes_written} bytes) exported from the store, "
                "zero re-simulation")


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a full-store integrity re-verification."""

    checked: int
    errors: tuple[str, ...]
    #: Aggregates of the entries that verified clean, collected during
    #: the same scan (so ``stat --verify`` never walks the store twice).
    stat: StoreStat | None = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        if self.ok:
            return f"{self.checked} entries verified, no corruption"
        return (f"{self.checked} entries checked, "
                f"{len(self.errors)} corrupt: {self.errors[0]}")


@dataclass(frozen=True)
class CompactReport:
    """What one :meth:`CampaignStore.compact` pass did (or would do)."""

    #: Loose entry files found (including historical flat-layout files).
    loose_before: int
    #: Entries packed into the new segment.
    packed_entries: int
    packed_bytes: int
    #: Loose files removed because a segment already held their hash
    #: (leftovers of a crashed compaction or a publish/compact race).
    deduplicated: int
    #: Loose files left in place because they failed validation.
    corrupt: tuple[str, ...]
    #: Id of the segment written, or ``None`` when nothing was packed.
    segment_id: str | None
    #: Store-wide totals after the pass.
    segments_total: int
    segment_entries_total: int
    loose_remaining: int
    dry_run: bool

    def describe(self) -> str:
        verb = "would pack" if self.dry_run else "packed"
        head = (f"{verb} {self.packed_entries} of {self.loose_before} "
                f"loose entries ({self.packed_bytes} bytes)")
        if self.segment_id is not None:
            head += f" into segment {self.segment_id[:12]}"
        tail = (f"; store now: {self.segment_entries_total} entries in "
                f"{self.segments_total} segment(s), "
                f"{self.loose_remaining} loose")
        if self.deduplicated:
            tail += f", {self.deduplicated} duplicates removed"
        if self.corrupt:
            tail += (f", {len(self.corrupt)} corrupt left loose: "
                     f"{self.corrupt[0]}")
        return head + tail


@dataclass(frozen=True)
class ReadStats:
    """Concurrent-read counters of one :class:`CampaignStore` instance.

    ``lookups`` counts every :meth:`CampaignStore.lookup` call (hit or
    miss), ``active`` the lookups in flight at the instant of the
    snapshot, and ``peak_concurrent`` the high-water mark of
    simultaneous readers — the number that proves (or disproves) that a
    shared store instance really was read concurrently, which is what
    the campaign service's load tests assert.  Per *instance*, unlike
    the hot-cell cache counters, which belong to the (usually shared)
    cache object.
    """

    lookups: int
    active: int
    peak_concurrent: int

    def describe(self) -> str:
        return (f"{self.lookups} lookups, {self.active} active, "
                f"peak {self.peak_concurrent} concurrent")


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class CampaignStore:
    """A content-addressed, concurrency-safe warehouse of replica results.

    One entry per (grid cell, replica) simulation, filed under the
    SHA-256 of its :func:`replica_key`.  Publishing is write-then-rename
    (the same atomic-publish pattern as the distributed queue's done
    markers), so readers never observe a torn entry and concurrent
    publishers of the same key converge on identical bytes.  Lookups
    re-verify the entry against its stored bytes — the full key must
    match (hash collisions and tampering are refused, never silently
    served) and the decoded result must re-serialise to exactly the
    payload on disk, which is the byte string a warm campaign will emit.

    Entries live loose (one file each, the write path) or packed into
    segments (:meth:`compact`, the read-at-scale path); lookups probe
    segments first, then the loose tree, then re-scan for segments a
    concurrent compaction may have just committed — so an entry is
    always found wherever a racing maintenance pass left it.

    Hot entries are additionally served from an in-process read-through
    LRU (:mod:`repro.store.cache`): the first read does the full
    integrity check, cached re-reads re-verify at the configurable
    ``cached_verification`` level (``"digest"`` by default; ``"full"``
    adds the in-memory round-trip).  Pass ``cache=None`` to always read
    from disk.

    Loose lookup hits refresh the entry file's mtime, making mtime a
    last-access clock; segment-resident entries keep the access stamp
    recorded in their index row.  :meth:`gc` evicts least-recently-used
    entries first when trimming to a size budget.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        *,
        create: bool = True,
        cache=_DEFAULT_CACHE,
        cached_verification: str = "digest",
    ):
        self.root = pathlib.Path(root)
        if cached_verification not in CACHED_VERIFICATION_LEVELS:
            raise ParameterError(
                f"unknown cached_verification {cached_verification!r}; "
                f"known: {list(CACHED_VERIFICATION_LEVELS)}"
            )
        self._cached_verification = cached_verification
        self._cache = default_cache() if cache is _DEFAULT_CACHE else cache
        self._cache_root = str(self.root.resolve())
        #: Concurrent-read accounting (see :meth:`read_stats`).  The
        #: counters are registry instruments — per-instance, so
        #: ``read_stats()`` stays exact for tests that construct private
        #: stores, while the process-wide registry sums live instances
        #: for ``GET /metrics``.  ``_read_lock`` still serialises the
        #: active/peak pair (the high-water mark must see a consistent
        #: active count).
        registry = default_registry()
        self._read_lock = threading.Lock()
        self._m_lookups = registry.register(Counter(
            "repro_store_lookups_total",
            help="Store lookups (hit or miss)."))
        self._m_active = registry.register(Gauge(
            "repro_store_readers_active",
            help="Lookups in flight right now."))
        self._m_peak = registry.register(Gauge(
            "repro_store_readers_peak_concurrent", aggregate="max",
            help="High-water mark of simultaneous readers."))
        self._m_results = {
            outcome: registry.register(Counter(
                "repro_store_lookup_results_total",
                help="Lookup outcomes.", labels={"result": outcome}))
            for outcome in ("hit", "miss")
        }
        self._m_lookup_seconds = {
            outcome: registry.register(Histogram(
                "repro_store_lookup_seconds", DEFAULT_TIME_BUCKETS,
                help="Full lookup latency by outcome.", unit="seconds",
                labels={"result": outcome}))
            for outcome in ("hit", "miss")
        }
        self._m_verify_seconds = registry.register(Histogram(
            "repro_store_verify_seconds", DEFAULT_TIME_BUCKETS,
            help="Entry decode+verify latency (disk reads only; cached "
                 "hits re-verify inside the cache).", unit="seconds"))
        self._m_publish = {
            outcome: registry.register(Counter(
                "repro_store_publish_total",
                help="Publish outcomes.", labels={"result": outcome}))
            for outcome in ("stored", "duplicate")
        }
        self._m_preload = registry.register(Counter(
            "repro_store_preload_entries_total",
            help="Entries admitted to the hot-cell cache by preload."))
        #: Lazily-loaded committed segments (id → Segment) and the
        #: merged hash → segment-id probe map (first id wins, so every
        #: process resolves duplicate hashes to the same copy).
        self._segments: dict[str, Segment] | None = None
        self._segment_map: dict[str, str] = {}
        manifest = self.root / "store.json"
        if manifest.exists():
            try:
                stored = json.loads(manifest.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ParameterError(
                    f"{manifest}: unreadable store manifest ({exc}); this "
                    "is not a results-store directory"
                ) from exc
            if not isinstance(stored, dict) \
                    or stored.get("format") != STORE_FORMAT:
                raise ParameterError(
                    f"{manifest}: not a {STORE_FORMAT} manifest; refusing "
                    "to treat a foreign directory as a results store"
                )
            if stored.get("version") != STORE_VERSION:
                raise ParameterError(
                    f"{manifest}: unsupported store version "
                    f"{stored.get('version')!r} (this library speaks "
                    f"version {STORE_VERSION})"
                )
        elif create:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            _atomic_write(manifest, json.dumps(
                {"format": STORE_FORMAT, "version": STORE_VERSION},
                sort_keys=True,
            ) + "\n")
        else:
            raise ParameterError(
                f"{self.root}: no results store here (missing store.json)"
            )

    def cache_stats(self):
        """This store's hot-cell cache counters
        (:class:`~repro.store.cache.CacheStats`), or ``None`` when the
        store reads straight from disk (``cache=None``).

        The counters belong to the cache *instance* — usually the
        process-wide default shared by every store in the process — so
        they describe what a live process (a campaign session, the
        planned service) has actually served, not this store alone.
        """
        if self._cache is None:
            return None
        return self._cache.stats()

    # -- paths ---------------------------------------------------------
    def _objects(self) -> pathlib.Path:
        return self.root / "objects"

    def _segments_dir(self) -> pathlib.Path:
        return self.root / "segments"

    def _entry_path(self, hash_: str) -> pathlib.Path:
        return self._objects() / hash_[:2] / f"{hash_}.json"

    def _flat_path(self, hash_: str) -> pathlib.Path:
        """Where the historical flat layout kept this entry."""
        return self._objects() / f"{hash_}.json"

    # -- segment state -------------------------------------------------
    def _refresh_segments(self) -> None:
        """(Re-)scan the segments directory for committed segments."""
        segments: dict[str, Segment] = {}
        for segment in load_segments(self._segments_dir()):
            segments[segment.id] = segment
        merged: dict[str, str] = {}
        for sid in sorted(segments):
            for hash_ in segments[sid].entries:
                merged.setdefault(hash_, sid)
        self._segments = segments
        self._segment_map = merged

    def _segment_probe(self, hash_: str) -> tuple[bytes, str] | None:
        """This entry's exact bytes from a segment, or ``None``.

        Uses the cached index view; a segment rewritten underneath us
        (gc) reads as a miss here and the caller's re-scan finds the
        successor.
        """
        if self._segments is None:
            self._refresh_segments()
        sid = self._segment_map.get(hash_)
        if sid is None:
            return None
        segment = self._segments[sid]
        row = segment.entries[hash_]
        try:
            data = segment.read(row)
        except OSError:
            return None  # concurrently rewritten
        if len(data) != row.length:
            return None  # torn view of a vanishing segment
        return data, f"{segment.data_path}@{row.offset}"

    def _adopt_flat(self, hash_: str) -> None:
        """Migrate one flat-layout file into the 2-hex fan-out.

        Atomic (``os.replace`` within the objects tree) and best-effort:
        a concurrent reader that misses the flat path re-checks the
        sharded path, and losing a race to another migrator is success.
        """
        target = self._entry_path(hash_)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(self._flat_path(hash_), target)
        except OSError:
            pass

    def _read_loose(self, hash_: str) -> tuple[str, pathlib.Path] | None:
        """The loose entry text and its (post-migration) path, if any."""
        sharded = self._entry_path(hash_)
        try:
            return sharded.read_text(), sharded
        except FileNotFoundError:
            pass
        try:
            text = self._flat_path(hash_).read_text()
        except FileNotFoundError:
            # A concurrent migrator may have just moved flat → sharded.
            try:
                return sharded.read_text(), sharded
            except FileNotFoundError:
                return None
        self._adopt_flat(hash_)
        return text, sharded

    def _contains(self, hash_: str) -> bool:
        if self._segments is None:
            self._refresh_segments()
        return (hash_ in self._segment_map
                or self._entry_path(hash_).exists()
                or self._flat_path(hash_).exists())

    def _touch(self, hash_: str) -> None:
        """Refresh the loose LRU clock (no-op for segment entries)."""
        try:
            os.utime(self._entry_path(hash_))
        except OSError:
            pass  # segment-resident or concurrently evicted

    # -- publish / lookup ----------------------------------------------
    def publish(self, key: dict, result: DesResult) -> bool:
        """Store one replica result; returns False if already present.

        Always writes a *loose* entry — one atomic write-temp-then-
        rename, the property that makes any number of concurrent
        publishers race-free; compaction folds loose entries into
        segments later.  A crashed publisher leaves only a temp file
        that the next :meth:`gc` sweeps up.
        """
        from .. import io as repro_io

        tracer = current_tracer()
        if tracer is not None:
            with tracer.span("store.publish", "store"):
                return self._publish(key, result, repro_io)
        return self._publish(key, result, repro_io)

    def _publish(self, key: dict, result: DesResult, repro_io) -> bool:
        hash_ = key_hash(key)
        if self._contains(hash_):
            self._m_publish["duplicate"].inc()
            return False
        payload = repro_io.to_envelope(result)
        entry = {
            "format": _ENTRY_FORMAT,
            "version": STORE_VERSION,
            "key": key,
            "payload": payload,
            # The payload's own digest: the address hashes the *key*, so
            # without this a well-formed but altered payload would be
            # undetectable (the simulation bytes are not in the address).
            "payload_sha256": _payload_digest(payload),
        }
        path = self._entry_path(hash_)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, json.dumps(entry, sort_keys=True) + "\n")
        self._m_publish["stored"].inc()
        return True

    def read_stats(self) -> ReadStats:
        """This instance's concurrent-read counters (see
        :class:`ReadStats`); callable from any thread.

        .. deprecated:: the ad-hoc snapshot shape — this is now a thin
           view over the instance's registry instruments
           (``repro_store_lookups_total`` /
           ``repro_store_readers_active`` /
           ``repro_store_readers_peak_concurrent``); prefer the
           process-wide :func:`repro.obs.default_registry` snapshot for
           anything new.  Kept exact per instance for existing callers.
        """
        with self._read_lock:
            return ReadStats(
                lookups=int(self._m_lookups.value),
                active=int(self._m_active.value),
                peak_concurrent=int(self._m_peak.value),
            )

    def lookup(self, key: dict) -> DesResult | None:
        """The stored result of ``key``, or ``None`` on a miss.

        A hit is integrity-checked before it is served: the entry's full
        stored key must equal the requested one (a hash collision or a
        renamed file is a hard error, not a wrong answer), and the
        decoded result must re-serialise to exactly the payload bytes on
        disk — the bytes a warm campaign re-emits.  Corruption raises a
        :class:`~repro.errors.ParameterError` naming the entry; a store
        must never silently substitute wrong results for a simulation.

        Read path: the in-process hot-cell cache (digest-level re-check)
        first, then segments (index probe + ``pread``), then the loose
        tree, then one segment re-scan — the re-scan is what makes a
        concurrent compaction invisible: an entry whose loose file was
        just packed away is found in the segment the compaction
        committed first.

        Safe to call from many threads at once against one instance
        (the campaign service does); :meth:`read_stats` reports how
        concurrent the reads actually were.
        """
        with self._read_lock:
            self._m_lookups.inc()
            self._m_active.inc()
            active = self._m_active.value
            if active > self._m_peak.value:
                self._m_peak.set(active)
        started = time.perf_counter()
        tracer = current_tracer()
        try:
            if tracer is None:
                result = self._lookup(key)
            else:
                with tracer.span("store.lookup", "store") as span:
                    result = self._lookup(key)
                    span.args["result"] = \
                        "hit" if result is not None else "miss"
            outcome = "hit" if result is not None else "miss"
            self._m_results[outcome].inc()
            self._m_lookup_seconds[outcome].observe(
                time.perf_counter() - started)
            return result
        finally:
            with self._read_lock:
                self._m_active.dec()

    def _lookup(self, key: dict) -> DesResult | None:
        token = None
        if self._cache is not None:
            # Probed by cheap surrogate, resolved by full-key equality:
            # the content address (canonical JSON + SHA-256, ~8us) is
            # only computed when the disk must be touched anyway.
            token = cache_key(key)
            cached = self._cache.get(self._cache_root, token)
            if cached is not None and cached.key == key:
                if cached.verify(self._cached_verification):
                    if cached.origin == "loose":
                        self._touch(cached.hash)  # LRU clock for gc
                    return cached.result
                # In-memory corruption: drop it and re-read from disk.
                self._cache.invalidate(self._cache_root, token)

        hash_ = key_hash(key)
        found = self._segment_probe(hash_)
        if found is not None:
            text, label = found
            loose_path = None
        else:
            loose = self._read_loose(hash_)
            if loose is None:
                # A concurrent compaction may have just moved the loose
                # file into a segment we have not scanned yet.
                self._refresh_segments()
                found = self._segment_probe(hash_)
                if found is None:
                    return None
                text, label = found
                loose_path = None
            else:
                text, loose_path = loose
                label = str(loose_path)
        try:
            entry = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ParameterError(
                f"{label}: corrupt store entry (invalid JSON: {exc}); "
                "delete the file (or run `repro-checkpoint store gc`) "
                "and re-run to repopulate it"
            ) from exc
        verify_started = time.perf_counter()
        result = self._decode_entry(label, entry, expected_key=key)
        self._m_verify_seconds.observe(
            time.perf_counter() - verify_started)
        if self._cache is not None:
            self._cache.put(self._cache_root, token, CachedEntry(
                key=key,
                result=result,
                payload_text=json.dumps(entry["payload"], sort_keys=True),
                payload_sha256=entry["payload_sha256"],
                hash=hash_,
                origin="loose" if loose_path is not None else "segment",
            ))
        if loose_path is not None:
            try:
                os.utime(loose_path)  # LRU clock for gc
            except OSError:
                pass  # concurrently evicted: the result in hand is good
        return result

    def preload(self, keys) -> int:
        """Prime the hot-cell cache for ``keys`` with bulk segment reads.

        The sequential-read fast path behind spec-footprint resolution
        (``store export``, ``report --from-spec``, the executor's
        pre-dispatch store consult): instead of one index probe plus one
        ``pread`` per replica entry, the footprint's segment-resident
        entries are grouped per segment, coalesced into contiguous
        spans, and streamed with a few sequential reads
        (:meth:`~repro.store.segments.Segment.read_many`) — a spec
        whose footprint resolves to few segments reads each of them
        once, front to back.  Every admitted entry passes the same full
        verification a cold :meth:`lookup` performs; the per-key lookup
        that follows is then a memory hit.

        Purely an I/O-pattern optimisation, never a semantic one: loose
        entries, absent keys and torn bulk reads (a concurrent gc
        rewrite) are simply left for the per-entry lookup path, and with
        the cache disabled there is nowhere to stage decoded entries, so
        this is a no-op.  Returns the number of entries admitted.
        """
        if self._cache is None:
            return 0
        tracer = current_tracer()
        if tracer is not None:
            with tracer.span("store.preload", "store") as span:
                loaded = self._preload(keys)
                span.args["entries"] = loaded
                return loaded
        return self._preload(keys)

    def _preload(self, keys) -> int:
        if self._segments is None:
            self._refresh_segments()
        wanted: dict[str, list[tuple[dict, tuple, str]]] = {}
        for key in keys:
            token = cache_key(key)
            if self._cache.peek(self._cache_root, token) is not None:
                continue
            hash_ = key_hash(key)
            sid = self._segment_map.get(hash_)
            if sid is not None:
                wanted.setdefault(sid, []).append((key, token, hash_))
        loaded = 0
        for sid, items in wanted.items():
            segment = self._segments[sid]
            data = segment.read_many(
                [segment.entries[hash_] for _, _, hash_ in items]
            )
            for key, token, hash_ in items:
                raw = data.get(hash_)
                if raw is None:
                    continue  # torn read: lookup's re-scan recovers
                label = (f"{segment.data_path}"
                         f"@{segment.entries[hash_].offset}")
                try:
                    entry = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise ParameterError(
                        f"{label}: corrupt store entry (invalid JSON: "
                        f"{exc}); delete the segment pair (or run "
                        "`repro-checkpoint store gc`) and re-run to "
                        "repopulate it"
                    ) from exc
                verify_started = time.perf_counter()
                result = self._decode_entry(label, entry, expected_key=key)
                self._m_verify_seconds.observe(
                    time.perf_counter() - verify_started)
                self._cache.put(self._cache_root, token, CachedEntry(
                    key=key,
                    result=result,
                    payload_text=json.dumps(
                        entry["payload"], sort_keys=True
                    ),
                    payload_sha256=entry["payload_sha256"],
                    hash=hash_,
                    origin="segment",
                ))
                loaded += 1
        self._m_preload.inc(loaded)
        return loaded

    @staticmethod
    def _decode_entry(
        path, entry: dict, *, expected_key: dict | None
    ) -> DesResult:
        from .. import io as repro_io

        if not isinstance(entry, dict) \
                or entry.get("format") != _ENTRY_FORMAT:
            raise ParameterError(
                f"{path}: not a {_ENTRY_FORMAT} record; the store "
                "directory holds foreign files"
            )
        if entry.get("version") != STORE_VERSION:
            raise ParameterError(
                f"{path}: unsupported store-entry version "
                f"{entry.get('version')!r} (this library speaks "
                f"version {STORE_VERSION})"
            )
        stored_key = entry.get("key")
        if expected_key is not None and stored_key != expected_key:
            raise ParameterError(
                f"{path}: stored key does not match the requested one "
                "(hash collision or tampered entry); refusing to serve "
                "a different simulation's result"
            )
        result = repro_io.from_envelope(entry.get("payload"))
        if not isinstance(result, DesResult):
            raise ParameterError(
                f"{path}: store entries hold raw DES runs, found a "
                f"{type(result).__name__}"
            )
        # Re-verification against the stored frame bytes: the payload
        # must match its recorded digest (the address only hashes the
        # key, so tampering inside the payload needs its own witness)
        # and the object we hand out must re-serialise to exactly what
        # is on disk, because that is the byte string a warm campaign
        # emits in place of a simulation.
        if _payload_digest(entry["payload"]) != entry.get("payload_sha256"):
            raise ParameterError(
                f"{path}: entry payload does not match its recorded "
                "digest; the entry is corrupt — delete it and re-run to "
                "repopulate"
            )
        if json.dumps(entry["payload"], sort_keys=True) \
                != repro_io.dump_result(result):
            raise ParameterError(
                f"{path}: entry payload does not survive a serialisation "
                "round-trip; the entry is corrupt — delete it and re-run "
                "to repopulate"
            )
        return result

    # -- cell-level API (what the executor drives) ---------------------
    def load_cell(
        self, config: CampaignConfig, plan, controller, *, engine: str = "des"
    ):
        """A complete cell from the store, or ``None``.

        Replica entries are pulled in seed order and pushed through the
        ``controller``'s incremental cursor — the *same* cursor live
        execution and resume scans drive — so a hit returns exactly the
        replica prefix a fresh run would have produced, whatever
        controller stored the entries.  A store populated by a
        fixed-count campaign therefore serves an adaptive campaign's
        shorter prefix for free, while a store holding fewer replicas
        than this controller needs is a miss (the cell re-runs in full).
        """
        cursor = controller.cursor()
        results: list[DesResult] = []
        for replica in range(controller.max_replicas):
            result = self.lookup(
                replica_key(config, plan, replica, engine=engine)
            )
            if result is None:
                return None
            results.append(result)
            if cursor.push(result.waste):
                return results
        return None  # controller never stopped inside the budget

    def publish_cell(
        self, config: CampaignConfig, plan, results, *, engine: str = "des"
    ) -> int:
        """Publish every replica of one finished cell; returns how many
        entries were new."""
        published = 0
        for replica, result in enumerate(results):
            published += self.publish(
                replica_key(config, plan, replica, engine=engine), result
            )
        return published

    # -- index / query layer -------------------------------------------
    def _object_files(self) -> Iterator[tuple[str, pathlib.Path]]:
        """Every loose entry file — 2-hex fan-out shards first, then any
        historical flat-layout files at the objects root."""
        objects = self._objects()
        try:
            names = sorted(os.listdir(objects))
        except FileNotFoundError:
            return
        flat: list[str] = []
        for name in names:
            if _HASH_RE.match(name):
                flat.append(name)
                continue
            shard_dir = objects / name
            try:
                entries = sorted(os.listdir(shard_dir))
            except (FileNotFoundError, NotADirectoryError):
                continue
            for entry in entries:
                if _HASH_RE.match(entry):
                    yield entry[:-5], shard_dir / entry
        for name in flat:
            yield name[:-5], objects / name

    def entries(self) -> Iterator[StoreEntry]:
        """Every stored entry, as queryable metadata, streamed.

        Segment-resident entries come straight from the in-memory index
        rows — **no data file is read at all** — which is what keeps
        ``ls``/``stat``/``query`` latency flat as the store grows.
        Loose entries are self-describing (the key travels inside the
        file), so the loose index can never drift from the contents and
        needs no cross-process coordination; a loose file whose hash a
        segment already holds (a compaction-race leftover) is reported
        once, as its segment copy.
        """
        self._refresh_segments()
        for sid in sorted(self._segments):
            segment = self._segments[sid]
            for hash_ in sorted(segment.entries):
                if self._segment_map[hash_] != sid:
                    continue  # duplicate across segments: first id wins
                row = segment.entries[hash_]
                yield StoreEntry(
                    hash=hash_, protocol=row.protocol, M=row.M,
                    phi=row.phi, n=row.n, seed=row.seed,
                    trace_seed=row.trace_seed,
                    work_target=row.work_target, size=row.length,
                    mtime=row.mtime, origin="segment",
                )
        for hash_, path in self._object_files():
            if hash_ in self._segment_map:
                continue
            try:
                stat = path.stat()
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ParameterError(
                    f"{path}: unreadable store entry ({exc})"
                ) from exc
            key = entry.get("key") if isinstance(entry, dict) else None
            if not isinstance(key, dict):
                raise ParameterError(
                    f"{path}: store entry carries no key; the store "
                    "directory holds foreign files"
                )
            yield StoreEntry(
                hash=hash_, size=stat.st_size, mtime=stat.st_mtime,
                origin="loose", **_key_fields(key),
            )

    def query(
        self,
        *,
        protocol: str | None = None,
        M: float | None = None,
        phi: float | None = None,
        n: int | None = None,
    ) -> Iterator[StoreEntry]:
        """Entries matching every given filter (the CLI's ``store ls``)."""
        for entry in self.entries():
            if protocol is not None and entry.protocol != protocol:
                continue
            if M is not None and entry.M != float(M):
                continue
            if phi is not None and entry.phi != float(phi):
                continue
            if n is not None and entry.n != int(n):
                continue
            yield entry

    def stat(self) -> StoreStat:
        """Aggregate accounting (``store stat``), one streaming pass.

        Constant memory: entries are folded into the totals as they
        stream by, and segment-resident entries are counted from their
        index rows without touching the data files.
        """
        entries = 0
        total = 0
        loose = 0
        in_segments = 0
        protocols: dict[str, int] = {}
        oldest: float | None = None
        newest: float | None = None
        for entry in self.entries():
            entries += 1
            total += entry.size
            if entry.origin == "segment":
                in_segments += 1
            else:
                loose += 1
            protocols[entry.protocol] = protocols.get(entry.protocol, 0) + 1
            oldest = entry.mtime if oldest is None else min(oldest, entry.mtime)
            newest = entry.mtime if newest is None else max(newest, entry.mtime)
        return StoreStat(
            entries=entries, total_bytes=total, protocols=protocols,
            oldest_mtime=oldest, newest_mtime=newest,
            loose_entries=loose, segment_entries=in_segments,
            segments=len(self._segments or {}),
        )

    def verify(self) -> VerifyReport:
        """Re-verify every entry against its stored bytes, streamed.

        Checks, per entry: the address (file name, or index row hash)
        matches the SHA-256 of the stored key (content addressing), the
        payload decodes into a raw DES run, and the decoded run
        re-serialises to the exact payload bytes on disk.  Segment
        entries additionally check that the index row's queryable
        fields agree with the stored key.  Collects problems instead of
        stopping at the first, so one corrupt entry does not hide the
        rest; nothing is materialised beyond the running aggregates.
        """
        checked = 0
        errors: list[str] = []
        entries = 0
        total = 0
        loose = 0
        in_segments = 0
        protocols: dict[str, int] = {}
        oldest: float | None = None
        newest: float | None = None

        def _tally(protocol, size: int, mtime: float, *, segment: bool):
            nonlocal entries, total, loose, in_segments, oldest, newest
            entries += 1
            total += size
            if segment:
                in_segments += 1
            else:
                loose += 1
            protocols[protocol] = protocols.get(protocol, 0) + 1
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)

        self._refresh_segments()
        for sid in sorted(self._segments):
            segment = self._segments[sid]
            for hash_ in sorted(segment.entries):
                if self._segment_map[hash_] != sid:
                    continue
                row = segment.entries[hash_]
                label = f"{segment.data_path}@{row.offset}"
                checked += 1
                try:
                    raw = segment.read(row)
                    if len(raw) != row.length:
                        raise ParameterError(
                            "segment data is shorter than the index row"
                        )
                    entry = json.loads(raw)
                    if not isinstance(entry, dict):
                        raise ParameterError("entry is not an object")
                    if key_hash(entry.get("key", {})) != hash_:
                        raise ParameterError(
                            "index hash does not match the stored key's "
                            "hash"
                        )
                    self._decode_entry(label, entry, expected_key=None)
                    fields = _key_fields(entry["key"])
                    if fields["protocol"] != row.protocol \
                            or fields["seed"] != row.seed:
                        raise ParameterError(
                            "index row disagrees with the stored key"
                        )
                except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                        ParameterError) as exc:
                    errors.append(f"{label}: {exc}")
                    continue
                _tally(row.protocol, row.length, row.mtime, segment=True)
        for hash_, path in self._object_files():
            if hash_ in self._segment_map:
                continue  # verified above, as its segment copy
            checked += 1
            try:
                stat = path.stat()
                entry = json.loads(path.read_text())
                if not isinstance(entry, dict):
                    raise ParameterError("entry is not an object")
                if key_hash(entry.get("key", {})) != hash_:
                    raise ParameterError(
                        "file name does not match the stored key's hash"
                    )
                self._decode_entry(path, entry, expected_key=None)
            except (OSError, json.JSONDecodeError, ParameterError) as exc:
                errors.append(f"{path}: {exc}")
                continue
            _tally(entry["key"].get("protocol"), stat.st_size,
                   stat.st_mtime, segment=False)
        return VerifyReport(
            checked=checked, errors=tuple(errors),
            stat=StoreStat(
                entries=entries, total_bytes=total, protocols=protocols,
                oldest_mtime=oldest, newest_mtime=newest,
                loose_entries=loose, segment_entries=in_segments,
                segments=len(self._segments or {}),
            ),
        )

    # -- compaction ----------------------------------------------------
    def compact(self, *, dry_run: bool = False) -> CompactReport:
        """Pack the loose entries into one new segment (``store compact``).

        Safe against every concurrent store user, by construction:

        * **readers** — the segment is committed (index rename) *before*
          any loose file is unlinked, and lookups re-scan for new
          segments before declaring a miss, so there is no instant at
          which a packed entry is findable nowhere;
        * **writers** — publish only ever creates loose files, which the
          *next* compaction folds in; a publish racing this pass at
          worst re-creates a loose duplicate with identical bytes
          (content-addressed keys make that harmless), removed as a
          duplicate later;
        * **gc** — eviction unlinks loose files or rewrites other
          segments; a loose file that vanishes mid-pack is simply
          dropped from the batch.  (A file gc unlinks *after* this pass
          read it is resurrected inside the segment — rerun ``gc`` after
          ``compact`` to re-apply a byte budget exactly.)

        Each loose file is validated (parse, format, address, payload
        digest) before packing; corrupt files are left loose and
        reported, never baked into a segment.  Historical flat-layout
        files are packed like any other loose entry, which migrates
        them off the objects root for good.
        """
        self._refresh_segments()
        listing: list[tuple[str, pathlib.Path]] = []
        duplicates: list[pathlib.Path] = []
        for hash_, path in self._object_files():
            if hash_ in self._segment_map:
                duplicates.append(path)
            else:
                listing.append((hash_, path))
        loose_before = len(listing) + len(duplicates)
        listing.sort()  # hash order: identical sets pack identically

        corrupt: list[str] = []
        packed: list[tuple[str, pathlib.Path]] = []
        packed_bytes = 0

        def _records() -> Iterator[tuple[SegmentEntry, bytes]]:
            nonlocal packed_bytes
            for hash_, path in listing:
                try:
                    stat = path.stat()
                    raw = path.read_bytes()
                except OSError:
                    continue  # concurrently evicted by gc: drop it
                try:
                    entry = json.loads(raw)
                    if not isinstance(entry, dict) \
                            or entry.get("format") != _ENTRY_FORMAT:
                        raise ParameterError(
                            f"not a {_ENTRY_FORMAT} record"
                        )
                    if entry.get("version") != STORE_VERSION:
                        raise ParameterError(
                            "unsupported store-entry version "
                            f"{entry.get('version')!r}"
                        )
                    if key_hash(entry.get("key", {})) != hash_:
                        raise ParameterError(
                            "file name does not match the stored key's "
                            "hash"
                        )
                    if _payload_digest(entry["payload"]) \
                            != entry.get("payload_sha256"):
                        raise ParameterError(
                            "entry payload does not match its recorded "
                            "digest"
                        )
                except (json.JSONDecodeError, UnicodeDecodeError,
                        ParameterError, KeyError) as exc:
                    corrupt.append(f"{path}: {exc}")
                    continue
                fields = _key_fields(entry["key"])
                packed.append((hash_, path))
                packed_bytes += len(raw)
                yield SegmentEntry(
                    hash=hash_, offset=0, length=len(raw),
                    mtime=stat.st_mtime, **fields,
                ), raw

        if dry_run:
            for _ in _records():
                pass
            segment = None
        else:
            segment = write_segment(self._segments_dir(), _records())
            # The segment is committed: now (and only now) retire the
            # packed loose files and any pre-existing duplicates.
            for _, path in packed:
                try:
                    path.unlink()
                except OSError:
                    pass
            for path in duplicates:
                try:
                    path.unlink()
                except OSError:
                    pass
            self._refresh_segments()
        return CompactReport(
            loose_before=loose_before,
            packed_entries=len(packed),
            packed_bytes=packed_bytes,
            deduplicated=len(duplicates),
            corrupt=tuple(corrupt),
            segment_id=None if segment is None else segment.id,
            segments_total=len(self._segments or {}),
            segment_entries_total=len(self._segment_map),
            loose_remaining=len(corrupt) if not dry_run
            else loose_before - len(duplicates),
            dry_run=dry_run,
        )

    # -- coverage / eviction -------------------------------------------
    def coverage(self, spec) -> tuple[int, int]:
        """``(present, total)`` replica entries of a spec's footprint."""
        self._refresh_segments()
        hashes = _spec_hashes(spec)
        present = sum(1 for h in hashes if self._contains(h))
        return present, len(hashes)

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age: float | None = None,
        pin_specs: Iterable = (),
        pin_queues: Iterable[str | pathlib.Path] = (),
        dry_run: bool = False,
        now: float | None = None,
    ) -> GcReport:
        """Trim the store to a retention budget (LRU by access mtime).

        ``max_age`` evicts entries idle longer than that many seconds;
        ``max_bytes`` then evicts least-recently-used entries until the
        store fits the budget.  Loose and segment-resident entries are
        judged by one rule — a loose entry's age is its file mtime, a
        segment entry's is the access stamp recorded in its index row,
        and both go through :func:`repro.fsclock.clamped_age` against
        the *store filesystem's* clock, so cross-machine skew can never
        age a fresh entry past the budget.  Evicting from a segment
        atomically rewrites that segment without the evicted rows (or
        removes it outright when empty).

        Entries in the footprint of a ``pin_specs`` spec or of the
        campaign recorded in a ``pin_queues`` queue-directory manifest
        are never evicted — a fleet mid-campaign must not lose the cells
        its queue still references — wherever they live.  Abandoned temp
        files from crashed publishers and orphan segment data files from
        crashed compactions are swept unconditionally.  ``dry_run``
        reports without deleting.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ParameterError(f"max_bytes must be >= 0, got {max_bytes!r}")
        if max_age is not None and max_age <= 0:
            raise ParameterError(f"max_age must be > 0, got {max_age!r}")
        if now is None:
            # Entry mtimes were stamped by the store directory's
            # filesystem (possibly a fileserver on another clock):
            # measure *now* with that same clock, and clamp every age at
            # zero below, so a clock step can never age a just-published
            # entry past --max-age.
            now = filesystem_now(self._objects())
        else:
            now = float(now)

        pinned: set[str] = set()
        for spec in pin_specs:
            pinned |= _spec_hashes(spec)
        for queue in pin_queues:
            from ..sim.distributed import read_queue_manifest
            from ..sim.spec import CampaignSpec

            manifest = read_queue_manifest(queue)
            pinned |= _spec_hashes(CampaignSpec.from_dict(manifest["campaign"]))

        # Sweep crashed writers' leftovers (never the entries) — but
        # only stale ones: a fresh temp may be a live writer's in-flight
        # write-then-rename (or a compaction's data file awaiting its
        # index commit), and unlinking it mid-flight would crash that
        # process's os.replace.
        if not dry_run:
            self._sweep_leftovers(now)

        self._refresh_segments()
        # hash → (newest access mtime, total bytes, loose paths,
        # segment ids); an entry duplicated across layouts is one
        # logical entry with several physical copies, all of which an
        # eviction must remove.
        copies: dict[str, list] = {}
        for sid, segment in (self._segments or {}).items():
            for hash_, row in segment.entries.items():
                copies.setdefault(hash_, []).append(
                    (row.mtime, row.length, "segment", sid)
                )
        for hash_, path in self._object_files():
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            copies.setdefault(hash_, []).append(
                (stat.st_mtime, stat.st_size, "loose", path)
            )

        listing = [
            (max(c[0] for c in copy_list),
             sum(c[1] for c in copy_list),
             hash_, copy_list)
            for hash_, copy_list in copies.items()
        ]
        entries_before = len(listing)
        bytes_before = sum(size for _, size, _, _ in listing)
        pinned_present = sum(1 for _, _, h, _ in listing if h in pinned)

        evicted_entries = 0
        evicted_bytes = 0
        #: segment id → hashes to drop from it (applied in one rewrite).
        segment_drops: dict[str, set[str]] = {}

        def _evict(size: int, hash_: str, copy_list: list) -> None:
            nonlocal evicted_entries, evicted_bytes
            if not dry_run:
                for _, _, kind, where in copy_list:
                    if kind == "loose":
                        try:
                            where.unlink()
                        except OSError:
                            pass  # a racing gc won
                    else:
                        segment_drops.setdefault(where, set()).add(hash_)
            evicted_entries += 1
            evicted_bytes += size

        survivors: list[tuple[float, int, str, list]] = []
        for mtime, size, hash_, copy_list in sorted(
            listing, key=lambda item: item[:3]
        ):
            if hash_ in pinned:
                survivors.append((mtime, size, hash_, copy_list))
                continue
            if max_age is not None and clamped_age(now, mtime) > max_age:
                _evict(size, hash_, copy_list)
                continue
            survivors.append((mtime, size, hash_, copy_list))

        if max_bytes is not None:
            total = sum(size for _, size, _, _ in survivors)
            # Oldest access first; pinned entries are immune however
            # tight the budget gets.
            for mtime, size, hash_, copy_list in sorted(
                survivors, key=lambda item: item[:3]
            ):
                if total <= max_bytes:
                    break
                if hash_ in pinned:
                    continue
                _evict(size, hash_, copy_list)
                total -= size

        if segment_drops and not dry_run:
            for sid, drops in segment_drops.items():
                self._rewrite_segment(sid, drops)
            self._refresh_segments()

        return GcReport(
            entries_before=entries_before,
            bytes_before=bytes_before,
            evicted_entries=evicted_entries,
            evicted_bytes=evicted_bytes,
            pinned_entries=pinned_present,
            dry_run=dry_run,
        )

    def _rewrite_segment(self, sid: str, drops: set[str]) -> None:
        """Atomically replace segment ``sid`` without the ``drops`` rows.

        Survivor bytes are carried over verbatim (offsets recomputed),
        so the rewrite can never change what a lookup serves.  The
        replacement is committed under a fresh id before the old pair is
        unlinked — index first, so no reader ever resolves an index row
        to missing data; a reader already holding the old index keeps
        reading the unlinked inode through its open handle.
        """
        from .segments import segment_index_path

        segment = (self._segments or {}).get(sid)
        if segment is None:
            return
        keep = sorted(h for h in segment.entries if h not in drops)

        def _survivor_records() -> Iterator[tuple[SegmentEntry, bytes]]:
            for hash_ in keep:
                row = segment.entries[hash_]
                try:
                    raw = segment.read(row)
                except OSError:
                    continue  # racing rewrite already retired it
                if len(raw) == row.length:
                    yield row, raw

        if keep:
            write_segment(self._segments_dir(), _survivor_records())
        for path in (segment_index_path(self._segments_dir(), sid),
                     segment.data_path):
            try:
                path.unlink()
            except OSError:
                pass

    def _sweep_leftovers(self, now: float) -> None:
        """Unlink stale temp files and orphan segment data files."""
        def _stale(path: pathlib.Path) -> bool:
            try:
                return clamped_age(now, path.stat().st_mtime) \
                    > _TMP_SWEEP_GRACE
            except OSError:
                return False

        objects = self._objects()
        try:
            names = list(os.listdir(objects))
        except FileNotFoundError:
            names = []
        for name in names:
            path = objects / name
            if ".tmp-" in name:
                if _stale(path):
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            if not path.is_dir():
                continue
            for entry in os.listdir(path):
                if ".tmp-" not in entry:
                    continue
                if _stale(path / entry):
                    try:
                        (path / entry).unlink()
                    except OSError:
                        pass
        segments_dir = self._segments_dir()
        try:
            names = list(os.listdir(segments_dir))
        except FileNotFoundError:
            return
        present = set(names)
        for name in names:
            path = segments_dir / name
            stale_tmp = ".tmp-" in name
            # A .seg whose .idx never appeared is a crashed compaction's
            # data file: committed segments always have their index.
            orphan = name.endswith(".seg") \
                and f"{name[:-4]}.idx" not in present
            if (stale_tmp or orphan) and _stale(path):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- export --------------------------------------------------------
    def export(self, spec, out_path: str | pathlib.Path) -> ExportReport:
        """Materialise a spec's results file straight from the store.

        Writes the framed, grid-ordered, contiguously-sequenced results
        file (plus the ``.manifest`` sidecar holding the spec
        fingerprint) that a single-machine ``sink="framed"`` run of the
        spec would have produced — byte-identical, with **zero**
        simulations.  Cells resolve through the same segment-first
        lookup path as a warm run, so an export is byte-identical before
        and after compaction.  Every cell must be resolvable from the
        store; missing cells are reported by grid coordinates, never
        silently skipped.
        """
        from .. import io as repro_io

        resolved = _resolve_spec(self, spec)
        out_path = pathlib.Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        frames = 0
        tmp = out_path.with_name(out_path.name + f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            for plan, results in resolved:
                for replica, result in enumerate(results):
                    fh.write(repro_io.dump_frame(
                        result, cell=plan.index, replica=replica, seq=frames,
                    ) + "\n")
                    frames += 1
        os.replace(tmp, out_path)
        _atomic_write(
            out_path.with_name(out_path.name + ".manifest"),
            json.dumps(spec.fingerprint(), sort_keys=True) + "\n",
        )
        return ExportReport(
            cells=len(resolved), frames=frames,
            bytes_written=out_path.stat().st_size,
        )


def cells_from_store(store: CampaignStore, spec) -> list:
    """A spec's aggregated campaign cells, resolved with zero simulation.

    The query layer behind ``report --from-spec --store``: every grid
    cell is loaded through the spec's replica controller and aggregated
    exactly as a live run would have (:class:`~repro.sim.campaign.
    CampaignCell` with a full Monte-Carlo summary).  Raises when any
    cell is absent — a report must never silently cover a partial grid.
    """
    from ..sim.executor import _make_cell

    return [
        _make_cell(plan, results)
        for plan, results in _resolve_spec(store, spec)
    ]


def _resolve_spec(store: CampaignStore, spec) -> list[tuple]:
    """Every grid cell of ``spec`` resolved from the store, in plan
    order, as ``(plan, replica results)`` pairs.

    The shared engine behind :meth:`CampaignStore.export` and
    :func:`cells_from_store`: all-or-nothing — missing cells raise with
    grid coordinates rather than returning a partial sweep.
    """
    from ..sim.executor import plan_cells

    config = spec.config()
    controller = spec.controller()
    plans = plan_cells(config)
    # Bulk-stage the footprint's segment-resident entries with
    # sequential per-segment reads; the per-cell loads below then hit
    # the cache instead of issuing one pread per replica.  (The
    # footprint over-approximates under adaptive control — the
    # controller may stop before max_replicas — which only means a few
    # absent hashes are skipped.)
    store.preload(
        replica_key(config, plan, replica)
        for plan in plans
        for replica in range(controller.max_replicas)
    )
    resolved: list[tuple] = []
    missing: list = []
    for plan in plans:
        results = store.load_cell(config, plan, controller)
        if results is None:
            missing.append(plan)
        else:
            resolved.append((plan, results))
    if missing:
        head = ", ".join(
            f"({p.protocol}, M={p.M:g}, phi={p.phi:g})"
            for p in missing[:3]
        )
        raise ParameterError(
            f"{store.root}: store is missing {len(missing)} of "
            f"{len(plans)} cells for this spec (first missing: {head}"
            f"{', ...' if len(missing) > 3 else ''}); run the campaign "
            "with --store to populate them"
        )
    return resolved
