"""The content-addressed results warehouse behind ``repro.store``.

See the package docstring (:mod:`repro.store`) for the design; this
module holds the mechanism:

* :func:`replica_key` — the identity of one stored simulation,
* :class:`CampaignStore` — publish/lookup/query/gc/export over a store
  directory,
* :func:`cells_from_store` — a spec's aggregated cells with zero
  re-simulation (the engine behind ``report --from-spec``).

Import discipline: this module imports only the seed-schedule helpers
from :mod:`repro.sim.backends` at module level; everything that would
close an import cycle (:mod:`repro.sim.spec`, :mod:`repro.sim.executor`,
:mod:`repro.sim.distributed`) is imported lazily inside the functions
that need it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ParameterError
from ..fsclock import clamped_age, filesystem_now
from ..sim.backends import replica_seed, trace_seed
from ..sim.campaign import CampaignConfig
from ..sim.distributed import _atomic_write
from ..sim.results import DesResult
from ..sim.spec import STORE_MODES  # noqa: F401 - canonical home is the policy

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "STORE_MODES",
    "replica_key",
    "cell_keys",
    "key_hash",
    "CampaignStore",
    "StoreEntry",
    "StoreStat",
    "GcReport",
    "ExportReport",
    "VerifyReport",
    "cells_from_store",
]

STORE_FORMAT = "repro-store"
_ENTRY_FORMAT = "repro-store-entry"
#: Written version; readers refuse other numbers by name, like every
#: envelope in :mod:`repro.io`.
STORE_VERSION = 1

_HASH_RE = re.compile(r"^[0-9a-f]{64}\.json$")
#: A publish is write-temp-then-rename; gc only sweeps temp files older
#: than this (seconds) so it cannot race a live publisher's rename.
_TMP_SWEEP_GRACE = 3600.0
#: Engines whose results the store may key (mirrors
#: :data:`repro.sim.spec.CAMPAIGN_BACKENDS`; duplicated here because the
#: store validates *keys*, which outlive any one policy object).
_ENGINES = ("des", "vectorized")


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def replica_key(
    config: CampaignConfig, plan, replica: int, *, engine: str = "des"
) -> dict:
    """The store identity of one (grid cell, replica) simulation.

    Deliberately *finer* than a campaign fingerprint: it names exactly
    the inputs that determine the simulation's output bytes — protocol,
    requested φ, workload, horizon, the fully-resolved platform
    parameters (M substituted), the failure-law dict, and the *derived*
    seed-schedule entry (the DES seed, and the shared-trace seed or
    ``None`` when traces are not shared).  The campaign seed and the
    cell's grid coordinates appear only through the derived seeds, so
    two different campaigns whose grids overlap share cached cells —
    including campaigns whose M axes list the same value at different
    positions (no trace sharing), where the raw ``(seed, m_index)`` pair
    would differ but the derived schedule does not.

    ``engine`` names the simulation engine that produced (or must
    produce) the bytes.  The engines are statistically equivalent but
    not byte-identical, so they must never serve each other's results:
    any engine other than the historical ``"des"`` is spliced into the
    key (the ``"des"`` spelling is left exactly as always, so existing
    warehouses keep their contents addressable).  Cells a vectorized
    campaign *falls back* to the DES for carry ``engine="des"`` — the
    caller resolves the per-cell engine
    (:func:`repro.sim.vectorized.plan_engine`) before keying — and
    those cells therefore share cache entries with plain DES campaigns.
    """
    if engine not in _ENGINES:
        raise ParameterError(
            f"unknown engine {engine!r}; known: {list(_ENGINES)}"
        )
    params = config.base_params.with_updates(M=float(plan.M))
    dist = config.distribution
    key = {
        "format": _ENTRY_FORMAT,
        "version": STORE_VERSION,
        "protocol": plan.protocol,
        "phi": float(plan.phi),
        "work_target": float(config.work_target),
        "max_time": None if config.max_time is None else float(config.max_time),
        "params": params.to_dict(),
        "distribution": None if dist is None else dist.to_dict(),
        "seed": replica_seed(config, replica),
        "trace_seed": trace_seed(config, plan.m_index, replica)
        if config.share_traces else None,
    }
    if engine != "des":
        key["engine"] = engine
    return key


def cell_keys(
    config: CampaignConfig, plan, max_replicas: int, *, engine: str = "des"
) -> Iterator[dict]:
    """The replica keys of one grid cell, in seed order."""
    for replica in range(max_replicas):
        yield replica_key(config, plan, replica, engine=engine)


def key_hash(key: dict) -> str:
    """Content address of a key: SHA-256 of its canonical JSON."""
    text = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _payload_digest(payload: dict) -> str:
    """SHA-256 of a payload's canonical JSON (the tamper witness)."""
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _spec_hashes(spec) -> set[str]:
    """Every replica hash a spec can touch (its pin/coverage footprint).

    Uses the grid's full replica budget, not the adaptive stop points:
    pinning a superset is always safe, and the footprint stays a pure
    function of the spec (no simulation, no store access).
    """
    from ..sim.executor import plan_cells

    from ..sim.vectorized import plan_engine

    config = spec.config()
    backend = getattr(spec.policy, "backend", "des")
    hashes: set[str] = set()
    for plan in plan_cells(config):
        engine = plan_engine(backend, config, plan)
        for key in cell_keys(config, plan, spec.grid.replicas, engine=engine):
            hashes.add(key_hash(key))
    return hashes


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One stored replica result, as the query layer sees it."""

    hash: str
    protocol: str
    M: float
    phi: float
    n: int
    seed: int
    trace_seed: int | None
    work_target: float
    size: int
    mtime: float


@dataclass(frozen=True)
class StoreStat:
    """Aggregate accounting of a store directory."""

    entries: int
    total_bytes: int
    protocols: dict[str, int]
    oldest_mtime: float | None
    newest_mtime: float | None

    def describe(self) -> str:
        per_protocol = ", ".join(
            f"{k}={v}" for k, v in sorted(self.protocols.items())
        ) or "empty"
        return (f"{self.entries} entries, {self.total_bytes} bytes "
                f"({per_protocol})")


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`CampaignStore.gc` pass did (or would do)."""

    entries_before: int
    bytes_before: int
    evicted_entries: int
    evicted_bytes: int
    pinned_entries: int
    dry_run: bool

    @property
    def entries_after(self) -> int:
        return self.entries_before - self.evicted_entries

    @property
    def bytes_after(self) -> int:
        return self.bytes_before - self.evicted_bytes

    def describe(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        return (f"{verb} {self.evicted_entries} entries "
                f"({self.evicted_bytes} bytes); "
                f"{self.entries_after} entries ({self.bytes_after} bytes) "
                f"remain, {self.pinned_entries} pinned")


@dataclass(frozen=True)
class ExportReport:
    """What :meth:`CampaignStore.export` materialised."""

    cells: int
    frames: int
    bytes_written: int

    def describe(self) -> str:
        return (f"{self.cells} cells ({self.frames} frames, "
                f"{self.bytes_written} bytes) exported from the store, "
                "zero re-simulation")


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a full-store integrity re-verification."""

    checked: int
    errors: tuple[str, ...]
    #: Aggregates of the entries that verified clean, collected during
    #: the same scan (so ``stat --verify`` never walks the store twice).
    stat: StoreStat | None = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        if self.ok:
            return f"{self.checked} entries verified, no corruption"
        return (f"{self.checked} entries checked, "
                f"{len(self.errors)} corrupt: {self.errors[0]}")


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class CampaignStore:
    """A content-addressed, concurrency-safe warehouse of replica results.

    One entry per (grid cell, replica) simulation, filed under the
    SHA-256 of its :func:`replica_key`.  Publishing is write-then-rename
    (the same atomic-publish pattern as the distributed queue's done
    markers), so readers never observe a torn entry and concurrent
    publishers of the same key converge on identical bytes.  Lookups
    re-verify the entry against its stored bytes — the full key must
    match (hash collisions and tampering are refused, never silently
    served) and the decoded result must re-serialise to exactly the
    payload on disk, which is the byte string a warm campaign will emit.

    Lookup hits refresh the entry file's mtime, making mtime a
    last-access clock; :meth:`gc` evicts least-recently-used entries
    first when trimming to a size budget.
    """

    def __init__(self, root: str | pathlib.Path, *, create: bool = True):
        self.root = pathlib.Path(root)
        manifest = self.root / "store.json"
        if manifest.exists():
            try:
                stored = json.loads(manifest.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ParameterError(
                    f"{manifest}: unreadable store manifest ({exc}); this "
                    "is not a results-store directory"
                ) from exc
            if not isinstance(stored, dict) \
                    or stored.get("format") != STORE_FORMAT:
                raise ParameterError(
                    f"{manifest}: not a {STORE_FORMAT} manifest; refusing "
                    "to treat a foreign directory as a results store"
                )
            if stored.get("version") != STORE_VERSION:
                raise ParameterError(
                    f"{manifest}: unsupported store version "
                    f"{stored.get('version')!r} (this library speaks "
                    f"version {STORE_VERSION})"
                )
        elif create:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            _atomic_write(manifest, json.dumps(
                {"format": STORE_FORMAT, "version": STORE_VERSION},
                sort_keys=True,
            ) + "\n")
        else:
            raise ParameterError(
                f"{self.root}: no results store here (missing store.json)"
            )

    # -- paths ---------------------------------------------------------
    def _objects(self) -> pathlib.Path:
        return self.root / "objects"

    def _entry_path(self, hash_: str) -> pathlib.Path:
        return self._objects() / hash_[:2] / f"{hash_}.json"

    # -- publish / lookup ----------------------------------------------
    def publish(self, key: dict, result: DesResult) -> bool:
        """Store one replica result; returns False if already present.

        Atomic (write temp + rename): a concurrent publisher of the same
        key — deterministic execution guarantees identical bytes — races
        harmlessly, and a crashed publisher leaves only a temp file that
        the next :meth:`gc` sweeps up.
        """
        from .. import io as repro_io

        hash_ = key_hash(key)
        path = self._entry_path(hash_)
        if path.exists():
            return False
        payload = repro_io.to_envelope(result)
        entry = {
            "format": _ENTRY_FORMAT,
            "version": STORE_VERSION,
            "key": key,
            "payload": payload,
            # The payload's own digest: the address hashes the *key*, so
            # without this a well-formed but altered payload would be
            # undetectable (the simulation bytes are not in the address).
            "payload_sha256": _payload_digest(payload),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, json.dumps(entry, sort_keys=True) + "\n")
        return True

    def lookup(self, key: dict) -> DesResult | None:
        """The stored result of ``key``, or ``None`` on a miss.

        A hit is integrity-checked before it is served: the entry's full
        stored key must equal the requested one (a hash collision or a
        renamed file is a hard error, not a wrong answer), and the
        decoded result must re-serialise to exactly the payload bytes on
        disk — the bytes a warm campaign re-emits.  Corruption raises a
        :class:`~repro.errors.ParameterError` naming the entry; a store
        must never silently substitute wrong results for a simulation.
        """
        path = self._entry_path(key_hash(key))
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(
                f"{path}: corrupt store entry (invalid JSON: {exc}); "
                "delete the file (or run `repro-checkpoint store gc`) "
                "and re-run to repopulate it"
            ) from exc
        result = self._decode_entry(path, entry, expected_key=key)
        try:
            os.utime(path)  # LRU clock for gc
        except OSError:
            pass  # concurrently evicted: the result in hand is still good
        return result

    @staticmethod
    def _decode_entry(
        path: pathlib.Path, entry: dict, *, expected_key: dict | None
    ) -> DesResult:
        from .. import io as repro_io

        if not isinstance(entry, dict) \
                or entry.get("format") != _ENTRY_FORMAT:
            raise ParameterError(
                f"{path}: not a {_ENTRY_FORMAT} record; the store "
                "directory holds foreign files"
            )
        if entry.get("version") != STORE_VERSION:
            raise ParameterError(
                f"{path}: unsupported store-entry version "
                f"{entry.get('version')!r} (this library speaks "
                f"version {STORE_VERSION})"
            )
        stored_key = entry.get("key")
        if expected_key is not None and stored_key != expected_key:
            raise ParameterError(
                f"{path}: stored key does not match the requested one "
                "(hash collision or tampered entry); refusing to serve "
                "a different simulation's result"
            )
        result = repro_io.from_envelope(entry.get("payload"))
        if not isinstance(result, DesResult):
            raise ParameterError(
                f"{path}: store entries hold raw DES runs, found a "
                f"{type(result).__name__}"
            )
        # Re-verification against the stored frame bytes: the payload
        # must match its recorded digest (the address only hashes the
        # key, so tampering inside the payload needs its own witness)
        # and the object we hand out must re-serialise to exactly what
        # is on disk, because that is the byte string a warm campaign
        # emits in place of a simulation.
        if _payload_digest(entry["payload"]) != entry.get("payload_sha256"):
            raise ParameterError(
                f"{path}: entry payload does not match its recorded "
                "digest; the entry is corrupt — delete it and re-run to "
                "repopulate"
            )
        if json.dumps(entry["payload"], sort_keys=True) \
                != repro_io.dump_result(result):
            raise ParameterError(
                f"{path}: entry payload does not survive a serialisation "
                "round-trip; the entry is corrupt — delete it and re-run "
                "to repopulate"
            )
        return result

    # -- cell-level API (what the executor drives) ---------------------
    def load_cell(
        self, config: CampaignConfig, plan, controller, *, engine: str = "des"
    ):
        """A complete cell from the store, or ``None``.

        Replica entries are pulled in seed order and pushed through the
        ``controller``'s incremental cursor — the *same* cursor live
        execution and resume scans drive — so a hit returns exactly the
        replica prefix a fresh run would have produced, whatever
        controller stored the entries.  A store populated by a
        fixed-count campaign therefore serves an adaptive campaign's
        shorter prefix for free, while a store holding fewer replicas
        than this controller needs is a miss (the cell re-runs in full).
        """
        cursor = controller.cursor()
        results: list[DesResult] = []
        for replica in range(controller.max_replicas):
            result = self.lookup(
                replica_key(config, plan, replica, engine=engine)
            )
            if result is None:
                return None
            results.append(result)
            if cursor.push(result.waste):
                return results
        return None  # controller never stopped inside the budget

    def publish_cell(
        self, config: CampaignConfig, plan, results, *, engine: str = "des"
    ) -> int:
        """Publish every replica of one finished cell; returns how many
        entries were new."""
        published = 0
        for replica, result in enumerate(results):
            published += self.publish(
                replica_key(config, plan, replica, engine=engine), result
            )
        return published

    # -- index / query layer -------------------------------------------
    def _object_files(self) -> Iterator[tuple[str, pathlib.Path]]:
        objects = self._objects()
        try:
            shards = sorted(os.listdir(objects))
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = objects / shard
            try:
                names = sorted(os.listdir(shard_dir))
            except (FileNotFoundError, NotADirectoryError):
                continue
            for name in names:
                if _HASH_RE.match(name):
                    yield name[:-5], shard_dir / name

    def entries(self) -> Iterator[StoreEntry]:
        """Every stored entry, as queryable metadata (the on-disk index).

        The index *is* the object tree: every entry is self-describing
        (its key travels inside the file), so the index can never drift
        from the contents and needs no cross-process coordination.
        """
        for hash_, path in self._object_files():
            try:
                stat = path.stat()
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ParameterError(
                    f"{path}: unreadable store entry ({exc})"
                ) from exc
            key = entry.get("key") if isinstance(entry, dict) else None
            if not isinstance(key, dict):
                raise ParameterError(
                    f"{path}: store entry carries no key; the store "
                    "directory holds foreign files"
                )
            params = key.get("params") or {}
            yield StoreEntry(
                hash=hash_,
                protocol=key.get("protocol"),
                M=float(params.get("M", float("nan"))),
                phi=float(key.get("phi", float("nan"))),
                n=int(params.get("n", 0)),
                seed=key.get("seed"),
                trace_seed=key.get("trace_seed"),
                work_target=float(key.get("work_target", float("nan"))),
                size=stat.st_size,
                mtime=stat.st_mtime,
            )

    def query(
        self,
        *,
        protocol: str | None = None,
        M: float | None = None,
        phi: float | None = None,
        n: int | None = None,
    ) -> Iterator[StoreEntry]:
        """Entries matching every given filter (the CLI's ``store ls``)."""
        for entry in self.entries():
            if protocol is not None and entry.protocol != protocol:
                continue
            if M is not None and entry.M != float(M):
                continue
            if phi is not None and entry.phi != float(phi):
                continue
            if n is not None and entry.n != int(n):
                continue
            yield entry

    def stat(self) -> StoreStat:
        """Aggregate accounting (``store stat``)."""
        entries = 0
        total = 0
        protocols: dict[str, int] = {}
        oldest: float | None = None
        newest: float | None = None
        for entry in self.entries():
            entries += 1
            total += entry.size
            protocols[entry.protocol] = protocols.get(entry.protocol, 0) + 1
            oldest = entry.mtime if oldest is None else min(oldest, entry.mtime)
            newest = entry.mtime if newest is None else max(newest, entry.mtime)
        return StoreStat(
            entries=entries, total_bytes=total, protocols=protocols,
            oldest_mtime=oldest, newest_mtime=newest,
        )

    def verify(self) -> VerifyReport:
        """Re-verify every entry against its stored bytes.

        Checks, per entry: the file name matches the SHA-256 of the
        stored key (content addressing), the payload decodes into a raw
        DES run, and the decoded run re-serialises to the exact payload
        bytes on disk.  Collects problems instead of stopping at the
        first, so one corrupt entry does not hide the rest.
        """
        checked = 0
        errors: list[str] = []
        entries = 0
        total = 0
        protocols: dict[str, int] = {}
        oldest: float | None = None
        newest: float | None = None
        for hash_, path in self._object_files():
            checked += 1
            try:
                stat = path.stat()
                entry = json.loads(path.read_text())
                if not isinstance(entry, dict):
                    raise ParameterError("entry is not an object")
                if key_hash(entry.get("key", {})) != hash_:
                    raise ParameterError(
                        "file name does not match the stored key's hash"
                    )
                self._decode_entry(path, entry, expected_key=None)
            except (OSError, json.JSONDecodeError, ParameterError) as exc:
                errors.append(f"{path}: {exc}")
                continue
            entries += 1
            total += stat.st_size
            protocol = entry["key"].get("protocol")
            protocols[protocol] = protocols.get(protocol, 0) + 1
            oldest = stat.st_mtime if oldest is None \
                else min(oldest, stat.st_mtime)
            newest = stat.st_mtime if newest is None \
                else max(newest, stat.st_mtime)
        return VerifyReport(
            checked=checked, errors=tuple(errors),
            stat=StoreStat(
                entries=entries, total_bytes=total, protocols=protocols,
                oldest_mtime=oldest, newest_mtime=newest,
            ),
        )

    # -- coverage / eviction -------------------------------------------
    def coverage(self, spec) -> tuple[int, int]:
        """``(present, total)`` replica entries of a spec's footprint."""
        hashes = _spec_hashes(spec)
        present = sum(
            1 for h in hashes if self._entry_path(h).exists()
        )
        return present, len(hashes)

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age: float | None = None,
        pin_specs: Iterable = (),
        pin_queues: Iterable[str | pathlib.Path] = (),
        dry_run: bool = False,
        now: float | None = None,
    ) -> GcReport:
        """Trim the store to a retention budget (LRU by access mtime).

        ``max_age`` evicts entries idle longer than that many seconds;
        ``max_bytes`` then evicts least-recently-used entries until the
        store fits the budget.  Entries in the footprint of a
        ``pin_specs`` spec or of the campaign recorded in a
        ``pin_queues`` queue-directory manifest are never evicted — a
        fleet mid-campaign must not lose the cells its queue still
        references.  Abandoned temp files from crashed publishers are
        swept unconditionally.  ``dry_run`` reports without deleting.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ParameterError(f"max_bytes must be >= 0, got {max_bytes!r}")
        if max_age is not None and max_age <= 0:
            raise ParameterError(f"max_age must be > 0, got {max_age!r}")
        if now is None:
            # Entry mtimes were stamped by the store directory's
            # filesystem (possibly a fileserver on another clock):
            # measure *now* with that same clock, and clamp every age at
            # zero below, so a clock step can never age a just-published
            # entry past --max-age.
            now = filesystem_now(self._objects())
        else:
            now = float(now)

        pinned: set[str] = set()
        for spec in pin_specs:
            pinned |= _spec_hashes(spec)
        for queue in pin_queues:
            from ..sim.distributed import read_queue_manifest
            from ..sim.spec import CampaignSpec

            manifest = read_queue_manifest(queue)
            pinned |= _spec_hashes(CampaignSpec.from_dict(manifest["campaign"]))

        # Sweep crashed publishers' temp files (never the entries) — but
        # only stale ones: a fresh temp may be a live publisher's
        # in-flight write-then-rename, and unlinking it mid-publish
        # would crash that campaign's os.replace.
        if not dry_run:
            objects = self._objects()
            try:
                shards = list(os.listdir(objects))
            except FileNotFoundError:
                shards = []
            for shard in shards:
                shard_dir = objects / shard
                if not shard_dir.is_dir():
                    continue
                for name in os.listdir(shard_dir):
                    if ".tmp-" not in name:
                        continue
                    path = shard_dir / name
                    try:
                        if clamped_age(now, path.stat().st_mtime) \
                                > _TMP_SWEEP_GRACE:
                            path.unlink()
                    except OSError:
                        pass

        listing: list[tuple[float, int, str, pathlib.Path]] = []
        for hash_, path in self._object_files():
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            listing.append((stat.st_mtime, stat.st_size, hash_, path))

        entries_before = len(listing)
        bytes_before = sum(size for _, size, _, _ in listing)
        pinned_present = sum(1 for _, _, h, _ in listing if h in pinned)

        evicted_entries = 0
        evicted_bytes = 0

        def _evict(size: int, path: pathlib.Path) -> None:
            nonlocal evicted_entries, evicted_bytes
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    return  # a racing gc won; count nothing
            evicted_entries += 1
            evicted_bytes += size

        survivors: list[tuple[float, int, str, pathlib.Path]] = []
        for mtime, size, hash_, path in listing:
            if hash_ in pinned:
                survivors.append((mtime, size, hash_, path))
                continue
            if max_age is not None and clamped_age(now, mtime) > max_age:
                _evict(size, path)
                continue
            survivors.append((mtime, size, hash_, path))

        if max_bytes is not None:
            total = sum(size for _, size, _, _ in survivors)
            # Oldest access first; pinned entries are immune however
            # tight the budget gets.
            for mtime, size, hash_, path in sorted(survivors):
                if total <= max_bytes:
                    break
                if hash_ in pinned:
                    continue
                _evict(size, path)
                total -= size

        return GcReport(
            entries_before=entries_before,
            bytes_before=bytes_before,
            evicted_entries=evicted_entries,
            evicted_bytes=evicted_bytes,
            pinned_entries=pinned_present,
            dry_run=dry_run,
        )

    # -- export --------------------------------------------------------
    def export(self, spec, out_path: str | pathlib.Path) -> ExportReport:
        """Materialise a spec's results file straight from the store.

        Writes the framed, grid-ordered, contiguously-sequenced results
        file (plus the ``.manifest`` sidecar holding the spec
        fingerprint) that a single-machine ``sink="framed"`` run of the
        spec would have produced — byte-identical, with **zero**
        simulations.  Every cell must be resolvable from the store;
        missing cells are reported by grid coordinates, never silently
        skipped.
        """
        from .. import io as repro_io

        resolved = _resolve_spec(self, spec)
        out_path = pathlib.Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        frames = 0
        tmp = out_path.with_name(out_path.name + f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            for plan, results in resolved:
                for replica, result in enumerate(results):
                    fh.write(repro_io.dump_frame(
                        result, cell=plan.index, replica=replica, seq=frames,
                    ) + "\n")
                    frames += 1
        os.replace(tmp, out_path)
        _atomic_write(
            out_path.with_name(out_path.name + ".manifest"),
            json.dumps(spec.fingerprint(), sort_keys=True) + "\n",
        )
        return ExportReport(
            cells=len(resolved), frames=frames,
            bytes_written=out_path.stat().st_size,
        )


def cells_from_store(store: CampaignStore, spec) -> list:
    """A spec's aggregated campaign cells, resolved with zero simulation.

    The query layer behind ``report --from-spec --store``: every grid
    cell is loaded through the spec's replica controller and aggregated
    exactly as a live run would have (:class:`~repro.sim.campaign.
    CampaignCell` with a full Monte-Carlo summary).  Raises when any
    cell is absent — a report must never silently cover a partial grid.
    """
    from ..sim.executor import _make_cell

    return [
        _make_cell(plan, results)
        for plan, results in _resolve_spec(store, spec)
    ]


def _resolve_spec(store: CampaignStore, spec) -> list[tuple]:
    """Every grid cell of ``spec`` resolved from the store, in plan
    order, as ``(plan, replica results)`` pairs.

    The shared engine behind :meth:`CampaignStore.export` and
    :func:`cells_from_store`: all-or-nothing — missing cells raise with
    grid coordinates rather than returning a partial sweep.
    """
    from ..sim.executor import plan_cells

    config = spec.config()
    controller = spec.controller()
    plans = plan_cells(config)
    resolved: list[tuple] = []
    missing: list = []
    for plan in plans:
        results = store.load_cell(config, plan, controller)
        if results is None:
            missing.append(plan)
        else:
            resolved.append((plan, results))
    if missing:
        head = ", ".join(
            f"({p.protocol}, M={p.M:g}, phi={p.phi:g})"
            for p in missing[:3]
        )
        raise ParameterError(
            f"{store.root}: store is missing {len(missing)} of "
            f"{len(plans)} cells for this spec (first missing: {head}"
            f"{', ...' if len(missing) > 3 else ''}); run the campaign "
            "with --store to populate them"
        )
    return resolved
