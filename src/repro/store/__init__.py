"""Content-addressed results store: never simulate the same cell twice.

The campaign engine is deterministic by construction — every replica is a
pure function of its seed-schedule entry and the cell's fully-resolved
configuration — yet, before this package, every campaign re-simulated
every cell from scratch: overlapping grids across presets, resumed
sweeps and report iterations paid full simulation cost each time.
:class:`CampaignStore` is the warehouse that closes that loop, trading
storage for recomputation (the store-vs-recompute axis of the
checkpointing literature, applied to the simulations themselves).

Design:

* **Keying** (:func:`replica_key`) — one entry per (grid cell, replica)
  simulation, addressed by the SHA-256 of exactly the inputs that
  determine its output bytes: protocol, φ, workload, horizon, resolved
  platform parameters, failure-law dict, and the *derived* seed-schedule
  entry.  Deliberately finer than a campaign fingerprint: two different
  campaigns whose grids overlap share cached cells.
* **Concurrency** — publishing is write-then-rename (the queue
  directory's atomic-publish pattern), so any number of processes
  publish and look up the same cells race-free; identical keys can only
  ever carry identical bytes, so the last rename winning is harmless.
* **Integrity** — every lookup re-verifies the entry: full-key match
  (collisions/tampering refused) and an exact serialisation round-trip
  against the stored bytes, which are the bytes a warm campaign emits.
* **Retention** (:meth:`CampaignStore.gc`) — bounded-size caching, not
  an unbounded archive: LRU/mtime eviction to a byte budget, with the
  footprints of pinned specs and in-progress queue campaigns immune.
* **Query layer** — :meth:`CampaignStore.query`/``ls``/``stat`` over the
  self-describing object tree, :meth:`CampaignStore.export` to
  materialise a spec's byte-identical results file with zero
  simulations, and :func:`cells_from_store` behind
  ``repro-checkpoint report --from-spec --store``.
* **Scale** (:mod:`repro.store.segments`, :mod:`repro.store.cache`) —
  ``store compact`` packs loose entries into append-only segment files
  with a sorted hash index (warm lookup = one index probe + one
  ``pread``; ``ls``/``stat``/``query`` read no data at all), the loose
  tree fans out across 2-hex shard directories (historical flat files
  migrate transparently), and a process-wide byte-bounded
  :class:`~repro.store.cache.HotCellCache` serves hot cells without
  disk I/O (full verification on first read, digest-level on cached
  re-reads) — warm-replay and report latency stay flat as the store
  grows to fleet scale.

Campaigns opt in through the volatile
:class:`~repro.sim.spec.ExecutionPolicy` fields ``store``/``store_mode``
(or ``execute_spec(..., store=...)`` / ``campaign --store DIR``): the
executor consults the store per cell before dispatching anything to a
backend and publishes fresh cells after the sink append, so a warm
re-run of a completed spec performs **zero** simulations yet produces a
byte-identical results file.
"""

from .cache import (
    CACHED_VERIFICATION_LEVELS,
    DEFAULT_CACHE_BYTES,
    CacheStats,
    HotCellCache,
    configure_cache,
    default_cache,
)
from .store import (
    STORE_FORMAT,
    STORE_MODES,
    STORE_VERSION,
    CampaignStore,
    CompactReport,
    ExportReport,
    GcReport,
    ReadStats,
    StoreEntry,
    StoreStat,
    VerifyReport,
    cell_keys,
    cells_from_store,
    key_hash,
    replica_key,
)

__all__ = [
    "STORE_FORMAT",
    "STORE_MODES",
    "STORE_VERSION",
    "CampaignStore",
    "ReadStats",
    "StoreEntry",
    "StoreStat",
    "GcReport",
    "ExportReport",
    "VerifyReport",
    "CompactReport",
    "replica_key",
    "cell_keys",
    "key_hash",
    "cells_from_store",
    "CACHED_VERIFICATION_LEVELS",
    "DEFAULT_CACHE_BYTES",
    "CacheStats",
    "HotCellCache",
    "configure_cache",
    "default_cache",
]
