"""Segment files: the store's compaction format.

A fresh store keeps one *loose* file per (cell, replica) entry —
publish stays a single atomic rename, which is what makes any number of
concurrent writers race-free.  But a fleet-scale store accumulates
hundreds of thousands of entries, and every maintenance walk
(``entries``/``stat``/``gc``/``verify``) then pays a ``stat`` per file
while the objects tree grinds against directory-scaling walls.

``store compact`` packs loose entries into **segments**: an append-only
data file holding the entries' exact bytes back to back, plus a sorted
hash index carrying everything the query layer needs (offset, length,
access mtime, and the key's queryable fields).  After compaction:

* a lookup is one in-memory index probe + one ``pread`` — no directory
  walk, no per-entry ``stat``;
* ``stat``/``ls``/``query`` read **no data at all**: the index rows
  already carry the queryable key fields;
* ``gc`` ages segment entries by their *recorded* mtimes through the
  same :func:`repro.fsclock.clamped_age` arithmetic as loose files, and
  evicts by atomically *rewriting* a segment without the evicted rows
  (pinned footprints survive however tight the budget).

Concurrency contract (the part that must never regress):

* A segment becomes visible only when its **index** file is renamed
  into place; the data file is written and renamed first, so readers
  never observe a segment whose bytes are incomplete.  A ``.seg``
  without its ``.idx`` is an orphan from a crashed compaction — ignored
  by readers, swept by ``gc`` after the same grace period as loose temp
  files.
* Compaction never mutates an existing file: it writes a brand-new
  segment, commits the index, and only then unlinks the loose files it
  packed.  A concurrent reader therefore always finds an entry in at
  least one place (loose before the unlink, the segment after the index
  commit — :meth:`CampaignStore.lookup` re-scans for new segments
  before declaring a miss), and a concurrent publisher at worst
  re-creates a loose duplicate with identical bytes, which the next
  compaction folds in.
* Segment rewrites (gc) follow the same scheme: new data + new index
  committed under a fresh segment id, then the old pair is unlinked.
  Readers holding the old index keep reading the unlinked inode through
  their open handle; fresh readers re-scan.

Everything in the data file is byte-identical to the loose entry it
replaced, so exports and warm re-runs are byte-identical before and
after compaction by construction.
"""

from __future__ import annotations

import json
import os
import pathlib
import uuid
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ParameterError

__all__ = [
    "SEGMENT_INDEX_FORMAT",
    "SEGMENT_VERSION",
    "COALESCE_GAP",
    "SegmentEntry",
    "Segment",
    "write_segment",
    "load_segments",
    "segment_data_path",
    "segment_index_path",
]

SEGMENT_INDEX_FORMAT = "repro-store-segment-index"
#: Written version; readers refuse other numbers by name, like every
#: envelope in :mod:`repro.io`.
SEGMENT_VERSION = 1

#: Bulk reads merge two needed rows into one sequential read when the
#: unneeded hole between them is at most this many bytes (64 KiB ≈ a
#: couple of typical entries: cheaper to read through than to pay
#: another syscall + seek, on local disks and emphatically on NFS).
COALESCE_GAP = 64 * 1024


@dataclass(frozen=True)
class SegmentEntry:
    """One index row: where an entry's bytes live, plus the queryable
    fields of its key (so ``ls``/``stat``/``query`` never read data)."""

    hash: str
    offset: int
    length: int
    #: Last-access stamp carried over from the loose file (or the prior
    #: segment) at pack time — the LRU clock ``gc`` ages against.
    mtime: float
    protocol: str | None
    M: float
    phi: float
    n: int
    seed: int | None
    trace_seed: int | None
    work_target: float

    def to_row(self) -> list:
        return [self.hash, self.offset, self.length, self.mtime,
                self.protocol, self.M, self.phi, self.n, self.seed,
                self.trace_seed, self.work_target]

    @classmethod
    def from_row(cls, row: list) -> "SegmentEntry":
        if not isinstance(row, list) or len(row) != 11:
            raise ParameterError(
                f"malformed segment index row: {row!r}"
            )
        return cls(
            hash=row[0], offset=int(row[1]), length=int(row[2]),
            mtime=float(row[3]), protocol=row[4], M=float(row[5]),
            phi=float(row[6]), n=int(row[7]), seed=row[8],
            trace_seed=row[9], work_target=float(row[10]),
        )


@dataclass(frozen=True)
class Segment:
    """A committed segment: its data path plus the decoded index."""

    id: str
    data_path: pathlib.Path
    #: Index rows by hash — the in-memory probe a warm lookup does.
    entries: dict[str, SegmentEntry]

    @property
    def data_bytes(self) -> int:
        return sum(e.length for e in self.entries.values())

    def read(self, entry: SegmentEntry) -> bytes:
        """The exact stored bytes of one entry (one ``pread``)."""
        fd = os.open(self.data_path, os.O_RDONLY)
        try:
            return os.pread(fd, entry.length, entry.offset)
        finally:
            os.close(fd)

    def read_many(
        self, rows: Iterable[SegmentEntry], *, gap: int = COALESCE_GAP
    ) -> dict[str, bytes]:
        """Many entries' bytes with few sequential reads: bulk export.

        Rows are sorted by offset and coalesced into contiguous spans —
        two rows land in one span when the hole between them is at most
        ``gap`` bytes (reading a small hole is cheaper than a second
        syscall + seek) — then each span is one ``pread``.  A footprint
        that covers most of a segment therefore streams it in a single
        read, while a sparse footprint degrades gracefully toward the
        per-entry path, never below it.

        Returns ``{hash: bytes}``; rows that read torn (a concurrent gc
        rewrite unlinked the data file mid-stream) are *omitted*, and
        the caller falls back to :meth:`read`'s re-scanning path —
        same contract as :meth:`CampaignStore._segment_probe`.
        """
        ordered = sorted(rows, key=lambda e: e.offset)
        if not ordered:
            return {}
        spans: list[list[SegmentEntry]] = [[ordered[0]]]
        for row in ordered[1:]:
            last = spans[-1][-1]
            if row.offset - (last.offset + last.length) <= gap:
                spans[-1].append(row)
            else:
                spans.append([row])
        out: dict[str, bytes] = {}
        try:
            fd = os.open(self.data_path, os.O_RDONLY)
        except OSError:
            return {}
        try:
            for span in spans:
                start = span[0].offset
                end = span[-1].offset + span[-1].length
                data = os.pread(fd, end - start, start)
                for row in span:
                    chunk = data[row.offset - start:
                                 row.offset - start + row.length]
                    if len(chunk) == row.length:
                        out[row.hash] = chunk
        except OSError:
            return out  # partial is fine: missing rows fall back
        finally:
            os.close(fd)
        return out


def segment_data_path(segments_dir: pathlib.Path, id_: str) -> pathlib.Path:
    return segments_dir / f"{id_}.seg"


def segment_index_path(segments_dir: pathlib.Path, id_: str) -> pathlib.Path:
    return segments_dir / f"{id_}.idx"


def write_segment(
    segments_dir: pathlib.Path,
    records: Iterable[tuple[SegmentEntry, bytes]],
) -> Segment | None:
    """Pack ``records`` into a new committed segment; None when empty.

    ``records`` pairs a metadata row (offset/length ignored — recomputed
    here) with the entry's exact bytes.  Rows are laid out sorted by
    hash, so identical entry sets always produce identical segments.
    The data file is renamed into place first, the index second: the
    index rename is the commit point.
    """
    from ..sim.distributed import _atomic_write

    ordered = sorted(records, key=lambda pair: pair[0].hash)
    if not ordered:
        return None
    segments_dir.mkdir(parents=True, exist_ok=True)
    id_ = uuid.uuid4().hex
    data_path = segment_data_path(segments_dir, id_)
    tmp = data_path.with_name(
        data_path.name + f".tmp-{os.getpid()}"
    )
    entries: dict[str, SegmentEntry] = {}
    offset = 0
    with tmp.open("wb") as fh:
        for meta, data in ordered:
            fh.write(data)
            entries[meta.hash] = SegmentEntry(
                hash=meta.hash, offset=offset, length=len(data),
                mtime=meta.mtime, protocol=meta.protocol, M=meta.M,
                phi=meta.phi, n=meta.n, seed=meta.seed,
                trace_seed=meta.trace_seed, work_target=meta.work_target,
            )
            offset += len(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, data_path)
    index = {
        "format": SEGMENT_INDEX_FORMAT,
        "version": SEGMENT_VERSION,
        "segment": data_path.name,
        "entries": [
            entries[h].to_row() for h in sorted(entries)
        ],
    }
    _atomic_write(
        segment_index_path(segments_dir, id_),
        json.dumps(index, sort_keys=True) + "\n",
    )
    return Segment(id=id_, data_path=data_path, entries=entries)


def _load_index(segments_dir: pathlib.Path, id_: str) -> Segment:
    path = segment_index_path(segments_dir, id_)
    try:
        index = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(
            f"{path}: unreadable segment index ({exc}); the store "
            "directory is damaged — restore it or delete the "
            ".idx/.seg pair and recompact"
        ) from exc
    if not isinstance(index, dict) \
            or index.get("format") != SEGMENT_INDEX_FORMAT:
        raise ParameterError(
            f"{path}: not a {SEGMENT_INDEX_FORMAT} record; the store "
            "directory holds foreign files"
        )
    if index.get("version") != SEGMENT_VERSION:
        raise ParameterError(
            f"{path}: unsupported segment version "
            f"{index.get('version')!r} (this library speaks version "
            f"{SEGMENT_VERSION})"
        )
    entries = {}
    for row in index.get("entries", ()):
        entry = SegmentEntry.from_row(row)
        entries[entry.hash] = entry
    return Segment(
        id=id_,
        data_path=segment_data_path(segments_dir, id_),
        entries=entries,
    )


def load_segments(segments_dir: pathlib.Path) -> Iterator[Segment]:
    """Every committed segment under ``segments_dir``, id-sorted.

    Only ``.idx`` files count (the commit markers); orphan ``.seg``
    files and in-flight temp files are invisible here.  A segment that
    vanishes between listing and load (a concurrent gc rewrite) is
    skipped — its replacement shows up on the caller's next scan.
    """
    try:
        names = sorted(os.listdir(segments_dir))
    except FileNotFoundError:
        return
    for name in names:
        if not name.endswith(".idx") or ".tmp-" in name:
            continue
        try:
            yield _load_index(segments_dir, name[:-4])
        except ParameterError as exc:
            if "unreadable segment index" in str(exc) \
                    and not segment_index_path(
                        segments_dir, name[:-4]).exists():
                continue  # concurrently rewritten; skip
            raise
