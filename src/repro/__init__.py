"""repro — in-memory buddy checkpointing: models, protocols, simulation.

A production-quality reproduction of

    Jack Dongarra, Thomas Hérault, Yves Robert,
    "Revisiting the double checkpointing algorithm", APDCM 2013.

The library has three layers:

``repro.core``
    The paper's unified analytical model: the overlap model ``θ(φ)``,
    waste/period/risk formulas for DOUBLE-BLOCKING, DOUBLE-NBL,
    DOUBLE-BOF, TRIPLE and TRIPLE-BOF, plus Young/Daly comparators and the
    fork/copy-on-write overhead model.
``repro.sim``
    A discrete-event simulator of a buddy-checkpointed platform (nodes,
    failure injection, buddy transfers, protocol state machines) together
    with fast vectorised Monte Carlo estimators used to validate the model.
``repro.experiments``
    Scenario definitions (Table I) and generators that regenerate every
    table and figure of the paper's evaluation (§VI).

Quickstart
----------
>>> import repro
>>> base = repro.scenarios.BASE.parameters(M="7h")
>>> repro.optimal_period(repro.TRIPLE, base, phi=0.4)      # doctest: +SKIP
634.7...
>>> repro.waste_at_optimum(repro.DOUBLE_NBL, base, phi=0.4).total  # doctest: +SKIP
0.0147...
"""

from ._version import __version__
from . import errors, io, units
from .core import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    PROTOCOLS,
    OverlapModel,
    Parameters,
    ProtocolSpec,
    get_protocol,
    optimal_period,
    feasible,
    risk_window,
    success_probability,
    success_probability_base,
    fatal_failure_probability,
    waste,
    waste_at_optimum,
    waste_breakdown,
)
from .core.waste import execution_time
from . import experiments
from .experiments import scenarios

__all__ = [
    "__version__",
    "errors",
    "io",
    "units",
    "scenarios",
    "experiments",
    "OverlapModel",
    "Parameters",
    "ProtocolSpec",
    "PROTOCOLS",
    "DOUBLE_BLOCKING",
    "DOUBLE_NBL",
    "DOUBLE_BOF",
    "TRIPLE",
    "TRIPLE_BOF",
    "get_protocol",
    "waste",
    "waste_at_optimum",
    "waste_breakdown",
    "execution_time",
    "optimal_period",
    "feasible",
    "risk_window",
    "success_probability",
    "success_probability_base",
    "fatal_failure_probability",
]
