"""Single-flight request coalescing for identical expensive queries.

A cold report query against the campaign service costs a campaign
execution; N identical queries arriving together must cost **one**, not
N (the classic cache-stampede problem).  :class:`Coalescer` is the
standard single-flight fix: the first caller of a key becomes the
*leader* and computes; concurrent callers of the same key become
*followers* and wait for the leader's result.  Two properties are
load-bearing for the service:

* **The leader's work is never cancelled.**  A follower that gives up
  (``timeout=``) raises :class:`CoalesceTimeout` and walks away; the
  leader keeps computing and, for the service's report path, the
  results still land in the store — the next identical query is warm.
  Coalescing deduplicates work; it must never *destroy* it.
* **Errors propagate to everyone.**  A leader failure is re-raised to
  every follower of that flight (the exception object is shared), and
  the flight is cleared — a later call starts a fresh computation
  rather than caching the failure.

Keys are opaque hashables; the service keys report fills on the spec's
identity fingerprint (the same canonical JSON that names manifests), so
"identical query" means *spec identity*, not request-byte equality.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import ReproError
from ..obs import Counter, default_registry

__all__ = ["CoalesceTimeout", "CoalesceStats", "Coalescer"]


class CoalesceTimeout(ReproError, TimeoutError):
    """A coalesced follower gave up waiting for the flight's leader.

    The leader's computation continues unaffected — timing out observes
    slowness, it does not cancel work.
    """


@dataclass(frozen=True)
class CoalesceStats:
    """Counters of one :class:`Coalescer` (``led`` flights computed,
    ``joined`` calls served by someone else's flight)."""

    led: int
    joined: int
    timeouts: int
    in_flight: int

    def describe(self) -> str:
        return (f"{self.led} led, {self.joined} joined, "
                f"{self.timeouts} timeouts, {self.in_flight} in flight")


class _Flight:
    """One in-progress computation: its completion event and outcome."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class Coalescer:
    """Single-flight deduplication of concurrent identical computations.

    Thread-safe; one instance serves every key.  ``run`` either computes
    (leader) or waits (follower); by the time it returns, the flight for
    that key is finished — sequential calls with the same key each
    compute, only *concurrent* ones coalesce.
    """

    def __init__(self, *, registry=None) -> None:
        self._lock = threading.Lock()
        self._flights: dict = {}
        # Counters are registry instruments (repro_coalescer_*); pass
        # registry=repro.obs.default_registry() (the service does) to
        # export them process-wide.  stats() stays a thin per-instance
        # view either way.
        self._led = Counter("repro_coalescer_led_total",
                            help="Flights computed as leader.")
        self._joined = Counter("repro_coalescer_joined_total",
                               help="Calls served by someone else's "
                                    "flight.")
        self._timeouts = Counter("repro_coalescer_timeouts_total",
                                 help="Followers that gave up waiting.")
        if registry is None:
            registry = default_registry()
        for instrument in (self._led, self._joined, self._timeouts):
            registry.register(instrument)

    def run(self, key, compute, *, timeout: float | None = None):
        """The result of ``compute()``, computed once per concurrent key.

        The first caller for ``key`` runs ``compute`` on its own thread;
        callers arriving while that flight is open wait for its outcome
        (result or exception) instead of recomputing.  ``timeout``
        bounds only a *follower's* wait: expiry raises
        :class:`CoalesceTimeout` while the leader carries on.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
                self._led.inc()
            else:
                self._joined.inc()
        if leader:
            try:
                flight.value = compute()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.value
        if not flight.done.wait(timeout):
            self._timeouts.inc()
            raise CoalesceTimeout(
                f"gave up waiting {timeout:g}s for the in-flight "
                f"computation of {key!r}; the computation itself "
                "continues and its result will be available to later "
                "callers"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value

    def stats(self) -> CoalesceStats:
        """Per-instance counters (a thin view over the registry
        instruments; see ``repro_coalescer_*`` in ``GET /metrics`` for
        the process-wide series)."""
        with self._lock:
            return CoalesceStats(
                led=int(self._led.value), joined=int(self._joined.value),
                timeouts=int(self._timeouts.value),
                in_flight=len(self._flights),
            )
