"""The service's campaign table: handles, worker pool, event logs.

One :class:`CampaignHandle` per submitted spec *identity* — submitting
a spec twice returns the same handle (submission is idempotent, like
the store's publish), and a handle whose run failed or was cancelled is
re-opened with ``resume=True`` on the same results file, finishing only
the remaining cells.  Each handle executes at most once at a time, on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor`; its
:class:`~repro.sim.executor.CampaignSession` publishes every event into
the handle's replayable wire-dict log via an extra bus consumer, so any
number of HTTP streamers follow one campaign without touching the
execution loop (the log is the buffering the synchronous bus contract
tells slow consumers to bring).

Lifecycle of a handle: ``queued`` → ``running`` → ``finished`` /
``failed`` / ``cancelled`` — exactly the session states plus
``queued``, and terminal states are re-openable by a fresh submit of
the same spec.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import CampaignCancelled, ParameterError
from ..sim.events import EventConsumer, event_to_dict
from ..sim.spec import CampaignSpec

__all__ = ["CampaignHandle", "CampaignRegistry"]

#: Handle states (the session's lifecycle plus ``queued``).
HANDLE_STATES = (
    "queued", "running", "finished", "failed", "cancelled",
)
_TERMINAL = ("finished", "failed", "cancelled")


def campaign_id(spec: CampaignSpec) -> str:
    """The service's name for a spec: its identity fingerprint, hashed.

    Volatile policy fields (workers, chunking, store wiring) do not
    change the id — two submissions that produce byte-identical results
    are one campaign, however they are parallelised.
    """
    canonical = json.dumps(spec.fingerprint(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class _LogConsumer(EventConsumer):
    """Bus consumer that appends each event's wire dict to the handle's
    log — O(encode) per event, so the producing loop never waits on a
    network peer."""

    def __init__(self, handle: "CampaignHandle"):
        self.handle = handle

    def on_event(self, event) -> None:
        self.handle._append(event_to_dict(event))


class CampaignHandle:
    """One submitted campaign: its state, session, and replayable log.

    All mutation happens under one condition variable; readers
    (:meth:`snapshot`, :meth:`events`, :meth:`wait`) are safe from any
    thread while the worker executes.
    """

    def __init__(self, id_: str, spec: CampaignSpec,
                 results_path: pathlib.Path):
        self.id = id_
        self.spec = spec
        self.results_path = results_path
        self.state = "queued"
        self.error: BaseException | None = None
        self.session = None
        #: How many times this handle has been (re-)submitted.
        self.runs = 0
        self._cond = threading.Condition()
        self._log: list[dict] = []
        self._log_done = False
        self._cancel_requested = False

    # -- mutation (worker / registry side) -----------------------------
    def _append(self, wire_dict: dict) -> None:
        with self._cond:
            self._log.append(wire_dict)
            self._cond.notify_all()

    def _set_state(self, state: str,
                   error: BaseException | None = None) -> None:
        with self._cond:
            self.state = state
            self.error = error
            if state in _TERMINAL:
                self._log_done = True
            self._cond.notify_all()

    def _reopen(self) -> None:
        """Back to ``queued`` for a resume run; the log starts over
        (the new stream replays recovered cells as ``resume`` triples,
        so a fresh follower still reaches the campaign's full state)."""
        with self._cond:
            self.state = "queued"
            self.error = None
            self.session = None
            self._log = []
            self._log_done = False
            self._cancel_requested = False
            self._cond.notify_all()

    # -- queries (HTTP side) -------------------------------------------
    def cancel(self) -> None:
        """Request cancellation: queued handles never start; running
        sessions stop at the next cell boundary."""
        with self._cond:
            self._cancel_requested = True
            session = self.session
        if session is not None:
            session.cancel()

    def snapshot(self) -> dict:
        """A JSON-safe status view (state, progress, counters)."""
        with self._cond:
            state = self.state
            error = self.error
            session = self.session
            events_logged = len(self._log)
        progress = None
        if session is not None:
            p = session.progress()
            progress = {
                "cells_total": p.cells_total,
                "cells_resumed": p.cells_resumed,
                "cells_cached": p.cells_cached,
                "cells_run": p.cells_run,
                "replicas_run": p.replicas_run,
                "elapsed": p.elapsed,
            }
        return {
            "id": self.id,
            "state": state,
            "runs": self.runs,
            "events": events_logged,
            "results_path": str(self.results_path),
            "progress": progress,
            "error": None if error is None else str(error),
        }

    def wait(self, timeout: float | None = None) -> str:
        """Block until the handle is terminal (or ``timeout``); returns
        the state either way."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self.state not in _TERMINAL:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                # Every state change notifies, so an untimed wait is
                # honest — no poll loop, wakeup is immediate.
                self._cond.wait(remaining)
            return self.state

    def events(self, *, follow: bool = True):
        """Iterate the wire-dict event log from the beginning.

        ``follow=True`` keeps yielding as the campaign produces more,
        ending when the stream is terminal — a late subscriber replays
        to the campaign's exact current state first (the log *is* the
        stream, so the consistent-observer property carries over to
        HTTP streamers for free).  ``follow=False`` returns what has
        been logged so far without blocking.
        """
        position = 0
        while True:
            with self._cond:
                while follow and position >= len(self._log) \
                        and not self._log_done:
                    # _append/_set_state notify on every change, so
                    # followers wake the moment an event lands rather
                    # than on a poll interval.
                    self._cond.wait()
                chunk = self._log[position:]
                position += len(chunk)
                finished = self._log_done and position >= len(self._log)
            yield from chunk
            if not follow or finished:
                return


class CampaignRegistry:
    """Campaign handles keyed by spec identity, run on a worker pool.

    ``backend_factory`` (spec → :class:`~repro.sim.backends
    .CampaignBackend` or ``None``) lets tests inject counting backends;
    the default builds each session's backend from its policy.
    """

    def __init__(
        self,
        store,
        data_dir: str | pathlib.Path,
        *,
        workers: int = 2,
        backend_factory=None,
    ):
        if workers < 1:
            raise ParameterError(
                f"the service worker pool needs >= 1 worker, "
                f"got {workers!r}"
            )
        self.store = store
        self.data_dir = pathlib.Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._backend_factory = backend_factory
        self._lock = threading.Lock()
        self._handles: dict[str, CampaignHandle] = {}
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="campaign-worker",
        )

    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> tuple[CampaignHandle, bool]:
        """Register (or re-open) the campaign for ``spec``.

        Returns ``(handle, created)``: idempotent for queued, running
        and finished campaigns; a failed or cancelled one is re-queued
        with ``resume=True`` so only its remaining cells execute.
        """
        if spec.policy.queue is not None:
            raise ParameterError(
                "the campaign service runs submissions on its own "
                "worker pool; a distributed queue campaign is driven by "
                "its queue workers, not by a service (drop policy.queue "
                "from the submitted spec)"
            )
        id_ = campaign_id(spec)
        with self._lock:
            if self._closed:
                raise ParameterError(
                    "the service is shutting down and no longer accepts "
                    "campaign submissions"
                )
            handle = self._handles.get(id_)
            if handle is not None:
                if handle.state not in ("failed", "cancelled"):
                    return handle, False
                resume = True
                handle._reopen()
            else:
                resume = False
                results_path = (
                    self.data_dir / "campaigns" / id_ / "results.jsonl"
                )
                handle = CampaignHandle(id_, spec, results_path)
                self._handles[id_] = handle
            handle.runs += 1
            self._pool.submit(self._run, handle, resume)
            return handle, not resume and handle.runs == 1

    def get(self, id_: str) -> CampaignHandle:
        with self._lock:
            handle = self._handles.get(id_)
        if handle is None:
            raise ParameterError(
                f"unknown campaign id {id_!r}; GET /campaigns lists the "
                "known ones"
            )
        return handle

    def list(self) -> list[dict]:
        with self._lock:
            handles = list(self._handles.values())
        return [handle.snapshot() for handle in handles]

    # ------------------------------------------------------------------
    def _run(self, handle: CampaignHandle, resume: bool) -> None:
        with handle._cond:
            if handle._cancel_requested:
                handle.state = "cancelled"
                handle._log_done = True
                handle._cond.notify_all()
                return
            handle.state = "running"
            handle._cond.notify_all()
        try:
            from ..sim.executor import CampaignSession

            backend = None if self._backend_factory is None \
                else self._backend_factory(handle.spec)
            # A resumed handle recovers its own previous results file;
            # the shared store instance is passed directly so every
            # session (and every report query) warms one cache.
            session = CampaignSession(
                handle.spec, results_path=handle.results_path,
                resume=resume, store=self.store, backend=backend,
                consumers=(_LogConsumer(handle),),
            )
            with handle._cond:
                handle.session = session
                cancel_now = handle._cancel_requested
            if cancel_now:
                session.cancel()
            session.run()
            handle._set_state("finished")
        except CampaignCancelled as exc:
            handle._set_state("cancelled", exc)
        except BaseException as exc:  # noqa: BLE001 - worker must not die
            handle._set_state("failed", exc)

    # ------------------------------------------------------------------
    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting, then drain (or cancel) the in-flight work.

        ``drain=True`` lets queued and running campaigns finish;
        ``drain=False`` cancels them at the next cell boundary — either
        way no sink is ever torn mid-cell, and a cancelled campaign's
        results file resumes cleanly on the next submit.  ``timeout``
        bounds the drain: campaigns still running at the deadline are
        cancelled (cell-aligned) before the pool is joined.
        """
        with self._lock:
            self._closed = True
            handles = list(self._handles.values())
        if not drain:
            for handle in handles:
                handle.cancel()
        elif timeout is not None:
            deadline = time.monotonic() + timeout
            for handle in handles:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or \
                        handle.wait(max(remaining, 0.0)) not in _TERMINAL:
                    handle.cancel()
        self._pool.shutdown(wait=True)
