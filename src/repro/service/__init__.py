"""Campaign service: an always-on HTTP query/submit daemon over the store.

Everything else in this repository is a one-shot process; this package
is the long-running front end the ROADMAP's north star asks for, with
the :class:`~repro.store.CampaignStore` as its database and cache.  It
is deliberately stdlib-only — a threaded :mod:`http.server` daemon, no
web framework — and deliberately thin: the campaign engine already
exposes exactly the service-shaped seams
(:class:`~repro.sim.executor.CampaignSession` = submit/stream/poll, the
event wire format of :mod:`repro.sim.events` = the NDJSON schema,
:func:`repro.store.store.cells_from_store` = the zero-simulation query
path), so the service only binds them to HTTP.

Layers:

* :mod:`repro.service.wire` — request/response plumbing: JSON bodies
  and responses, the ``spec=`` query-parameter gate (everything enters
  through :meth:`~repro.sim.spec.CampaignSpec.from_dict`), NDJSON
  framing of the shared event wire format.
* :mod:`repro.service.coalesce` — single-flight request coalescing:
  identical concurrent cold report queries run **one** campaign;
  waiters that time out never cancel the leader's work (the result is
  still warehoused for the next query).
* :mod:`repro.service.registry` — the campaign table: one
  :class:`~repro.service.registry.CampaignHandle` per submitted spec
  identity, executed on a bounded worker pool, each publishing its
  event stream into a replayable in-memory log that any number of
  HTTP streamers can follow.
* :mod:`repro.service.app` — :class:`~repro.service.app.CampaignService`,
  the HTTP daemon itself (endpoints, graceful drain) behind
  ``repro-checkpoint serve``.

Concurrency model: many reader threads (report queries, progress polls,
event streamers) plus a small writer pool (campaign sessions) share one
store *instance* — safe because store reads are lock-free on disk
(atomic-rename publish means a reader never sees a torn entry), the
hot-cell cache takes a lock only around its map, and the event logs use
one condition variable each.  :meth:`CampaignStore.read_stats`
(``peak_concurrent``) exists to *prove* the concurrency under load
rather than assume it.

Observability: every request is metered into the process-wide
:func:`repro.obs.default_registry` (per-route latency histograms and
status-code counters, plus whatever the store/executor/coalescer
recorded) and served back as Prometheus text exposition at
``GET /metrics``; with a tracer installed each request is a span.
"""

from .app import CampaignService
from .coalesce import Coalescer, CoalesceStats, CoalesceTimeout
from .registry import CampaignHandle, CampaignRegistry

__all__ = [
    "CampaignService",
    "CampaignHandle",
    "CampaignRegistry",
    "Coalescer",
    "CoalesceStats",
    "CoalesceTimeout",
]
