"""The HTTP daemon: endpoints, report queries, graceful drain.

:class:`CampaignService` binds the registry, the store and the
coalescer to a threaded stdlib HTTP server (one thread per connection,
``ThreadingHTTPServer``).  Endpoints, all JSON unless noted:

=========================================  ===============================
``GET  /healthz``                          liveness + store/cache/read
                                           counters
``GET  /metrics``                          Prometheus text exposition of
                                           the process-wide registry
                                           (``repro.obs``)
``POST /campaigns``                        submit a spec (the body is the
                                           ``repro-campaign-spec`` JSON);
                                           idempotent per spec identity
``GET  /campaigns``                        list known campaigns
``GET  /campaigns/<id>``                   one campaign's status/progress
``POST /campaigns/<id>/cancel``            cell-aligned cancellation
``GET  /campaigns/<id>/events``            the event stream as NDJSON
                                           (``?follow=0`` for replay-only)
``GET/POST /reports``                      waste-surface report for a
                                           spec — zero simulation when
                                           the store covers it
``POST /shutdown``                         graceful drain and exit
=========================================  ===============================

The report path is the service's reason to exist: coverage is checked
against the store first, a fully-warehoused spec renders straight from
``preload`` + :class:`~repro.store.cache.HotCellCache` +
:func:`~repro.experiments.report.store_report` with **zero**
simulations, and only missing cells trigger a (single-flight coalesced)
fill campaign whose results are published for every later query.

Shutdown never tears a sink: draining lets sessions finish, a bounded
or immediate shutdown cancels them *between* cells, and either way the
results files are valid resumable prefixes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from ..errors import ParameterError, ReproError
from ..obs import DEFAULT_TIME_BUCKETS, current_tracer, default_registry
from ..store import CampaignStore
from .coalesce import Coalescer, CoalesceTimeout
from .registry import CampaignRegistry
from .wire import (
    NDJSON_CONTENT_TYPE,
    dump_json,
    ndjson_line,
    parse_query,
    read_json_body,
    spec_from_wire,
)

__all__ = ["CampaignService", "PROMETHEUS_CONTENT_TYPE"]

#: How a report query treats cells the store does not cover.
ON_MISS_MODES = ("run", "fail")

#: Content type of the ``GET /metrics`` exposition body.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``/campaigns/<id>/<action>`` suffixes that get their own route label.
_CAMPAIGN_ACTIONS = ("events", "cancel")


def _route_template(parts: list[str]) -> str:
    """The bounded-cardinality route label for metrics: campaign ids
    collapse to ``{id}`` and anything unroutable collapses to a single
    ``(unmatched)`` bucket, so a misbehaving client cannot mint series.
    """
    if not parts:
        return "/"
    head = parts[0]
    if head == "campaigns":
        if len(parts) == 1:
            return "/campaigns"
        if len(parts) == 2:
            return "/campaigns/{id}"
        if len(parts) == 3 and parts[2] in _CAMPAIGN_ACTIONS:
            return "/campaigns/{id}/" + parts[2]
        return "(unmatched)"
    if len(parts) == 1 and head in ("healthz", "shutdown", "reports",
                                    "metrics"):
        return "/" + head
    return "(unmatched)"


class _MissingCells(ReproError):
    """A ``on_miss="fail"`` report found the store incomplete (HTTP 409)."""


class CampaignService:
    """The always-on campaign daemon; start → query → shutdown.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction).  Usable as a context manager::

        with CampaignService(store=store_dir, data_dir=data_dir) as svc:
            urllib.request.urlopen(svc.url("/healthz"))

    ``backend_factory`` is forwarded to both the registry's sessions
    and report fill runs — the tests' counting-backend hook.
    """

    def __init__(
        self,
        *,
        store,
        data_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        backend_factory=None,
        report_timeout: float | None = None,
    ):
        if not isinstance(store, CampaignStore):
            store = CampaignStore(store, create=True)
        self.store = store
        self.registry = CampaignRegistry(
            store, data_dir, workers=workers,
            backend_factory=backend_factory,
        )
        self.metrics = default_registry()
        self.coalescer = Coalescer(registry=self.metrics)
        self._backend_factory = backend_factory
        self._report_timeout = report_timeout
        self._accepting = True
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._closed = threading.Event()
        self._httpd = ThreadingHTTPServer(
            (host, port), _build_handler(self)
        )
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "CampaignService":
        """Serve on a daemon thread; returns self (already listening —
        the socket is bound by the constructor, so no request races the
        start)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="campaign-service", daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground path)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting, drain (or cancel) sessions, close the socket.

        Safe to call more than once and from any thread, including a
        request handler's.  Ordering matters: submissions are refused
        first (503), then the registry drains — no sink is torn, every
        results file stays a valid resumable prefix — and only then is
        the listener closed, so streamers watching a draining campaign
        see its stream end cleanly.
        """
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self._accepting = False
        self.registry.shutdown(drain=drain, timeout=timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._closed.set()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until a shutdown (from any thread — a signal handler's
        or ``POST /shutdown``'s) has fully completed."""
        return self._closed.wait(timeout)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def status(self) -> dict:
        cache = self.store.cache_stats()
        reads = self.store.read_stats()
        return {
            "status": "ok" if self._accepting else "draining",
            "accepting": self._accepting,
            "campaigns": len(self.registry.list()),
            "store": {
                "root": str(self.store.root),
                "cache": None if cache is None else {
                    "entries": cache.entries,
                    "bytes": cache.bytes,
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                },
                "reads": {
                    "lookups": reads.lookups,
                    "active": reads.active,
                    "peak_concurrent": reads.peak_concurrent,
                },
            },
            "coalescer": self.coalescer.stats().describe(),
        }

    def _observe_request(self, route: str, method: str,
                         code: int | None, elapsed: float) -> None:
        """Record one handled request into the per-route series
        (``repro_http_request_seconds{route,method}`` and
        ``repro_http_requests_total{route,code}``)."""
        if not self.metrics.enabled:
            return
        self.metrics.histogram(
            "repro_http_request_seconds", DEFAULT_TIME_BUCKETS,
            help="HTTP request handling wall-clock, by route and method "
                 "(streams count until the last byte).",
            unit="seconds", labels={"route": route, "method": method},
        ).observe(elapsed)
        self.metrics.counter(
            "repro_http_requests_total",
            help="HTTP requests handled, by route and status code.",
            labels={"route": route, "code": str(code or 0)},
        ).inc()

    def report_query(self, spec, *, on_miss: str = "run") -> dict:
        """A spec's waste-surface report, warm cells costing zero sims.

        The store's coverage decides the path: fully covered renders
        directly (``preload`` + hot-cell cache + ``store_report``);
        missing cells either refuse (``on_miss="fail"``) or run a
        single-flight coalesced fill campaign that publishes into the
        store, after which the render proceeds warm.
        """
        from ..experiments.report import store_report

        if on_miss not in ON_MISS_MODES:
            raise ParameterError(
                f"unknown on_miss mode {on_miss!r}; "
                f"known: {list(ON_MISS_MODES)}"
            )
        if spec.policy.queue is not None:
            raise ParameterError(
                "report queries cannot drive a distributed queue "
                "campaign; drop policy.queue from the spec"
            )
        present, total = self.store.coverage(spec)
        filled = None
        if present < total:
            # The footprint over-approximates under adaptive control,
            # so "not covered" may still resolve warm — the fill run
            # consults the store per cell and only simulates true
            # misses (and N identical concurrent queries fill once).
            if on_miss == "fail":
                raise _MissingCells(
                    f"store covers {present}/{total} replica entries of "
                    "this spec and on_miss='fail' forbids simulating "
                    "the rest; submit the campaign (POST /campaigns) "
                    "or query with on_miss=run"
                )
            filled = self._fill(spec)
        text = store_report(self.store, spec)
        return {
            "report": text,
            "coverage": {"present": present, "total": total},
            "simulated_cells": 0 if filled is None else filled.cells_run,
            "simulated_replicas": 0 if filled is None
            else filled.replicas_run,
        }

    def _fill(self, spec):
        """Run the missing cells of ``spec`` into the store (coalesced
        on spec identity); returns the fill's execution report."""
        from ..sim.executor import execute_spec

        key = json.dumps(spec.fingerprint(), sort_keys=True)

        def compute():
            backend = None if self._backend_factory is None \
                else self._backend_factory(spec)
            # The fill must publish, whatever the submitted policy's
            # store wiring said (both fields are volatile).
            fill_spec = replace(spec, policy=replace(
                spec.policy, store=None, store_mode="read-write",
            ))
            execution = execute_spec(
                fill_spec, store=self.store, backend=backend,
            )
            return execution.report

        return self.coalescer.run(
            key, compute, timeout=self._report_timeout,
        )


# ----------------------------------------------------------------------
# HTTP handler
# ----------------------------------------------------------------------
def _build_handler(service: CampaignService):
    """The per-service handler class (the stdlib API wants a class, the
    service wants per-instance state; a closure bridges them)."""

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-campaign-service/1"

        # -- plumbing --------------------------------------------------
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging is the caller's business, not stderr's

        def send_response(self, code, message=None) -> None:
            # Every response funnels through here (JSON, errors and the
            # NDJSON stream alike), so it is the one status-capture
            # point the request metrics need.
            self._obs_status = int(code)
            super().send_response(code, message)

        def _send_json(self, status: int, payload: dict) -> None:
            body = dump_json(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _route(self, method: str) -> None:
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            route = _route_template(parts)
            self._obs_status = None
            started = time.perf_counter()
            tracer = current_tracer()
            try:
                if tracer is None:
                    self._handle(method, parts, parsed.query)
                else:
                    with tracer.span("http.request", "http",
                                     method=method, route=route) as span:
                        self._handle(method, parts, parsed.query)
                        span.args["code"] = self._obs_status
            finally:
                service._observe_request(
                    route, method, self._obs_status,
                    time.perf_counter() - started,
                )

        def _handle(self, method: str, parts: list[str],
                    raw_query: str) -> None:
            try:
                query = parse_query(raw_query)
                self._dispatch(method, parts, query)
            except _MissingCells as exc:
                self._error(HTTPStatus.CONFLICT, str(exc))
            except CoalesceTimeout as exc:
                self._error(HTTPStatus.GATEWAY_TIMEOUT, str(exc))
            except ParameterError as exc:
                self._error(HTTPStatus.BAD_REQUEST, str(exc))
            except BrokenPipeError:
                self.close_connection = True
            except ReproError as exc:
                self._error(HTTPStatus.INTERNAL_SERVER_ERROR, str(exc))

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            self._route("POST")

        # -- routes ----------------------------------------------------
        def _dispatch(self, method: str, parts: list[str],
                      query: dict) -> None:
            if parts == ["healthz"] and method == "GET":
                self._send_json(HTTPStatus.OK, service.status())
                return
            if parts == ["metrics"] and method == "GET":
                self._send_metrics()
                return
            if parts == ["shutdown"] and method == "POST":
                self._shutdown()
                return
            if parts == ["reports"]:
                self._reports(method, query)
                return
            if parts and parts[0] == "campaigns":
                self._campaigns(method, parts[1:], query)
                return
            self._error(
                HTTPStatus.NOT_FOUND,
                f"no such endpoint: {method} /{'/'.join(parts)}",
            )

        def _campaigns(self, method: str, rest: list[str],
                       query: dict) -> None:
            if not rest:
                if method == "POST":
                    self._submit()
                elif method == "GET":
                    self._send_json(HTTPStatus.OK, {
                        "campaigns": service.registry.list(),
                    })
                else:
                    self._error(HTTPStatus.NOT_FOUND,
                                f"no such endpoint: {method} /campaigns")
                return
            handle = service.registry.get(rest[0])
            action = rest[1:]
            if not action and method == "GET":
                self._send_json(HTTPStatus.OK, handle.snapshot())
            elif action == ["cancel"] and method == "POST":
                handle.cancel()
                self._send_json(HTTPStatus.OK, handle.snapshot())
            elif action == ["events"] and method == "GET":
                follow = query.get("follow", "1") not in ("0", "false")
                self._stream_events(handle, follow)
            else:
                self._error(
                    HTTPStatus.NOT_FOUND,
                    f"no such endpoint: {method} /campaigns/<id>"
                    f"/{'/'.join(action)}",
                )

        def _send_metrics(self) -> None:
            body = service.metrics.render_prometheus().encode("utf-8")
            self.send_response(HTTPStatus.OK)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _submit(self) -> None:
            if not service._accepting:
                self._error(
                    HTTPStatus.SERVICE_UNAVAILABLE,
                    "the service is draining and no longer accepts "
                    "campaign submissions",
                )
                return
            spec = spec_from_wire(read_json_body(self))
            handle, created = service.registry.submit(spec)
            self._send_json(
                HTTPStatus.CREATED if created else HTTPStatus.OK,
                {**handle.snapshot(),
                 "links": {
                     "self": f"/campaigns/{handle.id}",
                     "events": f"/campaigns/{handle.id}/events",
                 }},
            )

        def _reports(self, method: str, query: dict) -> None:
            if method == "POST":
                body = read_json_body(self)
                spec_data = body.get("spec")
                if spec_data is None:
                    raise ParameterError(
                        "POST /reports body needs a 'spec' field "
                        "holding the campaign-spec object"
                    )
                on_miss = body.get("on_miss", "run")
                unknown = set(body) - {"spec", "on_miss"}
                if unknown:
                    raise ParameterError(
                        f"unknown report field(s): {sorted(unknown)}; "
                        "known: spec, on_miss"
                    )
            elif method == "GET":
                if "spec" not in query:
                    raise ParameterError(
                        "GET /reports needs a spec=<url-encoded "
                        "campaign-spec JSON> query parameter"
                    )
                spec_data = query["spec"]
                on_miss = query.get("on_miss", "run")
                unknown = set(query) - {"spec", "on_miss"}
                if unknown:
                    raise ParameterError(
                        f"unknown report query parameter(s): "
                        f"{sorted(unknown)}; known: spec, on_miss"
                    )
            else:
                self._error(HTTPStatus.NOT_FOUND,
                            f"no such endpoint: {method} /reports")
                return
            spec = spec_from_wire(spec_data)
            payload = service.report_query(spec, on_miss=on_miss)
            self._send_json(HTTPStatus.OK, payload)

        def _stream_events(self, handle, follow: bool) -> None:
            self.send_response(HTTPStatus.OK)
            self.send_header("Content-Type", NDJSON_CONTENT_TYPE)
            # The stream has no length; EOF delimits it.
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            try:
                for wire_dict in handle.events(follow=follow):
                    self.wfile.write(ndjson_line(wire_dict))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # the client hung up; the campaign is unaffected

        def _shutdown(self) -> None:
            drain = True
            if self.headers.get("Content-Length"):
                body = read_json_body(self)
                unknown = set(body) - {"drain"}
                if unknown:
                    raise ParameterError(
                        f"unknown shutdown field(s): {sorted(unknown)}; "
                        "known: drain"
                    )
                drain = bool(body.get("drain", True))
            self._send_json(HTTPStatus.ACCEPTED, {
                "status": "shutting down", "drain": drain,
            })
            # The handler thread must not join the serve loop it is
            # itself a request of; hand off and let the response flush.
            threading.Thread(
                target=service.shutdown, kwargs={"drain": drain},
                name="campaign-service-shutdown", daemon=True,
            ).start()

    return _Handler
