"""HTTP request/response plumbing for the campaign service.

One rule: every value that crosses the HTTP boundary goes through an
existing validated gate.  Specs enter through
:meth:`~repro.sim.spec.CampaignSpec.from_dict` (whether they arrive as
a POST body or a URL-encoded ``spec=`` query parameter), events leave
through :func:`repro.sim.events.event_to_dict` — the service defines no
schema of its own, so a curl client, the NDJSON stream and an offline
replay consumer all speak formats that are property-tested elsewhere.

JSON bodies and responses are strict (``allow_nan=False``): anything
non-finite must already be inside a typed :mod:`repro.io` envelope, and
a raw ``NaN`` token reaching the wire is a bug caught at serialisation
time, not a parse error inflicted on some other client.
"""

from __future__ import annotations

import json
import urllib.parse

from ..errors import ParameterError
from ..sim.events import event_from_dict, event_to_dict  # noqa: F401 - one schema, re-exported
from ..sim.spec import CampaignSpec

__all__ = [
    "NDJSON_CONTENT_TYPE",
    "event_from_dict",
    "event_to_dict",
    "dump_json",
    "ndjson_line",
    "parse_query",
    "read_json_body",
    "spec_from_wire",
]

NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: Submitted request bodies larger than this are refused outright — a
#: spec is a small description, never bulk data.
MAX_BODY_BYTES = 4 * 1024 * 1024


def dump_json(payload) -> bytes:
    """A response body: compact, sorted, strictly finite JSON."""
    return (json.dumps(
        payload, sort_keys=True, allow_nan=False,
        separators=(",", ":"),
    ) + "\n").encode("utf-8")


def ndjson_line(payload: dict) -> bytes:
    """One NDJSON stream record (strict JSON + newline)."""
    return (json.dumps(
        payload, sort_keys=True, allow_nan=False,
        separators=(",", ":"),
    ) + "\n").encode("utf-8")


def parse_query(raw_query: str) -> dict:
    """Query parameters as single values (repeats refused by name)."""
    params: dict[str, str] = {}
    for name, value in urllib.parse.parse_qsl(
        raw_query, keep_blank_values=True
    ):
        if name in params:
            raise ParameterError(
                f"query parameter {name!r} given more than once"
            )
        params[name] = value
    return params


def read_json_body(handler) -> dict:
    """The request's JSON object body (refused loudly when malformed)."""
    length = handler.headers.get("Content-Length")
    try:
        length = int(length)
    except (TypeError, ValueError):
        raise ParameterError(
            "request needs a Content-Length header with a JSON body"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ParameterError(
            f"request body of {length} bytes refused (limit "
            f"{MAX_BODY_BYTES}); a campaign spec is small"
        )
    raw = handler.rfile.read(length)
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ParameterError(f"request body is not valid JSON ({exc})") \
            from exc
    if not isinstance(data, dict):
        raise ParameterError(
            f"request body must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def spec_from_wire(data) -> CampaignSpec:
    """A spec from its wire dict, through the one validated gate."""
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ParameterError(
                f"spec parameter is not valid JSON ({exc})"
            ) from exc
    return CampaignSpec.from_dict(data)
