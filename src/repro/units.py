"""Human-friendly unit handling for times, data sizes and rates.

The paper mixes seconds ("R = 4s"), minutes/hours/days (figure axes), data
sizes ("512MB checkpoints") and bandwidths ("1TB/s/node").  Internally the
library uses **seconds** for every duration and **bytes** for every size;
this module converts between the internal representation and the readable
strings used by scenarios, the CLI and reports.

Examples
--------
>>> parse_time("7h")
25200.0
>>> parse_time("1.5 min")
90.0
>>> format_time(25200)
'7h'
>>> parse_size("512MB")
512000000
>>> transfer_time(parse_size("512MB"), parse_rate("1GB/s"))
0.512
"""

from __future__ import annotations

import math
import re
from typing import Final

from .errors import UnitParseError

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "YEAR",
    "TIME_UNITS",
    "SIZE_UNITS",
    "parse_time",
    "format_time",
    "parse_size",
    "format_size",
    "parse_rate",
    "format_rate",
    "transfer_time",
    "per_node_mtbf",
    "platform_mtbf",
]

SECOND: Final[float] = 1.0
MINUTE: Final[float] = 60.0
HOUR: Final[float] = 3600.0
DAY: Final[float] = 86400.0
WEEK: Final[float] = 7 * DAY
#: Julian year, the convention used for "a node MTBF of 50 years".
YEAR: Final[float] = 365.25 * DAY

#: Accepted spellings for each time unit, mapped to seconds.
TIME_UNITS: Final[dict[str, float]] = {
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hrs": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "w": WEEK,
    "week": WEEK,
    "weeks": WEEK,
    "y": YEAR,
    "yr": YEAR,
    "year": YEAR,
    "years": YEAR,
}

#: Decimal (SI) size units, mapped to bytes.  The paper's "512MB" and
#: "1TB/s" figures are storage/network vendor units, i.e. decimal.
SIZE_UNITS: Final[dict[str, int]] = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
    "pb": 10**15,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
    "tib": 2**40,
    "pib": 2**50,
}

_QUANTITY_RE = re.compile(
    r"""^\s*(?P<value>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)\s*
         (?P<unit>[a-zA-Z/]*)\s*$""",
    re.VERBOSE,
)


def _split(text: str | float | int, kind: str) -> tuple[float, str]:
    """Split ``"12.5 min"`` into ``(12.5, "min")``; bare numbers get ``""``."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text), ""
    if not isinstance(text, str):
        raise UnitParseError(f"cannot parse {kind} from {text!r}")
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitParseError(f"cannot parse {kind} from {text!r}")
    return float(match.group("value")), match.group("unit").strip()


def parse_time(text: str | float | int) -> float:
    """Parse a duration into seconds.

    Bare numbers (``int``/``float`` or unit-less strings) are already
    seconds.  Raises :class:`~repro.errors.UnitParseError` on unknown units
    and :class:`~repro.errors.UnitParseError` on negative durations.
    """
    value, unit = _split(text, "time")
    if unit == "":
        seconds = value
    else:
        try:
            seconds = value * TIME_UNITS[unit.lower()]
        except KeyError:
            raise UnitParseError(f"unknown time unit {unit!r} in {text!r}") from None
    if not math.isfinite(seconds) or seconds < 0:
        raise UnitParseError(f"duration must be finite and >= 0, got {text!r}")
    return seconds


_FORMAT_STEPS: Final[list[tuple[float, str]]] = [
    (YEAR, "y"),
    (WEEK, "w"),
    (DAY, "d"),
    (HOUR, "h"),
    (MINUTE, "min"),
    (SECOND, "s"),
]


def format_time(seconds: float, precision: int = 6) -> str:
    """Render a duration with the largest unit that divides it cleanly.

    >>> format_time(90)
    '1.5min'
    >>> format_time(86400)
    '1d'
    """
    if seconds < 0 or not math.isfinite(seconds):
        raise UnitParseError(f"cannot format duration {seconds!r}")
    if seconds == 0:
        return "0s"
    for factor, name in _FORMAT_STEPS:
        if seconds >= factor:
            value = round(seconds / factor, precision)
            # Prefer '90s' over '1.5min'? No: prefer the largest unit with a
            # short decimal expansion, else fall through to seconds.
            if value == int(value) or factor == SECOND or value >= 1:
                return f"{value:g}{name}"
    return f"{seconds:g}s"


def parse_size(text: str | int) -> int:
    """Parse a data size into bytes (``"512MB"`` -> ``512_000_000``)."""
    value, unit = _split(text, "size")
    if unit == "":
        size = value
    else:
        try:
            size = value * SIZE_UNITS[unit.lower()]
        except KeyError:
            raise UnitParseError(f"unknown size unit {unit!r} in {text!r}") from None
    if size < 0 or not math.isfinite(size):
        raise UnitParseError(f"size must be finite and >= 0, got {text!r}")
    return int(round(size))


def format_size(nbytes: int) -> str:
    """Render a byte count using decimal units (``512000000`` -> ``'512MB'``)."""
    if nbytes < 0:
        raise UnitParseError(f"cannot format size {nbytes!r}")
    for unit in ("PB", "TB", "GB", "MB", "kB"):
        factor = SIZE_UNITS[unit.lower()]
        if nbytes >= factor:
            return f"{nbytes / factor:g}{unit}"
    return f"{nbytes}B"


def parse_rate(text: str | float) -> float:
    """Parse a bandwidth such as ``"1TB/s"`` or ``"500Gb/s"`` into bytes/s.

    Lower-case ``b`` after the multiplier prefix means *bits* (divided by 8),
    matching network-vendor conventions; upper-case ``B`` means bytes.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        if text < 0 or not math.isfinite(float(text)):
            raise UnitParseError(f"rate must be finite and >= 0, got {text!r}")
        return float(text)
    if not isinstance(text, str) or "/" not in text:
        raise UnitParseError(f"cannot parse rate from {text!r} (expected e.g. '1GB/s')")
    size_part, _, time_part = text.partition("/")
    time_part = time_part.strip() or "s"
    # Bits vs bytes: inspect the original capitalisation before lowering.
    stripped = size_part.strip()
    match = _QUANTITY_RE.match(stripped)
    if match is None:
        raise UnitParseError(f"cannot parse rate from {text!r}")
    unit = match.group("unit")
    bits = unit.endswith("b") and not unit.endswith("B") and unit != ""
    nbytes = parse_size(stripped if not bits else stripped[:-1] + "B")
    if bits:
        nbytes = nbytes / 8
    denom = TIME_UNITS.get(time_part.lower())
    if denom is None:
        raise UnitParseError(f"unknown rate denominator {time_part!r} in {text!r}")
    return float(nbytes) / denom


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in bytes/s (``1e9`` -> ``'1GB/s'``)."""
    return f"{format_size(int(round(bytes_per_second)))}/s"


def transfer_time(nbytes: float, rate_bytes_per_s: float) -> float:
    """Time to move ``nbytes`` at ``rate_bytes_per_s`` (no latency term)."""
    if rate_bytes_per_s <= 0:
        raise UnitParseError("transfer rate must be > 0")
    if nbytes < 0:
        raise UnitParseError("transfer size must be >= 0")
    return float(nbytes) / float(rate_bytes_per_s)


def per_node_mtbf(platform_mtbf_s: float, n_nodes: int) -> float:
    """Individual-node MTBF from the platform MTBF: ``M_ind = n * M``.

    With independent node failures at rate ``λ`` each, the platform sees
    failures at rate ``n·λ``, hence ``M = M_ind / n`` (paper §VII).
    """
    if n_nodes <= 0:
        raise UnitParseError("node count must be >= 1")
    if platform_mtbf_s <= 0:
        raise UnitParseError("MTBF must be > 0")
    return platform_mtbf_s * n_nodes


def platform_mtbf(node_mtbf_s: float, n_nodes: int) -> float:
    """Platform MTBF from the individual-node MTBF: ``M = M_ind / n``."""
    if n_nodes <= 0:
        raise UnitParseError("node count must be >= 1")
    if node_mtbf_s <= 0:
        raise UnitParseError("MTBF must be > 0")
    return node_mtbf_s / n_nodes
