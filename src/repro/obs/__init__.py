"""Observability: one metrics registry and one tracer for every layer.

The paper's argument is a waste decomposition — where a platform's
wall-clock goes under checkpoint/restart.  :mod:`repro.obs` lets the
reproduction answer the same question about *its own* execution:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — stdlib-only,
  process-wide, thread-safe counters/gauges/fixed-bucket histograms
  with labeled series, a versioned snapshot wire format
  (``repro-metrics`` v1) and Prometheus text exposition (served at
  ``GET /metrics`` by :mod:`repro.service`);
* :class:`Tracer` (:mod:`repro.obs.trace`) — nested spans (campaign →
  cell → replica-batch; store lookup/publish/preload; queue
  claim/steal/lease-refresh; HTTP request) exportable as NDJSON and
  Chrome trace-event JSON (``repro-checkpoint campaign --trace FILE``);
* :class:`MetricsConsumer` (:mod:`repro.obs.consumer`) — the EventBus
  subscriber that turns the campaign event stream into series and
  feeds ``ExecutionReport.metrics``.

Naming convention
-----------------
Every series is named ``repro_<layer>_<name>_<unit>``:

* ``<layer>`` is the subsystem: ``executor``, ``store``, ``queue``,
  ``coalescer``, ``http``;
* ``<name>`` is snake_case and specific (``cache_hits``, ``lookup``,
  ``lease_refreshes``);
* ``<unit>`` is the Prometheus-conventional suffix: ``_total`` for
  counters, ``_seconds`` for latency histograms (buckets from
  :data:`~repro.obs.metrics.DEFAULT_TIME_BUCKETS`), ``_bytes`` /
  ``_entries`` / bare nouns for gauges.

Examples: ``repro_store_cache_hits_total``,
``repro_executor_cell_seconds``, ``repro_http_request_seconds``,
``repro_queue_steals_total``.

On/off switch
-------------
Instrumentation is **on by default** (its cost is gated ≤3% wall-clock
in ``benchmarks/bench_campaign_parallel.py``).  ``REPRO_OBS=off`` in
the environment — or :func:`set_enabled` at runtime — disables the
export side: nothing registers, snapshots are empty, the executor
skips its :class:`MetricsConsumer`.  Component-owned counters behind
``cache_stats()``/``read_stats()`` keep counting regardless; they are
API, not telemetry.
"""

from __future__ import annotations

import os
import threading

from .consumer import MetricsConsumer
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_WIRE_FORMAT,
    METRICS_WIRE_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
    snapshot_from_dict,
)
from .trace import (
    TRACE_WIRE_FORMAT,
    TRACE_WIRE_VERSION,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    span_from_dict,
    uninstall_tracer,
)

__all__ = [
    "METRICS_WIRE_FORMAT",
    "METRICS_WIRE_VERSION",
    "TRACE_WIRE_FORMAT",
    "TRACE_WIRE_VERSION",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsConsumer",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "span",
    "span_from_dict",
    "snapshot_from_dict",
    "render_prometheus",
    "default_registry",
    "enabled",
    "set_enabled",
]

_lock = threading.Lock()
_registry: MetricsRegistry | None = None


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OBS", "on").strip().lower()
    return value not in {"off", "0", "false", "no"}


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use; its enabled
    state seeds from ``REPRO_OBS``)."""
    global _registry
    with _lock:
        if _registry is None:
            _registry = MetricsRegistry(enabled=_env_enabled())
        return _registry


def enabled() -> bool:
    """Is the export side of observability on?"""
    return default_registry().enabled


def set_enabled(flag: bool) -> None:
    """Flip observability at runtime (overrides ``REPRO_OBS``).

    Affects *future* wiring: sessions, stores and services constructed
    after the flip follow the new state; instruments already handed out
    keep working either way.
    """
    default_registry().enabled = bool(flag)
