"""Span tracing: nested, timestamped regions of one process's work.

A :class:`Tracer` records *spans* — named intervals with a parent, a
category, a thread and free-form JSON-safe args — and exports them two
ways:

* NDJSON, one versioned span dict per line (the library's usual wire
  posture: ``format``/``version`` markers, refused by name on the way
  back in);
* Chrome trace-event JSON (``chrome://tracing`` / Perfetto loadable),
  which is what ``repro-checkpoint campaign --trace FILE`` writes.

The executor opens a ``campaign`` root span, a ``cell`` span per grid
cell and a ``replica-batch`` span per emitted batch; the store traces
``store.lookup`` / ``store.publish`` / ``store.preload``; the
distributed queue traces ``queue.claim`` / ``queue.steal`` /
``queue.lease-refresh``; the service traces each HTTP request.  All of
those sites guard on :func:`current_tracer` returning ``None`` — with
no tracer installed the hot paths pay a single global read.

Spans nest per *thread* (each thread keeps its own open-span stack),
and process-pool workers run in other processes entirely — so the
serial backend gives the deepest tree, while pooled backends trace the
coordinating process only.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ParameterError
from .metrics import _float_codec

__all__ = [
    "TRACE_WIRE_FORMAT",
    "TRACE_WIRE_VERSION",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "span",
    "span_from_dict",
]

TRACE_WIRE_FORMAT = "repro-trace-span"
TRACE_WIRE_VERSION = 1
_READ_VERSIONS = frozenset({1})
_SPAN_FIELDS = ("span_id", "parent_id", "name", "category", "start",
                "duration", "thread_id", "thread_name", "args")


@dataclass
class Span:
    """One closed interval.  ``start``/``duration`` are seconds relative
    to the tracer's epoch (a monotonic clock, not wall time)."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    duration: float
    thread_id: int
    thread_name: str
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in _SPAN_FIELDS}
        payload["args"] = dict(payload["args"])
        encode_floats, _ = _float_codec()
        return encode_floats({
            "format": TRACE_WIRE_FORMAT,
            "version": TRACE_WIRE_VERSION,
            **payload,
        })


def span_from_dict(data: dict) -> Span:
    """Reconstruct a span; refuses unknown formats/versions/fields."""
    if not isinstance(data, dict) \
            or data.get("format") != TRACE_WIRE_FORMAT:
        raise ParameterError("not a repro-trace-span record")
    version = data.get("version")
    if version not in _READ_VERSIONS:
        raise ParameterError(
            f"unsupported trace version {version!r} "
            f"(this library reads versions {sorted(_READ_VERSIONS)})"
        )
    got = set(data) - {"format", "version"}
    expected = set(_SPAN_FIELDS)
    if got != expected:
        raise ParameterError(
            f"corrupt trace span: fields {sorted(got)} != "
            f"{sorted(expected)}"
        )
    _, decode_floats = _float_codec()
    payload = decode_floats({name: data[name] for name in _SPAN_FIELDS})
    if not isinstance(payload["args"], dict):
        raise ParameterError("corrupt trace span: args must be an object")
    return Span(**payload)


class Tracer:
    """Collects spans; thread-safe; one instance per traced run."""

    def __init__(self):
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, category: str = "", **args: Any) -> Iterator[Span]:
        """Open a nested span; closes (and records) on exit, even when
        the body raises.  Parenthood follows the per-thread stack."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        thread = threading.current_thread()
        record = Span(
            span_id=span_id, parent_id=parent_id, name=str(name),
            category=str(category), start=self._clock() - self._epoch,
            duration=0.0, thread_id=thread.ident or 0,
            thread_name=thread.name, args=dict(args),
        )
        stack.append(span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.duration = \
                (self._clock() - self._epoch) - record.start
            with self._lock:
                self._spans.append(record)

    def spans(self) -> tuple[Span, ...]:
        """Every *closed* span so far, in start order."""
        with self._lock:
            return tuple(sorted(self._spans, key=lambda s: s.start))

    # -- export --------------------------------------------------------
    def write_ndjson(self, path: str | pathlib.Path) -> int:
        """One span wire dict per line; returns the number written."""
        spans = self.spans()
        with pathlib.Path(path).open("w", encoding="utf-8") as fh:
            for record in spans:
                fh.write(json.dumps(record.to_dict(), sort_keys=True,
                                    allow_nan=False) + "\n")
        return len(spans)

    def to_chrome(self) -> dict:
        """The Chrome trace-event representation (complete ``"X"``
        events, microsecond timestamps, one pid)."""
        pid = os.getpid()
        encode_floats, _ = _float_codec()
        events = [
            {
                "name": record.name,
                "cat": record.category or "repro",
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": pid,
                "tid": record.thread_id,
                "args": encode_floats(dict(record.args)),
            }
            for record in self.spans()
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | pathlib.Path) -> int:
        """Write a Chrome-loadable trace file; returns the span count."""
        trace = self.to_chrome()
        pathlib.Path(path).write_text(
            json.dumps(trace, sort_keys=True, allow_nan=False),
            encoding="utf-8",
        )
        return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# Process-wide current tracer
# ----------------------------------------------------------------------
_tracer_lock = threading.Lock()
_tracer: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (the common, zero-cost case).

    Hot paths should guard on this themselves rather than call
    :func:`span`, which allocates a context manager even when idle.
    """
    return _tracer


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide current tracer."""
    global _tracer
    with _tracer_lock:
        _tracer = tracer
    return tracer


def uninstall_tracer() -> None:
    global _tracer
    with _tracer_lock:
        _tracer = None


@contextmanager
def span(name: str, category: str = "", **args: Any):
    """A span on the current tracer, or a no-op when none is
    installed.  Convenience for warm paths; see :func:`current_tracer`
    for the hot-path guard idiom."""
    tracer = _tracer
    if tracer is None:
        yield None
    else:
        with tracer.span(name, category, **args) as record:
            yield record
