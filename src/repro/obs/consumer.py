"""The EventBus metrics consumer: campaign telemetry off one stream.

:class:`MetricsConsumer` subscribes alongside the sink writer, store
publisher and progress tracker (:mod:`repro.sim.events`) and turns the
event stream into registry series — cell duration histograms, cell and
replica counters broken down by source (``backend``/``store``/
``resume``), and an end-of-campaign replicas-per-second gauge.

It observes into a *campaign-private* :class:`MetricsRegistry` (always
enabled), whose snapshot becomes ``ExecutionReport.metrics`` — the
per-run "where did the time go" answer.  On ``close`` the private
totals are absorbed into the process-wide default registry, so
``GET /metrics`` and ``store stat --metrics`` see the cumulative view
without per-campaign series ever double counting.

Like every consumer it is a pure observer: it never touches the events
or the sink, so its presence cannot perturb result bytes (proven
against ``tests/golden/`` in ``tests/test_obs.py``).
"""

from __future__ import annotations

import time

from ..sim.events import (
    CampaignFinished,
    CampaignStarted,
    CellFinished,
    CellStarted,
    EventConsumer,
    ReplicaBatch,
)
from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["MetricsConsumer"]


class MetricsConsumer(EventConsumer):
    """Campaign events → metrics series.  See the module docstring."""

    def __init__(self, export_registry: MetricsRegistry | None = None):
        if export_registry is None:
            from . import default_registry

            export_registry = default_registry()
        self._export = export_registry
        self.registry = MetricsRegistry()
        self._campaigns = self.registry.counter(
            "repro_executor_campaigns_total",
            help="Campaign executions observed on the event bus.")
        self._cell_seconds = self.registry.histogram(
            "repro_executor_cell_seconds", DEFAULT_TIME_BUCKETS,
            help="Wall-clock per grid cell, CellStarted to CellFinished "
                 "(includes consumer fan-out).", unit="seconds")
        self._replicas_per_second = self.registry.gauge(
            "repro_executor_replicas_per_second", aggregate="max",
            help="Replica throughput of the last finished campaign.")
        self._cells: dict = {}
        self._replicas: dict = {}
        self._batches: dict = {}
        self._started: dict = {}
        self._clock = time.perf_counter

    def _by_source(self, table, name, help, source):
        counter = table.get(source)
        if counter is None:
            counter = table[source] = self.registry.counter(
                name, help=help, labels={"source": source})
        return counter

    def on_event(self, event) -> None:
        if isinstance(event, CellStarted):
            self._started[event.plan.index] = self._clock()
        elif isinstance(event, ReplicaBatch):
            self._by_source(
                self._replicas, "repro_executor_replicas_total",
                "Replica results emitted, by source.", event.source,
            ).inc(len(event.results))
            self._by_source(
                self._batches, "repro_executor_batches_total",
                "Replica batches emitted, by source.", event.source,
            ).inc()
        elif isinstance(event, CellFinished):
            self._by_source(
                self._cells, "repro_executor_cells_total",
                "Grid cells finished, by source.", event.source,
            ).inc()
            started = self._started.pop(event.plan.index, None)
            if started is not None:
                self._cell_seconds.observe(self._clock() - started)
        elif isinstance(event, CampaignStarted):
            self._campaigns.inc()
        elif isinstance(event, CampaignFinished):
            report = event.report
            if report.elapsed > 0:
                self._replicas_per_second.set(
                    report.replicas_run / report.elapsed)

    def finalize(self, *, elapsed: float, replicas_run: int) -> None:
        """Record end-of-campaign throughput before the report is
        built (the session calls this just ahead of CampaignFinished,
        so ``ExecutionReport.metrics`` includes it)."""
        if elapsed > 0:
            self._replicas_per_second.set(replicas_run / elapsed)

    def snapshot(self) -> dict:
        """This campaign's series as the metrics wire dict."""
        return self.registry.snapshot()

    def close(self, error: Exception | None = None) -> None:
        self._export.absorb(self.registry.snapshot())
