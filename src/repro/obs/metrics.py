"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The registry is the single model behind every runtime signal the
reproduction emits — executor cell timings, store hit/miss/verify
latencies, queue claim/steal counters, coalescer outcomes and HTTP
route histograms all land here, and all export the same two ways:

* a versioned snapshot dict (``{"format": "repro-metrics", "version":
  1, "series": [...]}``), JSON-safe via the :mod:`repro.io` float
  sentinels, refused by name on unknown formats/versions/kinds like
  every other wire format in the library;
* Prometheus text exposition (:func:`render_prometheus`), served by
  the campaign service at ``GET /metrics``.

Three design points keep the instrumentation cheap enough to stay on
by default (gated ≤3% in ``benchmarks/bench_campaign_parallel.py``):

* instruments are plain objects with one lock and O(1) updates —
  components hold direct references and never pay a registry lookup on
  the hot path;
* per-instance counters (a store's :class:`~repro.store.store.ReadStats`,
  a cache's :class:`~repro.store.cache.CacheStats`) *are* instruments;
  the registry only aggregates them at snapshot time, so legacy
  per-instance views stay exact while the process-wide view sums over
  live instances;
* disabling observability (``REPRO_OBS=off`` or
  :func:`repro.obs.set_enabled`) empties the *export* side only —
  registration and snapshots become no-ops, but instruments owned by
  components keep counting, because ``cache_stats()`` and
  ``read_stats()`` are load-bearing APIs, not telemetry.
"""

from __future__ import annotations

import math
import re
import threading
import weakref
from typing import Any, Iterable, Mapping

from ..errors import ParameterError


def _float_codec():
    """The :mod:`repro.io` sentinel codec, imported lazily —
    ``repro.io`` itself imports the sim package, which imports the
    executor, which imports :mod:`repro.obs`; a module-level import
    here would close that cycle."""
    from ..io import decode_floats, encode_floats

    return encode_floats, decode_floats

__all__ = [
    "METRICS_WIRE_FORMAT",
    "METRICS_WIRE_VERSION",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "snapshot_from_dict",
    "render_prometheus",
]

METRICS_WIRE_FORMAT = "repro-metrics"
METRICS_WIRE_VERSION = 1
_READ_VERSIONS = frozenset({1})

#: Latency buckets (seconds) shared by every ``*_seconds`` histogram:
#: 100µs to 10s, roughly ×2.5 per step — wide enough for a cached store
#: hit and a multi-second campaign cell on the same axis.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fields every wire series carries, plus the per-kind value fields.
_SERIES_FIELDS = frozenset({"name", "kind", "help", "unit", "labels"})
_KIND_FIELDS = {
    "counter": frozenset({"value"}),
    "gauge": frozenset({"value", "aggregate"}),
    "histogram": frozenset({"le", "counts", "sum", "count"}),
}


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ParameterError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(key, str) or not _LABEL_RE.match(key):
            raise ParameterError(f"invalid metric label name {key!r}")
        if not isinstance(value, str):
            raise ParameterError(
                f"metric label {key!r} value must be a string, "
                f"got {value!r}"
            )
        items.append((key, value))
    return tuple(items)


class _Instrument:
    """Shared identity/bookkeeping of one metric series instance."""

    kind = ""

    def __init__(self, name: str, *, help: str = "", unit: str = "",
                 labels: Mapping[str, str] | None = None):
        self.name = _check_name(name)
        self.help = str(help)
        self.unit = str(unit)
        self.labels = _check_labels(labels)
        self._lock = threading.Lock()

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        """Series identity: same (name, labels) aggregate together."""
        return (self.name, self.labels)

    def _series_head(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "unit": self.unit,
            "labels": dict(self.labels),
        }


class Counter(_Instrument):
    """A monotone sum.  Name by convention ends in ``_total``."""

    kind = "counter"

    def __init__(self, name, *, help="", unit="", labels=None):
        super().__init__(name, help=help, unit=unit, labels=labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(
                f"counter {self.name} cannot decrease (inc {amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A settable level.  ``aggregate`` picks how multiple live
    instances of the same series combine at snapshot time: ``"sum"``
    (cache bytes across caches) or ``"max"`` (peak concurrency)."""

    kind = "gauge"

    def __init__(self, name, *, help="", unit="", labels=None,
                 aggregate: str = "sum"):
        super().__init__(name, help=help, unit=unit, labels=labels)
        if aggregate not in ("sum", "max"):
            raise ParameterError(
                f"gauge aggregate must be 'sum' or 'max', got {aggregate!r}"
            )
        self.aggregate = aggregate
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed upper-bound buckets plus an implicit ``+Inf`` overflow.

    ``buckets`` are finite, strictly increasing upper bounds; counts are
    stored per bucket (non-cumulative) and rendered cumulatively for
    Prometheus.  ``observe`` is O(len(buckets)) with one lock.
    """

    kind = "histogram"

    def __init__(self, name, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                 *, help="", unit="", labels=None):
        super().__init__(name, help=help, unit=unit, labels=labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds) \
                or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ParameterError(
                f"histogram {name} buckets must be finite and strictly "
                f"increasing, got {bounds!r}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the last entry is the ``+Inf`` overflow."""
        with self._lock:
            return tuple(self._counts)

    def _absorb(self, counts: Iterable[int], total: float, n: int) -> None:
        counts = list(counts)
        if len(counts) != len(self._counts):
            raise ParameterError(
                f"histogram {self.name}: cannot absorb {len(counts)} "
                f"bucket counts into {len(self._counts)} buckets"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total
            self._count += n


def _series_dict(kind: str, key, members: list[_Instrument]) -> dict:
    """Aggregate the live instruments of one series into a wire entry."""
    head = members[0]._series_head()
    head["help"] = next((m.help for m in members if m.help), "")
    head["unit"] = next((m.unit for m in members if m.unit), "")
    if kind == "counter":
        head["value"] = sum(m.value for m in members)
    elif kind == "gauge":
        aggregate = members[0].aggregate
        values = [m.value for m in members]
        head["aggregate"] = aggregate
        head["value"] = max(values) if aggregate == "max" else sum(values)
    else:
        buckets = members[0].buckets
        for m in members[1:]:
            if m.buckets != buckets:
                raise ParameterError(
                    f"histogram {head['name']}: instances disagree on "
                    f"buckets ({m.buckets!r} vs {buckets!r})"
                )
        counts = [0] * (len(buckets) + 1)
        total, n = 0.0, 0
        for m in members:
            with m._lock:
                for i, c in enumerate(m._counts):
                    counts[i] += c
                total += m._sum
                n += m._count
        head["le"] = list(buckets)
        head["counts"] = counts
        head["sum"] = total
        head["count"] = n
    return head


class MetricsRegistry:
    """A thread-safe collection of instruments with one snapshot shape.

    Two ways in:

    * :meth:`counter` / :meth:`gauge` / :meth:`histogram` get-or-create
      a registry-owned shared instrument (same name+labels → same
      object; a kind or bucket mismatch is refused by name);
    * :meth:`register` attaches an instrument a component owns
      (weakly — a garbage-collected store drops out of the snapshot).

    Snapshots aggregate every live instrument per (name, labels) series:
    counters and histograms sum, gauges sum or take the max per their
    ``aggregate`` declaration.
    """

    def __init__(self, *, enabled: bool = True):
        self._lock = threading.Lock()
        self._owned: dict = {}
        self._weak: list = []
        self.enabled = bool(enabled)

    # -- creation ------------------------------------------------------
    def _get_or_create(self, cls, name, labels, kwargs):
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            existing = self._owned.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if cls is Histogram and "buckets" in kwargs \
                        and tuple(float(b) for b in kwargs["buckets"]) \
                        != existing.buckets:
                    raise ParameterError(
                        f"histogram {name!r} already registered with "
                        f"different buckets"
                    )
                return existing
            if cls is Histogram:
                buckets = kwargs.pop("buckets", DEFAULT_TIME_BUCKETS)
                instrument = cls(name, buckets, labels=dict(key[1]), **kwargs)
            else:
                instrument = cls(name, labels=dict(key[1]), **kwargs)
            self._owned[key] = instrument
            return instrument

    def counter(self, name, *, help="", unit="",
                labels=None) -> Counter:
        return self._get_or_create(Counter, name, labels,
                                   {"help": help, "unit": unit})

    def gauge(self, name, *, help="", unit="", labels=None,
              aggregate="sum") -> Gauge:
        return self._get_or_create(
            Gauge, name, labels,
            {"help": help, "unit": unit, "aggregate": aggregate})

    def histogram(self, name, buckets=DEFAULT_TIME_BUCKETS, *, help="",
                  unit="", labels=None) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            {"buckets": buckets, "help": help, "unit": unit})

    def register(self, instrument: _Instrument) -> _Instrument:
        """Attach a component-owned instrument (weakly held).  A no-op
        when the registry is disabled — the instrument keeps counting
        for its owner, it just never exports."""
        if self.enabled:
            with self._lock:
                self._weak.append(weakref.ref(instrument))
        return instrument

    # -- aggregation ---------------------------------------------------
    def _live(self) -> list:
        with self._lock:
            weak = []
            live = list(self._owned.values())
            for ref in self._weak:
                instrument = ref()
                if instrument is not None:
                    weak.append(ref)
                    live.append(instrument)
            self._weak = weak
        return live

    def snapshot(self) -> dict:
        """The versioned, JSON-safe wire dict of every live series."""
        series: dict = {}
        if self.enabled:
            for instrument in self._live():
                key = (instrument.kind,) + instrument.key
                series.setdefault(key, []).append(instrument)
        entries = [
            _series_dict(kind, key, members)
            for (kind, *key), members in sorted(
                series.items(),
                key=lambda item: (item[0][1], item[0][2], item[0][0]))
        ]
        encode_floats, _ = _float_codec()
        return encode_floats({
            "format": METRICS_WIRE_FORMAT,
            "version": METRICS_WIRE_VERSION,
            "series": entries,
        })

    def absorb(self, snapshot: dict) -> None:
        """Fold a snapshot's totals into this registry's owned
        instruments (get-or-create per series).  Used to roll a
        campaign-private registry up into the process-wide one."""
        if not self.enabled:
            return
        for entry in snapshot_from_dict(snapshot):
            labels = entry["labels"]
            kw = {"help": entry["help"], "unit": entry["unit"]}
            if entry["kind"] == "counter":
                self.counter(entry["name"], labels=labels,
                             **kw).inc(entry["value"])
            elif entry["kind"] == "gauge":
                self.gauge(entry["name"], labels=labels,
                           aggregate=entry["aggregate"],
                           **kw).set(entry["value"])
            else:
                histogram = self.histogram(
                    entry["name"], entry["le"], labels=labels, **kw)
                histogram._absorb(entry["counts"], entry["sum"],
                                  entry["count"])

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def snapshot_from_dict(data: dict) -> list[dict]:
    """Validate a snapshot wire dict and return its decoded series.

    Refuses, by name, anything it does not understand: wrong format
    marker, unread version, unknown series kind, missing or unexpected
    series fields — the same posture as every other decoder in the
    library (better to stop than to mis-aggregate).
    """
    if not isinstance(data, dict) \
            or data.get("format") != METRICS_WIRE_FORMAT:
        raise ParameterError("not a repro-metrics snapshot")
    version = data.get("version")
    if version not in _READ_VERSIONS:
        raise ParameterError(
            f"unsupported metrics version {version!r} "
            f"(this library reads versions {sorted(_READ_VERSIONS)})"
        )
    raw = data.get("series")
    if not isinstance(raw, list):
        raise ParameterError("corrupt metrics snapshot: series must be "
                             f"a list, got {type(raw).__name__}")
    _, decode_floats = _float_codec()
    series = []
    for entry in decode_floats(raw):
        if not isinstance(entry, dict):
            raise ParameterError("corrupt metrics series entry")
        kind = entry.get("kind")
        if kind not in _KIND_FIELDS:
            raise ParameterError(f"unknown metric kind {kind!r}")
        expected = _SERIES_FIELDS | {"kind"} | _KIND_FIELDS[kind]
        got = set(entry)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise ParameterError(
                f"corrupt {kind} series {entry.get('name')!r}: "
                + "; ".join(
                    part for part in (
                        f"missing fields {missing}" if missing else "",
                        f"unknown fields {extra}" if extra else "",
                    ) if part)
            )
        _check_name(entry["name"])
        _check_labels(entry["labels"])
        if kind == "histogram" and (
                not isinstance(entry["le"], list)
                or not isinstance(entry["counts"], list)
                or len(entry["counts"]) != len(entry["le"]) + 1):
            raise ParameterError(
                f"corrupt histogram series {entry['name']!r}: counts "
                "must have one entry per bucket plus overflow"
            )
        if kind == "gauge" and entry["aggregate"] not in ("sum", "max"):
            raise ParameterError(
                f"corrupt gauge series {entry['name']!r}: unknown "
                f"aggregate {entry['aggregate']!r}"
            )
        series.append(entry)
    return series


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _label_text(labels: dict, extra: tuple = ()) -> str:
    pairs = list(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot wire dict as Prometheus text exposition
    (version 0.0.4: ``# HELP``/``# TYPE`` headers, cumulative
    ``_bucket{le=...}`` histogram series, ``_sum`` and ``_count``)."""
    lines = []
    seen_headers = set()
    for entry in snapshot_from_dict(snapshot):
        name, kind, labels = entry["name"], entry["kind"], entry["labels"]
        if name not in seen_headers:
            seen_headers.add(name)
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_label_text(labels)} "
                f"{_format_value(entry['value'])}"
            )
        else:
            cumulative = 0
            for bound, count in zip(entry["le"] + [float("inf")],
                                    entry["counts"]):
                cumulative += count
                le = _format_value(bound) if math.isfinite(bound) \
                    else "+Inf"
                lines.append(
                    f"{name}_bucket"
                    f"{_label_text(labels, (('le', le),))} {cumulative}"
                )
            lines.append(f"{name}_sum{_label_text(labels)} "
                         f"{_format_value(entry['sum'])}")
            lines.append(f"{name}_count{_label_text(labels)} "
                         f"{entry['count']}")
    return "\n".join(lines) + "\n" if lines else ""
