"""Optimal checkpointing periods (paper Eqs. 9, 10, 15).

The closed forms derive from the first-order waste template (see
:mod:`repro.core.firstorder`)::

    P*_nbl = sqrt(2 (δ+φ) (M − D − R − θ))          (Eq. 9)
    P*_bof = sqrt(2 (δ+φ) (M − D − 2R − θ + φ))     (Eq. 10)
    P*_tri = 2 sqrt(φ (M − D − R − θ))              (Eq. 15)

These are Young/Daly-like formulas, but ``δ`` here is the *per-node local*
checkpoint time rather than the global stable-storage dump, which is why
buddy protocols sustain much larger periods (§III-B).

Feasibility handling (not discussed in the paper, required for the figure
grids): when ``M ≤ A`` the model saturates (waste 1, period ``nan``); the
interior optimum is clamped to the minimum feasible period ``P_min``
(``δ+θ`` for doubles, ``2θ`` for triples), which is exact because the waste
is unimodal in ``P``.
"""

from __future__ import annotations

from . import firstorder
from .parameters import Parameters
from .protocols import ProtocolSpec, get_protocol

__all__ = ["optimal_period", "optimal_period_unclamped", "feasible"]


def optimal_period(spec: ProtocolSpec | str, params: Parameters, phi, *, M=None):
    """Waste-minimising period, clamped to the protocol's minimum.

    Returns ``nan`` where the model is infeasible (``M ≤ A``); scalars in,
    scalar out.
    """
    spec = get_protocol(spec)
    c = spec.cost_coefficient(params, phi)
    A = spec.lost_time_constant(params, phi)
    p_min = spec.min_period(params, phi)
    M_arr = params.M if M is None else M
    out = firstorder.optimal_period_clamped(c, A, p_min, M_arr)
    return float(out) if out.ndim == 0 else out


def optimal_period_unclamped(
    spec: ProtocolSpec | str, params: Parameters, phi, *, M=None
):
    """The raw closed-form ``sqrt(2c(M−A))`` exactly as printed in the paper.

    May fall below the protocol's minimum period for small ``c``; prefer
    :func:`optimal_period` for anything fed back into waste evaluation.
    """
    spec = get_protocol(spec)
    c = spec.cost_coefficient(params, phi)
    A = spec.lost_time_constant(params, phi)
    M_arr = params.M if M is None else M
    out = firstorder.optimal_period_unclamped(c, A, M_arr)
    return float(out) if out.ndim == 0 else out


def feasible(spec: ProtocolSpec | str, params: Parameters, phi, *, M=None):
    """Boolean mask: where does the protocol make progress (waste < 1)?"""
    spec = get_protocol(spec)
    c = spec.cost_coefficient(params, phi)
    A = spec.lost_time_constant(params, phi)
    p_min = spec.min_period(params, phi)
    M_arr = params.M if M is None else M
    out = firstorder.feasible_mask(c, A, p_min, M_arr)
    return bool(out) if out.ndim == 0 else out
