"""Validated parameter bundles for the unified model.

:class:`Parameters` collects every quantity of the paper's model (§II–§III
notation):

========  =============================================================
``D``     downtime: detect failure + allocate a replacement node [s]
``delta`` local checkpoint duration ``δ`` (blocking) [s]
``R``     blocking remote transfer time, ``R = θmin`` [s]
``alpha`` overlap speedup factor ``α`` (dimensionless)
``M``     platform MTBF [s]
``n``     number of platform nodes (for risk assessment)
========  =============================================================

The *choice* variables — the overhead ``φ`` (equivalently the window ``θ``)
and the period ``P`` — are **not** part of :class:`Parameters`; they are
passed to the evaluation functions, because sweeps vary them while the
platform stays fixed.

Construction accepts human-readable strings anywhere a duration is expected
(``Parameters(D=0, delta="2s", R="4s", alpha=10, M="7h", n=10368)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..errors import ParameterError
from ..units import parse_time
from .overlap import OverlapModel

__all__ = ["Parameters"]


def _duration(name: str, value: Any, *, positive: bool = False) -> float:
    try:
        seconds = parse_time(value)
    except Exception as exc:  # UnitParseError or TypeError
        raise ParameterError(f"{name}: {exc}") from exc
    if positive and seconds <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return seconds


@dataclass(frozen=True)
class Parameters:
    """Platform/protocol parameter set (see module docstring).

    Instances are immutable; derive variants with :meth:`with_updates`.
    """

    D: float
    delta: float
    R: float
    alpha: float
    M: float
    n: int = 2

    #: Cached overlap model; built in ``__post_init__``.
    overlap: OverlapModel = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "D", _duration("D", self.D))
        object.__setattr__(self, "delta", _duration("delta", self.delta))
        object.__setattr__(self, "R", _duration("R", self.R, positive=True))
        if not isinstance(self.alpha, (int, float)) or isinstance(self.alpha, bool):
            raise ParameterError(f"alpha must be a number, got {self.alpha!r}")
        if not math.isfinite(self.alpha) or self.alpha < 0:
            raise ParameterError(f"alpha must be >= 0, got {self.alpha!r}")
        object.__setattr__(self, "M", _duration("M", self.M, positive=True))
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 2:
            raise ParameterError(f"n must be an integer >= 2, got {self.n!r}")
        object.__setattr__(self, "overlap", OverlapModel(self.R, float(self.alpha)))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def theta_min(self) -> float:
        """Minimum exchange window; identical to ``R`` in the paper."""
        return self.R

    @property
    def theta_max(self) -> float:
        """Exchange window beyond which the transfer is fully hidden."""
        return self.overlap.theta_max

    @property
    def lam(self) -> float:
        """Instantaneous per-node failure rate ``λ = 1/(n·M)`` (§III-C)."""
        return 1.0 / (self.n * self.M)

    @property
    def node_mtbf(self) -> float:
        """Individual node MTBF ``M_ind = n·M``."""
        return self.n * self.M

    def theta(self, phi) -> Any:
        """Exchange window for overhead ``φ`` (delegates to the overlap model)."""
        return self.overlap.theta_of_phi(phi)

    def phi_for_theta(self, theta) -> Any:
        """Overhead for a chosen window ``θ`` (inverse of :meth:`theta`)."""
        return self.overlap.phi_of_theta(theta)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_updates(self, **changes: Any) -> "Parameters":
        """Return a copy with the given fields replaced.

        >>> base.with_updates(M="1h", n=1024)   # doctest: +SKIP
        """
        allowed = {"D", "delta", "R", "alpha", "M", "n"}
        unknown = set(changes) - allowed
        if unknown:
            raise ParameterError(f"unknown parameter(s): {sorted(unknown)}")
        return replace(self, **changes)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Parameters":
        """Build from a plain dict (e.g. parsed from JSON/CLI)."""
        allowed = {"D", "delta", "R", "alpha", "M", "n"}
        unknown = set(mapping) - allowed
        if unknown:
            raise ParameterError(f"unknown parameter(s): {sorted(unknown)}")
        missing = {"D", "delta", "R", "alpha", "M"} - set(mapping)
        if missing:
            raise ParameterError(f"missing parameter(s): {sorted(missing)}")
        return cls(**dict(mapping))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return {
            "D": self.D,
            "delta": self.delta,
            "R": self.R,
            "alpha": self.alpha,
            "M": self.M,
            "n": self.n,
        }

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary used by reports and the CLI."""
        return (
            f"D={self.D:g}s delta={self.delta:g}s R={self.R:g}s "
            f"alpha={self.alpha:g} M={self.M:g}s n={self.n}"
        )
