"""Protocol specifications for all evaluated checkpointing algorithms.

A :class:`ProtocolSpec` is the single description of a protocol shared by
the analytical layer (waste/period/risk formulas) *and* the event-level
simulator (phase structure, failure response).  The five variants:

``DOUBLE_BLOCKING``
    Zheng, Shi & Kalé's original buddy algorithm [1]: the buddy exchange is
    fully blocking.  Modelled as DOUBLE-BOF with the overhead pinned at
    ``φ = θmin`` (no overlap at all).
``DOUBLE_NBL``
    Ni, Meneses & Kalé's semi-blocking algorithm [2]: exchange overlapped
    at overhead ``φ``; after a failure the buddy's replacement file is sent
    in overlapped mode (``θ(φ)``), leaving a long risk window.
``DOUBLE_BOF``
    *Blocking-on-failure* (new in the paper): identical fault-free
    behaviour, but the replacement file is sent at full speed (``R``),
    trading overhead for a shorter risk window.
``TRIPLE``
    The paper's new triple checkpointing algorithm (non-blocking recovery
    variant, the one analysed in §V).
``TRIPLE_BOF``
    The blocking-on-failure triple variant sketched at the end of §IV
    (risk window ``D + 3R``).  The paper only states its risk window; the
    waste terms follow by the same shift the paper applies to derive
    DOUBLE-BOF from DOUBLE-NBL (recovery gains ``2R``, re-execution loses
    the ``2φ`` overlap overhead), documented here as a model extension.

Period layout (lengths at overhead ``φ``, window ``θ = θ(φ)``):

=================  ======================  =====================
protocol           phase 1 / 2 / 3         work per period ``W``
=================  ======================  =====================
doubles            ``δ`` / ``θ`` / ``σ``   ``P − δ − φ``
triples            ``θ`` / ``θ`` / ``σ``   ``P − 2φ``
=================  ======================  =====================

All numeric methods broadcast over ``phi`` (and ``P`` where applicable), so
figure grids evaluate in one call.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
import numpy as np

from ..errors import ParameterError
from .parameters import Parameters

__all__ = [
    "PhaseKind",
    "ProtocolSpec",
    "DoubleSpec",
    "TripleSpec",
    "DOUBLE_BLOCKING",
    "DOUBLE_NBL",
    "DOUBLE_BOF",
    "TRIPLE",
    "TRIPLE_BOF",
    "PROTOCOLS",
    "get_protocol",
]


class PhaseKind(enum.Enum):
    """Semantics of one period phase, as the simulator executes it."""

    #: Blocking local checkpoint: no application progress.
    LOCAL_CHECKPOINT = "local-checkpoint"
    #: Buddy exchange overlapped with computation (slowdown ``φ/θ``).
    EXCHANGE = "exchange"
    #: Application computes at full speed.
    COMPUTE = "compute"


class ProtocolSpec(ABC):
    """Abstract protocol description; see module docstring.

    Concrete subclasses provide the first-order coefficients ``c`` and ``A``
    (see :mod:`repro.core.firstorder`), the period layout, and the failure
    response.  Instances are stateless singletons.
    """

    #: Short stable identifier used in registries, CLIs and result files.
    key: str
    #: Human-readable name matching the paper's typography.
    name: str
    #: Number of processors per buddy group (2 for doubles, 3 for triples).
    group_size: int
    #: Whether post-failure resends run at full network speed (blocking).
    blocking_on_failure: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProtocolSpec {self.key}>"

    # ------------------------------------------------------------------
    # Choice variables
    # ------------------------------------------------------------------
    def effective_phi(self, params: Parameters, phi):
        """Overhead actually incurred; blocking protocols pin it at ``θmin``."""
        phi_arr = np.asarray(phi, dtype=float)
        if np.any(phi_arr < -1e-12) or np.any(phi_arr > params.theta_min * (1 + 1e-12)):
            raise ParameterError(
                f"phi must lie in [0, R={params.theta_min}], got {phi!r}"
            )
        return np.clip(phi_arr, 0.0, params.theta_min)

    def theta(self, params: Parameters, phi):
        """Exchange-window length ``θ(φ)``."""
        return params.overlap.theta_of_phi(self.effective_phi(params, phi))

    # ------------------------------------------------------------------
    # First-order coefficients
    # ------------------------------------------------------------------
    @abstractmethod
    def cost_coefficient(self, params: Parameters, phi):
        """Fault-free cost ``c`` per period (``WASTEff = c/P``)."""

    @abstractmethod
    def lost_time_constant(self, params: Parameters, phi):
        """Constant ``A`` of the expected per-failure loss ``F = A + P/2``."""

    @abstractmethod
    def min_period(self, params: Parameters, phi):
        """Smallest feasible period (fixed phases, ``σ = 0``)."""

    # ------------------------------------------------------------------
    # Period layout
    # ------------------------------------------------------------------
    @abstractmethod
    def phase_kinds(self) -> tuple[PhaseKind, PhaseKind, PhaseKind]:
        """Semantics of the three period phases."""

    @abstractmethod
    def phase_lengths(self, params: Parameters, phi, P):
        """Lengths ``(l1, l2, σ)`` of the three phases for period ``P``."""

    @abstractmethod
    def work_per_period(self, params: Parameters, phi, P):
        """Work units executed per fault-free period (``W``)."""

    # ------------------------------------------------------------------
    # Failure response
    # ------------------------------------------------------------------
    @abstractmethod
    def failure_resend_time(self, params: Parameters, phi):
        """Time after recovery until the group is fully re-replicated.

        This is the duration of re-sending the buddy image(s) to the
        replacement node — overlapped (``θ`` each) or blocking (``R`` each)
        depending on the protocol.
        """

    def recovery_constant(self, params: Parameters, phi):
        """Dead time before re-execution starts (downtime + blocking loads).

        ``D + R`` for non-blocking variants; blocking-on-failure variants
        additionally stall for their blocking resends.
        """
        phi_eff = self.effective_phi(params, phi)
        base = params.D + params.R
        if self.blocking_on_failure:
            return base + np.asarray(self.failure_resend_time(params, phi_eff))
        return base + np.zeros_like(phi_eff)

    def risk_window(self, params: Parameters, phi):
        """Length of the window during which a buddy failure is fatal.

        ``Risk = D + R + resend`` (§III-C, §V-C): the group stays at risk
        until the replacement node holds every image it is responsible for.
        """
        phi_eff = self.effective_phi(params, phi)
        return params.D + params.R + np.asarray(
            self.failure_resend_time(params, phi_eff), dtype=float
        )

    @abstractmethod
    def re_expectations(self, params: Parameters, phi, P):
        """Expected re-execution times ``(RE1, RE2, RE3)`` per failed phase.

        ``F = recovery_constant + Σ_i (l_i/P)·RE_i``; exercised directly by
        the renewal simulator and the consistency tests.
        """

    @abstractmethod
    def re_time(self, params: Parameters, phi, P, phase: int, offset):
        """Re-execution duration for a failure at ``offset`` into ``phase``.

        The offset-resolved version of :meth:`re_expectations`: averaging
        ``re_time`` over a uniform offset within each phase recovers the
        ``RE_i``.  Drives the event simulator's recovery blocks.  Values
        are clamped at 0 (relevant only for extreme blocking-on-failure
        corner cases where the first-order shift overshoots).
        """

    def commit_phase(self) -> int:
        """Phase index after which the new snapshot becomes recoverable.

        Doubles: end of the buddy exchange (phase 1) — before that, a
        node's new image exists only locally.  Triples: end of phase 0 —
        the preferred buddy already holds every node's new image, which is
        exactly why a phase-2 failure only re-executes phase-2 work (§V-A).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def checkpoint_images_held(self) -> int:
        """Checkpoint images resident per node in steady state (always 2).

        Doubles hold their own local image plus the buddy's; triples hold
        one image from each buddy (their own state is only remote).  This
        equality is the paper's motivating memory constraint (§IV).
        """
        return 2

    # ------------------------------------------------------------------
    def expected_lost_time(self, params: Parameters, phi, P):
        """Expected time lost per failure ``F(P) = A + P/2`` (Eqs. 7/8/14)."""
        A = self.lost_time_constant(params, phi)
        return np.asarray(A, dtype=float) + np.asarray(P, dtype=float) / 2.0


class DoubleSpec(ProtocolSpec):
    """Buddy-pair protocols: DOUBLE-BLOCKING, DOUBLE-NBL, DOUBLE-BOF."""

    group_size = 2

    def __init__(self, key: str, name: str, *, blocking_on_failure: bool,
                 always_blocking: bool = False) -> None:
        self.key = key
        self.name = name
        self.blocking_on_failure = blocking_on_failure
        #: Pin ``φ = θmin`` (the original fully blocking algorithm of [1]).
        self.always_blocking = always_blocking

    def effective_phi(self, params: Parameters, phi):
        validated = super().effective_phi(params, phi)
        if self.always_blocking:
            return np.full_like(validated, params.theta_min)
        return validated

    # -- first-order coefficients --------------------------------------
    def cost_coefficient(self, params: Parameters, phi):
        return params.delta + self.effective_phi(params, phi)

    def lost_time_constant(self, params: Parameters, phi):
        phi_eff = self.effective_phi(params, phi)
        theta = self.theta(params, phi)
        base = params.D + params.R + theta
        if self.blocking_on_failure:
            # Eq. (8): F_bof = F_nbl + R − φ.
            return base + params.R - phi_eff
        return base

    def min_period(self, params: Parameters, phi):
        return params.delta + np.asarray(self.theta(params, phi), dtype=float)

    # -- period layout ---------------------------------------------------
    def phase_kinds(self) -> tuple[PhaseKind, PhaseKind, PhaseKind]:
        return (PhaseKind.LOCAL_CHECKPOINT, PhaseKind.EXCHANGE, PhaseKind.COMPUTE)

    def phase_lengths(self, params: Parameters, phi, P):
        theta = np.asarray(self.theta(params, phi), dtype=float)
        P = np.asarray(P, dtype=float)
        delta = np.broadcast_to(params.delta, np.broadcast_shapes(theta.shape, P.shape)).copy()
        sigma = P - params.delta - theta
        return np.broadcast_arrays(delta, theta, sigma)

    def work_per_period(self, params: Parameters, phi, P):
        phi_eff = self.effective_phi(params, phi)
        return np.asarray(P, dtype=float) - params.delta - phi_eff

    # -- failure response -------------------------------------------------
    def failure_resend_time(self, params: Parameters, phi):
        if self.blocking_on_failure:
            theta = np.asarray(self.theta(params, phi), dtype=float)
            return np.full_like(theta, params.R)
        return np.asarray(self.theta(params, phi), dtype=float)

    def re_expectations(self, params: Parameters, phi, P):
        """§III-A: RE1 = θ+σ+δ/2, RE2 = θ+σ+δ+θ/2, RE3 = θ+σ/2 (NBL).

        BOF re-executes at full speed (no ``φ`` overhead while receiving the
        buddy file, since it already arrived during the blocking stall), so
        each RE drops by ``φ``.
        """
        phi_eff = self.effective_phi(params, phi)
        _, theta, sigma = self.phase_lengths(params, phi, P)
        delta = params.delta
        re1 = theta + sigma + delta / 2.0
        re2 = theta + sigma + delta + theta / 2.0
        re3 = theta + sigma / 2.0
        if self.blocking_on_failure:
            re1, re2, re3 = re1 - phi_eff, re2 - phi_eff, re3 - phi_eff
        return re1, re2, re3

    def re_time(self, params: Parameters, phi, P, phase: int, offset):
        """Offset-resolved re-execution (§III-A derivation).

        Phase 0 (local ckpt): the previous period's work ``W`` plus the
        ``offset`` wall-time already burnt in the failed phase must be
        re-spent, under ``φ`` of overlap overhead: ``θ + σ + offset``.
        Phase 1 (exchange): additionally the whole ``δ``:
        ``θ + σ + δ + offset``.  Phase 2 (compute): only this period's
        work: ``θ + offset``.
        """
        phi_eff = self.effective_phi(params, phi)
        _, theta, sigma = self.phase_lengths(params, phi, P)
        offset = np.asarray(offset, dtype=float)
        if phase == 0:
            out = theta + sigma + offset
        elif phase == 1:
            out = theta + sigma + params.delta + offset
        elif phase == 2:
            out = theta + offset
        else:
            raise ParameterError(f"phase must be 0, 1 or 2, got {phase}")
        if self.blocking_on_failure:
            out = out - phi_eff
        return np.maximum(out, 0.0)

    def commit_phase(self) -> int:
        return 1


class TripleSpec(ProtocolSpec):
    """Buddy-triple protocols: TRIPLE (non-blocking) and TRIPLE-BOF."""

    group_size = 3

    def __init__(self, key: str, name: str, *, blocking_on_failure: bool) -> None:
        self.key = key
        self.name = name
        self.blocking_on_failure = blocking_on_failure

    # -- first-order coefficients --------------------------------------
    def cost_coefficient(self, params: Parameters, phi):
        # WASTEff = 2φ/P (§V-A): both exchange phases cost φ, no local δ.
        return 2.0 * self.effective_phi(params, phi)

    def lost_time_constant(self, params: Parameters, phi):
        phi_eff = self.effective_phi(params, phi)
        theta = self.theta(params, phi)
        base = params.D + params.R + theta
        if self.blocking_on_failure:
            # Same shift the paper applies for DOUBLE-BOF, once per resent
            # image: the recovery stalls 2R longer, re-execution saves 2φ.
            return base + 2.0 * params.R - 2.0 * phi_eff
        return base

    def min_period(self, params: Parameters, phi):
        return 2.0 * np.asarray(self.theta(params, phi), dtype=float)

    # -- period layout ---------------------------------------------------
    def phase_kinds(self) -> tuple[PhaseKind, PhaseKind, PhaseKind]:
        return (PhaseKind.EXCHANGE, PhaseKind.EXCHANGE, PhaseKind.COMPUTE)

    def phase_lengths(self, params: Parameters, phi, P):
        theta = np.asarray(self.theta(params, phi), dtype=float)
        P = np.asarray(P, dtype=float)
        sigma = P - 2.0 * theta
        return np.broadcast_arrays(theta, theta.copy(), sigma)

    def work_per_period(self, params: Parameters, phi, P):
        phi_eff = self.effective_phi(params, phi)
        return np.asarray(P, dtype=float) - 2.0 * phi_eff

    # -- failure response -------------------------------------------------
    def failure_resend_time(self, params: Parameters, phi):
        theta = np.asarray(self.theta(params, phi), dtype=float)
        if self.blocking_on_failure:
            return np.full_like(theta, 2.0 * params.R)
        return 2.0 * theta

    def re_expectations(self, params: Parameters, phi, P):
        """§V-A: RE1 = 2θ+σ+θ/2, RE2 = 3θ/2, RE3 = 2θ+σ/2.

        A failure in phase 2 only loses phase-2 work: the snapshot shipped
        in phase 1 is already safe on the preferred buddy, so the node
        rolls back to the *new* snapshot, not the previous period's.
        """
        phi_eff = self.effective_phi(params, phi)
        theta, _, sigma = self.phase_lengths(params, phi, P)
        re1 = 2.0 * theta + sigma + theta / 2.0
        re2 = 1.5 * theta
        re3 = 2.0 * theta + sigma / 2.0
        if self.blocking_on_failure:
            re1, re2, re3 = re1 - 2 * phi_eff, re2 - 2 * phi_eff, re3 - 2 * phi_eff
        return re1, re2, re3

    def re_time(self, params: Parameters, phi, P, phase: int, offset):
        """Offset-resolved re-execution (§V-A derivation).

        Phase 0 (first exchange): the new snapshot is not yet safe — redo
        the previous period's work plus the burnt wall time under two
        windows of overhead: ``2θ + σ + offset``.  Phase 1 (second
        exchange): the snapshot shipped in phase 0 is recoverable, only
        phase-1 time is lost: ``θ + offset``.  Phase 2 (compute):
        ``2θ + offset``.
        """
        phi_eff = self.effective_phi(params, phi)
        theta, _, sigma = self.phase_lengths(params, phi, P)
        offset = np.asarray(offset, dtype=float)
        if phase == 0:
            out = 2.0 * theta + sigma + offset
        elif phase == 1:
            out = theta + offset
        elif phase == 2:
            out = 2.0 * theta + offset
        else:
            raise ParameterError(f"phase must be 0, 1 or 2, got {phase}")
        if self.blocking_on_failure:
            out = out - 2.0 * phi_eff
        return np.maximum(out, 0.0)

    def commit_phase(self) -> int:
        return 0


#: The original blocking buddy algorithm of Zheng, Shi & Kalé [1].
DOUBLE_BLOCKING = DoubleSpec(
    "double-blocking", "DoubleBlocking", blocking_on_failure=True, always_blocking=True
)
#: The semi-blocking algorithm of Ni, Meneses & Kalé [2].
DOUBLE_NBL = DoubleSpec("double-nbl", "DoubleNBL", blocking_on_failure=False)
#: The paper's blocking-on-failure variant.
DOUBLE_BOF = DoubleSpec("double-bof", "DoubleBoF", blocking_on_failure=True)
#: The paper's triple checkpointing algorithm (non-blocking recovery, §V).
TRIPLE = TripleSpec("triple", "Triple", blocking_on_failure=False)
#: Blocking-on-failure triple variant (risk window ``D + 3R``, §IV/§V-C).
TRIPLE_BOF = TripleSpec("triple-bof", "TripleBoF", blocking_on_failure=True)

#: Registry of all protocol singletons, keyed by :attr:`ProtocolSpec.key`.
PROTOCOLS: dict[str, ProtocolSpec] = {
    spec.key: spec
    for spec in (DOUBLE_BLOCKING, DOUBLE_NBL, DOUBLE_BOF, TRIPLE, TRIPLE_BOF)
}


def get_protocol(key: str | ProtocolSpec) -> ProtocolSpec:
    """Look up a protocol by key (idempotent on spec instances)."""
    if isinstance(key, ProtocolSpec):
        return key
    try:
        return PROTOCOLS[key]
    except KeyError:
        raise ParameterError(
            f"unknown protocol {key!r}; known: {sorted(PROTOCOLS)}"
        ) from None
