"""Two-level checkpointing: buddy protocol + rare global checkpoints.

The paper's §VIII closes with the prospect of "combining distributed
in-memory strategies such as those discussed in this paper with …
hierarchical checkpointing protocols".  This module builds that
combination analytically:

* **Level 1** — any buddy protocol of this library, at its own optimal
  period.  Handles ordinary failures; *fatal* group failures (both/all
  buddies lost within a risk window) destroy the in-memory state.
* **Level 2** — a classical blocking global checkpoint of cost ``C`` to
  stable storage every ``P_g`` seconds.  A level-1 fatal failure is no
  longer the end of the run: the application restarts from the last
  global checkpoint.

The elegance: level 2 is *exactly* the first-order template again, with
the "failures" being level-1 fatal events.  Their platform rate is the
hazard behind Eqs. (11)/(16)::

    λ_fatal = (n/g) · g! · λ^g · Risk^(g−1)

so the fatal MTBF is ``M_fatal = 1/λ_fatal`` and

    P_g* = sqrt(2·C·(M_fatal − A_g)),    A_g = D_g + R_g

by the very derivation of Eq. (9).  Each fatal event costs
``A_g + P_g/2`` (downtime + global recovery + half a global period of
re-execution), and the two levels' wastes compose multiplicatively.

Because TRIPLE's ``λ_fatal`` is two orders below DOUBLE-NBL's, the model
quantifies a §VIII question directly: is DOUBLE + global safety net
better than TRIPLE + safety net?  (Answer on the paper's scenarios: the
TRIPLE stack needs global checkpoints orders of magnitude less often and
keeps a lower total waste — see ``bench_twolevel.py``.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InfeasibleModelError, ParameterError
from . import firstorder
from .parameters import Parameters
from .protocols import ProtocolSpec, get_protocol
from .waste import waste_at_optimum

__all__ = ["TwoLevelModel", "TwoLevelPoint"]


@dataclass(frozen=True)
class TwoLevelPoint:
    """One evaluated two-level configuration."""

    protocol: str
    phi: float
    buddy_period: float
    buddy_waste: float
    fatal_mtbf: float
    global_period: float
    global_waste: float
    total_waste: float

    @property
    def useful_fraction(self) -> float:
        return 1.0 - self.total_waste


class TwoLevelModel:
    """Buddy protocol + global stable-storage safety net.

    Parameters
    ----------
    spec:
        Level-1 buddy protocol (spec or key).
    params:
        Platform parameters (level 1 uses them directly).
    global_cost:
        Global checkpoint duration ``C`` [s] — the whole application image
        to stable storage, typically orders above ``δ``.
    global_downtime, global_recovery:
        ``D_g``/``R_g`` of a restart from stable storage (defaults:
        ``params.D`` and ``C`` — reading the image back costs what writing
        it did).
    """

    def __init__(
        self,
        spec: ProtocolSpec | str,
        params: Parameters,
        *,
        global_cost: float,
        global_downtime: float | None = None,
        global_recovery: float | None = None,
    ):
        self.spec = get_protocol(spec)
        self.params = params
        if global_cost <= 0:
            raise ParameterError("global_cost must be > 0")
        self.C = float(global_cost)
        self.D_g = params.D if global_downtime is None else float(global_downtime)
        self.R_g = self.C if global_recovery is None else float(global_recovery)
        if self.D_g < 0 or self.R_g < 0:
            raise ParameterError("global downtime/recovery must be >= 0")

    # ------------------------------------------------------------------
    # Level-1 fatal hazard
    # ------------------------------------------------------------------
    def fatal_rate(self, phi) -> float:
        """Platform rate of unrecoverable level-1 failures [1/s].

        ``(n/g) · g! · λ^g · Risk^(g−1)`` — the hazard whose integral over
        ``T`` is the paper's group-fatal probability (Eqs. 11/16).
        """
        g = self.spec.group_size
        lam = self.params.lam
        risk = float(np.asarray(self.spec.risk_window(self.params, phi)))
        return (self.params.n / g) * math.factorial(g) * lam**g * risk ** (g - 1)

    def fatal_mtbf(self, phi) -> float:
        """Mean time between level-1 fatal events (∞ if rate is 0)."""
        rate = self.fatal_rate(phi)
        return math.inf if rate == 0 else 1.0 / rate

    # ------------------------------------------------------------------
    # Level-2 (global) checkpointing
    # ------------------------------------------------------------------
    def optimal_global_period(self, phi) -> float:
        """``P_g* = sqrt(2·C·(M_fatal − D_g − R_g))`` (template, Eq. 9 form).

        Raises when fatal events are *more* frequent than a global
        recovery — then no stable-storage period can keep up and the
        platform needs a stronger level 1 first.
        """
        m_fatal = self.fatal_mtbf(phi)
        if math.isinf(m_fatal):
            return math.inf
        A = self.D_g + self.R_g
        out = float(np.asarray(firstorder.optimal_period_clamped(
            self.C, A, self.C, m_fatal
        )))
        if not np.isfinite(out):
            raise InfeasibleModelError(
                f"{self.spec.key}: fatal MTBF {m_fatal:.3g}s below the "
                f"global recovery cost {A:.3g}s — level 2 cannot keep up"
            )
        return out

    def global_waste(self, phi) -> float:
        """Level-2 waste at its optimal period (0 if fatals never happen)."""
        m_fatal = self.fatal_mtbf(phi)
        if math.isinf(m_fatal):
            return 0.0
        A = self.D_g + self.R_g
        return float(np.asarray(firstorder.waste_at_optimum(
            self.C, A, self.C, m_fatal
        )))

    # ------------------------------------------------------------------
    def evaluate(self, phi) -> TwoLevelPoint:
        """Full two-level operating point at overhead ``phi``.

        Total waste composes multiplicatively: level-2 overhead and
        re-execution consume the fraction of time that level 1 leaves.
        """
        bd = waste_at_optimum(self.spec, self.params, phi)
        w1 = float(np.asarray(bd.total))
        p1 = float(np.asarray(bd.period))
        if not np.isfinite(p1):
            raise InfeasibleModelError(
                f"{self.spec.key}: level 1 infeasible at M={self.params.M:g}s"
            )
        w2 = self.global_waste(phi)
        total = 1.0 - (1.0 - w1) * (1.0 - w2)
        return TwoLevelPoint(
            protocol=self.spec.key,
            phi=float(np.asarray(self.spec.effective_phi(self.params, phi))),
            buddy_period=p1,
            buddy_waste=w1,
            fatal_mtbf=self.fatal_mtbf(phi),
            global_period=self.optimal_global_period(phi),
            global_waste=w2,
            total_waste=min(1.0, total),
        )
