"""fork()/copy-on-write checkpoint-creation model (§IV).

The triple algorithm relies on creating checkpoint images with ``fork``:
the child process shares all pages with the parent (copy-on-write) and
uploads them to the buddies, releasing each page once sent.  Pages the
*parent* dirties before they are uploaded must be physically duplicated —
that duplication (plus the memory-bandwidth interference of the upload) is
where the residual overhead ``φ`` comes from, and why the paper notes that
"φ will not go down completely to 0".

Model
-----
A checkpoint has ``pages`` pages of ``page_bytes`` each, uploaded at
``upload_rate`` bytes/s over a window of length ``θ``.  The application
dirties pages at ``dirty_rate`` pages/s, hitting not-yet-uploaded pages
with probability equal to the remaining fraction (uniform access), or
according to a skewed profile when the runtime orders the upload from
most- to least-likely-modified as §IV suggests (``ordering`` parameter).

Outputs: the number of duplicated pages (transient memory), and an
*effective* overhead estimate ``φ_eff``: each duplicated page costs one
page-copy time ``copy_time`` of application stall plus its share of
memory-bandwidth interference.

The point of this module is not byte-accuracy — it is to let scenarios
derive a defensible ``φ/R`` ratio and ``δ`` reduction for the figures and
for sensitivity studies, instead of treating ``φ`` as a free parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError

__all__ = ["CowModel", "CowOutcome"]


@dataclass(frozen=True)
class CowOutcome:
    """Result of one COW upload window."""

    #: Expected number of pages physically duplicated.
    duplicated_pages: float
    #: Peak transient bytes attributable to duplication.
    transient_bytes: float
    #: Application time lost to page copies + interference [s].
    stall_time: float
    #: Effective overhead ratio ``φ_eff / θ`` in [0, 1].
    overhead_fraction: float

    def effective_phi(self, theta: float) -> float:
        """Effective ``φ`` for a window of length ``θ`` (work units)."""
        return self.overhead_fraction * theta


@dataclass(frozen=True)
class CowModel:
    """Copy-on-write page-duplication model.

    Parameters
    ----------
    pages:
        Number of pages in the checkpoint image.
    page_bytes:
        Page size in bytes (default 4 KiB).
    dirty_rate:
        Pages the application writes per second (first-touch rate).
    copy_time:
        Time to duplicate one page, including the fault [s].
    interference:
        Fraction of application throughput lost while the upload saturates
        the memory bus (0 = none).
    ordering:
        ``"uniform"`` — uploads in arbitrary order, dirty hits land on
        pending pages proportionally to the remaining fraction;
        ``"hot-first"`` — §IV's optimisation: most-likely-dirtied pages are
        sent first, modelled by an exponential decay of the hit
        probability as the upload progresses.
    """

    pages: int
    page_bytes: int = 4096
    dirty_rate: float = 0.0
    copy_time: float = 1e-6
    interference: float = 0.0
    ordering: str = "uniform"

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise ParameterError("pages must be > 0")
        if self.page_bytes <= 0:
            raise ParameterError("page_bytes must be > 0")
        if self.dirty_rate < 0:
            raise ParameterError("dirty_rate must be >= 0")
        if self.copy_time < 0:
            raise ParameterError("copy_time must be >= 0")
        if not 0.0 <= self.interference < 1.0:
            raise ParameterError("interference must lie in [0, 1)")
        if self.ordering not in ("uniform", "hot-first"):
            raise ParameterError("ordering must be 'uniform' or 'hot-first'")

    # ------------------------------------------------------------------
    @property
    def image_bytes(self) -> int:
        return self.pages * self.page_bytes

    def upload_duration(self, upload_rate: float) -> float:
        """Time to push the full image at ``upload_rate`` bytes/s."""
        if upload_rate <= 0:
            raise ParameterError("upload_rate must be > 0")
        return self.image_bytes / upload_rate

    # ------------------------------------------------------------------
    def duplicated_pages_over(self, theta: float) -> float:
        """Expected page duplications during an upload window of length ``θ``.

        Uniform ordering: at time ``t`` a fraction ``1 − t/θ`` of pages is
        still pending, so duplications accrue at ``dirty_rate·(1 − t/θ)``;
        integrating gives ``dirty_rate·θ/2``.  Hot-first ordering: the hit
        probability decays as ``exp(−4t/θ)`` (hot pages leave the pending
        set early), giving ``dirty_rate·θ·(1 − e^{−4})/4 ≈ 0.245·rate·θ``.
        Both are capped at the image size — a page is duplicated at most
        once.
        """
        if theta < 0:
            raise ParameterError("theta must be >= 0")
        if self.ordering == "uniform":
            expected = self.dirty_rate * theta / 2.0
        else:
            expected = self.dirty_rate * theta * (1.0 - math.exp(-4.0)) / 4.0
        return float(min(expected, self.pages))

    def evaluate(self, theta: float) -> CowOutcome:
        """Full outcome for one upload window of length ``θ``."""
        dup = self.duplicated_pages_over(theta)
        stall = dup * self.copy_time + self.interference * theta
        overhead = 0.0 if theta == 0 else min(1.0, stall / theta)
        return CowOutcome(
            duplicated_pages=dup,
            transient_bytes=dup * self.page_bytes,
            stall_time=stall,
            overhead_fraction=overhead,
        )

    # ------------------------------------------------------------------
    def phi_over_r(self, theta: float, R: float) -> float:
        """Effective ``φ/R`` ratio for the figure axes.

        ``φ_eff = overhead_fraction · θ`` capped at ``R`` (by definition
        ``φ ≤ θmin = R`` in the paper's overlap model).
        """
        if R <= 0:
            raise ParameterError("R must be > 0")
        phi_eff = self.evaluate(theta).effective_phi(theta)
        return float(min(phi_eff, R) / R)

    def phi_curve(self, thetas, R: float) -> np.ndarray:
        """Vectorised ``φ/R`` over a grid of window lengths."""
        return np.asarray([self.phi_over_r(float(t), R) for t in np.asarray(thetas)])
