"""Generic first-order waste machinery (paper §III-A/B, §V-A/B).

Every protocol in the paper fits one template.  Writing the fault-free
checkpointing cost per period as ``c`` (so ``WASTEff = c/P``) and the
expected time lost per failure as ``F(P) = A + P/2`` (a constant plus the
half-period of lost work), the waste is

.. math::

    \\mathrm{WASTE}(P) = 1 - \\Big(1 - \\frac{A + P/2}{M}\\Big)
                             \\Big(1 - \\frac{c}{P}\\Big)

Differentiating (including the cross term) gives the unique interior
minimiser

.. math::

    P^\\* = \\sqrt{2\\,c\\,(M - A)}

which specialises to the paper's Eqs. (9), (10) and (15):

=================  ==============  ============================
protocol           ``c``           ``A``
=================  ==============  ============================
DOUBLE-NBL         ``δ + φ``       ``D + R + θ``
DOUBLE-BOF         ``δ + φ``       ``D + 2R + θ − φ``
TRIPLE             ``2φ``          ``D + R + θ``
Young (baseline)   ``δ``           ``0``
Daly (baseline)    ``δ``           ``D + R``
=================  ==============  ============================

*Feasibility.*  The interior optimum only exists when ``M > A``; otherwise
each failure costs more than the mean time between failures and the waste
saturates at 1.  Furthermore the period cannot shrink below the protocol's
fixed phases (``P ≥ P_min``); since the waste is unimodal in ``P``, the
constrained optimum is ``max(P*, P_min)``.  When ``c = 0`` (TRIPLE with a
fully-hidden transfer) the fault-free waste vanishes and the optimum is the
smallest feasible period.

All functions broadcast numpy-style over ``c``, ``A``, ``p_min``, ``M`` and
``P``.  Infeasible points yield waste ``1.0`` and period ``nan`` rather than
raising, so sweeps over figure grids stay a single vectorised call; use
:func:`feasible_mask` to distinguish saturation from model breakdown.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = [
    "expected_lost_time",
    "waste_fault_free",
    "waste_failures",
    "combine_waste",
    "waste_at_period",
    "optimal_period_unclamped",
    "optimal_period_clamped",
    "waste_at_optimum",
    "feasible_mask",
]


def _as_float_arrays(*values):
    return [np.asarray(v, dtype=float) for v in values]


def expected_lost_time(A, P):
    """Expected time lost per failure, ``F(P) = A + P/2``.

    ``A`` gathers downtime, recovery and the protocol-specific resend terms;
    ``P/2`` is the expected re-executed work, because failures strike
    uniformly within a period (§III-A).
    """
    A, P = _as_float_arrays(A, P)
    return A + P / 2.0


def waste_fault_free(c, P):
    """Fault-free waste ``WASTEff = c / P`` (Eq. 4, first factor)."""
    c, P = _as_float_arrays(c, P)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(P > 0, c / P, np.inf)
    return out


def waste_failures(A, P, M):
    """Failure-induced waste ``WASTEfail = F(P) / M`` (Eq. 4, second factor)."""
    A, P, M = _as_float_arrays(A, P, M)
    return expected_lost_time(A, P) / M


def combine_waste(waste_ff, waste_fail):
    """Combine the two waste sources multiplicatively (Eq. 5), clipped to [0, 1].

    ``WASTE = WASTEfail + WASTEff − WASTEfail·WASTEff``.
    """
    wff, wf = _as_float_arrays(waste_ff, waste_fail)
    total = wf + wff - wf * wff
    # Either factor >= 1 means no progress at all.
    total = np.where((wff >= 1.0) | (wf >= 1.0), 1.0, total)
    return np.clip(total, 0.0, 1.0)


def waste_at_period(c, A, p_min, P, M):
    """Total waste at an arbitrary period ``P``.

    Periods below ``p_min`` cannot accommodate the protocol's fixed phases;
    they evaluate to waste ``1.0`` (the configuration makes no progress).
    """
    c, A, p_min, P, M = _as_float_arrays(c, A, p_min, P, M)
    total = combine_waste(waste_fault_free(c, P), waste_failures(A, P, M))
    return np.where(P < p_min - 1e-12, 1.0, total)


def optimal_period_unclamped(c, A, M):
    """Interior optimiser ``P* = sqrt(2 c (M − A))``; ``nan`` when ``M <= A``."""
    c, A, M = _as_float_arrays(c, A, M)
    slack = M - A
    with np.errstate(invalid="ignore"):
        out = np.where(slack > 0, np.sqrt(2.0 * c * np.maximum(slack, 0.0)), np.nan)
    return out


def optimal_period_clamped(c, A, p_min, M):
    """Constrained optimum ``max(P*, P_min)``; ``nan`` when infeasible.

    The waste is unimodal in ``P`` on ``[P_min, ∞)``, so clamping the
    unconstrained optimum to the boundary is exact, not a heuristic.
    """
    c, A, p_min, M = _as_float_arrays(c, A, p_min, M)
    unclamped = optimal_period_unclamped(c, A, M)
    clamped = np.maximum(unclamped, p_min)
    return np.where(np.isnan(unclamped), np.nan, clamped)


def waste_at_optimum(c, A, p_min, M):
    """Waste at the constrained optimal period; ``1.0`` when infeasible."""
    c, A, p_min, M = _as_float_arrays(c, A, p_min, M)
    p_opt = optimal_period_clamped(c, A, p_min, M)
    safe_p = np.where(np.isnan(p_opt), np.maximum(p_min, 1.0), p_opt)
    w = waste_at_period(c, A, p_min, safe_p, M)
    return np.where(np.isnan(p_opt), 1.0, w)


def feasible_mask(c, A, p_min, M):
    """True where the first-order model admits waste < 1.

    Requires an interior slack (``M > A``) *and* a boundary period whose
    waste is below saturation.
    """
    c, A, p_min, M = _as_float_arrays(c, A, p_min, M)
    if np.any(p_min <= 0):
        raise ParameterError("p_min must be > 0")
    w = waste_at_optimum(c, A, p_min, M)
    return (M > A) & (w < 1.0)
