"""Risk windows and application success probabilities (paper §III-C, §V-C).

When a failure strikes, the application is *at risk* until the replacement
node has received every checkpoint image it is responsible for.  A further
failure inside the group during that window is unrecoverable (fatal).

Risk windows (``θ = θ(φ)``):

==================  =====================
protocol            risk window
==================  =====================
DOUBLE-NBL          ``D + R + θ``
DOUBLE-BOF          ``D + 2R``
DOUBLE-BLOCKING     ``D + 2R``
TRIPLE              ``D + R + 2θ``
TRIPLE-BOF          ``D + 3R``
==================  =====================

Success probabilities with ``λ = 1/(nM)`` over an execution of length ``T``
(Eqs. 11, 16, 12)::

    P_double = (1 − 2 λ² T Risk)^(n/2)
    P_triple = (1 − 6 λ³ T Risk²)^(n/3)
    P_base   = (1 − λ T_base)^n            (no checkpointing at all)

The doubles formula includes the factor 2 that the paper notes was missing
from [1].  Generically, for groups of size ``g`` the per-group fatal
probability is ``g!·λ^g·T·Risk^(g−1)`` and the application succeeds iff all
``n/g`` groups do.

Two evaluation methods are provided:

``"paper"``
    The first-order expressions above, computed stably via ``log1p`` and
    truncated to 0 when the first-order term exceeds 1 (where the
    approximation has left its validity domain).
``"exponential"``
    Exact-exponential chain semantics: the group fails fatally at rate
    ``g·λ·q`` with ``q = Π_{j=1}^{g−1} (1 − exp(−j·λ·Risk))`` (each stage:
    *some* survivor fails within the current risk window, which restarts),
    giving ``P = exp(−g·λ·q·T·n/g) = exp(−λ·q·T·n)``.  Agrees with
    ``"paper"`` to first order in ``λ·Risk`` and stays a probability for
    any input.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from .parameters import Parameters
from .protocols import ProtocolSpec, get_protocol

__all__ = [
    "risk_window",
    "success_probability",
    "fatal_failure_probability",
    "success_probability_base",
    "group_fatal_probability",
    "expected_fatal_count",
]

_METHODS = ("paper", "exponential")


def risk_window(spec: ProtocolSpec | str, params: Parameters, phi):
    """Risk-window length for ``spec`` at overhead ``phi`` (seconds)."""
    spec = get_protocol(spec)
    out = np.asarray(spec.risk_window(params, phi), dtype=float)
    return float(out) if out.ndim == 0 else out


def _check_method(method: str) -> None:
    if method not in _METHODS:
        raise ParameterError(f"unknown method {method!r}; choose from {_METHODS}")


def group_fatal_probability(
    spec: ProtocolSpec | str, params: Parameters, phi, T, *, method: str = "paper"
):
    """Probability that one buddy group suffers a fatal failure within ``T``.

    The paper's first-order expression is ``g!·λ^g·T·Risk^(g−1)`` (clipped
    to [0, 1]); the exponential method integrates the fatal hazard.
    """
    _check_method(method)
    spec = get_protocol(spec)
    g = spec.group_size
    lam = params.lam
    risk = np.asarray(spec.risk_window(params, phi), dtype=float)
    T_arr = np.asarray(T, dtype=float)
    if np.any(T_arr < 0):
        raise ParameterError("T must be >= 0")
    if method == "paper":
        p_fatal = math.factorial(g) * lam**g * T_arr * risk ** (g - 1)
        return np.clip(p_fatal, 0.0, 1.0)
    # Exact-exponential chain.
    q = np.ones_like(risk)
    for j in range(1, g):
        q = q * -np.expm1(-j * lam * risk)
    rate = g * lam * q
    return -np.expm1(-rate * T_arr)


def success_probability(
    spec: ProtocolSpec | str, params: Parameters, phi, T, *, method: str = "paper"
):
    """Probability that the application completes without a fatal failure.

    Implements Eq. (11) for pair protocols and Eq. (16) for triples
    (``method="paper"``), or the exact-exponential variant.

    Parameters
    ----------
    T:
        Execution (or platform-exploitation) duration in seconds; scalar or
        array, broadcast against ``phi``.
    """
    _check_method(method)
    spec = get_protocol(spec)
    g = spec.group_size
    n_groups = params.n / g
    p_fatal = group_fatal_probability(spec, params, phi, T, method=method)
    if method == "paper":
        # (1 − p)^(n/g) via log1p; p >= 1 ⇒ certain failure.
        with np.errstate(divide="ignore", invalid="ignore"):
            log_term = np.where(p_fatal < 1.0, np.log1p(-np.minimum(p_fatal, 1.0)), -np.inf)
        out = np.exp(n_groups * log_term)
    else:
        # exp(−rate·T) per group already folded into p_fatal: recover the
        # per-group log-survival exactly (−inf ⇒ certain failure).
        with np.errstate(divide="ignore"):
            log_term = np.log1p(-np.minimum(p_fatal, 1.0))
        out = np.exp(n_groups * log_term)
    out = np.asarray(out)
    return float(out) if out.ndim == 0 else out


def fatal_failure_probability(
    spec: ProtocolSpec | str, params: Parameters, phi, T, *, method: str = "paper"
):
    """Complement of :func:`success_probability`."""
    out = 1.0 - np.asarray(success_probability(spec, params, phi, T, method=method))
    return float(out) if out.ndim == 0 else out


def success_probability_base(params: Parameters, t_base, *, method: str = "paper"):
    """Success probability *without any checkpointing* (Eq. 12).

    Any single failure anywhere is fatal.  ``method="paper"`` evaluates
    ``(1 − λ·T_base)^n``; ``method="exponential"`` the exact
    ``exp(−n·λ·T_base)``.
    """
    _check_method(method)
    lam = params.lam
    t = np.asarray(t_base, dtype=float)
    if np.any(t < 0):
        raise ParameterError("t_base must be >= 0")
    if method == "paper":
        inner = lam * t
        with np.errstate(divide="ignore", invalid="ignore"):
            log_term = np.where(inner < 1.0, np.log1p(-np.minimum(inner, 1.0)), -np.inf)
        out = np.exp(params.n * log_term)
    else:
        out = np.exp(-params.n * lam * t)
    out = np.asarray(out)
    return float(out) if out.ndim == 0 else out


def expected_fatal_count(
    spec: ProtocolSpec | str, params: Parameters, phi, T, *, method: str = "paper"
):
    """Expected number of fatal group failures within ``T``.

    ``(n/g) · p_fatal`` — useful to reason about how many independent runs
    of a given length survive (the paper's "tolerate twice more runs"
    comparison, §VI-A).
    """
    spec = get_protocol(spec)
    p_fatal = group_fatal_probability(spec, params, phi, T, method=method)
    out = np.asarray(params.n / spec.group_size * p_fatal)
    return float(out) if out.ndim == 0 else out
