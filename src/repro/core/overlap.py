"""The communication/computation overlap model of the paper (§II).

The non-blocking double checkpointing algorithm stretches the buddy
checkpoint exchange over a window of length ``θ`` so that computation can
proceed concurrently, at the price of an *overhead* of ``φ`` work units.
The paper extends the model of Ni et al. by tying ``φ`` to ``θ``:

* ``θ = θmin``: the transfer runs at full network speed and is fully
  blocking, so the overhead is total: ``φ = θmin``.
* ``θ = θmax = (1 + α)·θmin``: the transfer is slow enough to hide entirely
  behind computation: ``φ = 0``.
* Linear interpolation in between::

      θ(φ) = θmin + α·(θmin − φ),          φ ∈ [0, θmin]

The parameter ``α`` measures how fast the overhead decreases as the
communication window grows; the paper uses the conservative ``α = 10``.

All methods broadcast over numpy arrays, so a whole φ-sweep is a single
call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError

__all__ = ["OverlapModel"]


@dataclass(frozen=True)
class OverlapModel:
    """Linear overlap model ``θ(φ) = θmin + α(θmin − φ)``.

    Parameters
    ----------
    theta_min:
        Minimum (fully blocking) transfer duration; the paper identifies it
        with the recovery time ``R``.
    alpha:
        Overlap speedup factor (``θmax = (1+α)·θmin``).  ``alpha = 0``
        degenerates to the always-blocking model in which ``φ = θmin``
        regardless of ``θ``.
    """

    theta_min: float
    alpha: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.theta_min) or self.theta_min <= 0:
            raise ParameterError(f"theta_min must be > 0, got {self.theta_min!r}")
        if not np.isfinite(self.alpha) or self.alpha < 0:
            raise ParameterError(f"alpha must be >= 0, got {self.alpha!r}")

    # ------------------------------------------------------------------
    @property
    def theta_max(self) -> float:
        """Window length at which the transfer is fully overlapped."""
        return (1.0 + self.alpha) * self.theta_min

    # ------------------------------------------------------------------
    def theta_of_phi(self, phi):
        """Transfer window ``θ`` needed to keep the overhead at ``φ``.

        Accepts scalars or arrays; every element must lie in
        ``[0, theta_min]``.
        """
        phi_arr = np.asarray(phi, dtype=float)
        if np.any(phi_arr < -1e-12) or np.any(phi_arr > self.theta_min * (1 + 1e-12)):
            raise ParameterError(
                f"phi must lie in [0, theta_min={self.theta_min}], got {phi!r}"
            )
        phi_arr = np.clip(phi_arr, 0.0, self.theta_min)
        theta = self.theta_min + self.alpha * (self.theta_min - phi_arr)
        return float(theta) if np.isscalar(phi) or phi_arr.ndim == 0 else theta

    def phi_of_theta(self, theta):
        """Overhead ``φ`` incurred when the window is stretched to ``θ``.

        Inverse of :meth:`theta_of_phi` on ``[θmin, θmax]``; windows larger
        than ``θmax`` keep ``φ = 0`` (the transfer is already fully hidden).
        With ``alpha = 0`` any feasible window costs the full ``φ = θmin``.
        """
        theta_arr = np.asarray(theta, dtype=float)
        if np.any(theta_arr < self.theta_min * (1 - 1e-12)):
            raise ParameterError(
                f"theta must be >= theta_min={self.theta_min}, got {theta!r}"
            )
        if self.alpha == 0:
            phi = np.full_like(theta_arr, self.theta_min)
        else:
            phi = self.theta_min - (theta_arr - self.theta_min) / self.alpha
            phi = np.clip(phi, 0.0, self.theta_min)
        return float(phi) if np.isscalar(theta) or theta_arr.ndim == 0 else phi

    # ------------------------------------------------------------------
    def slowdown(self, phi):
        """Fraction of compute throughput lost during the window.

        During a window of length ``θ(φ)`` only ``θ − φ`` work units are
        executed, i.e. the application runs at speed ``1 − φ/θ``.  This is
        the quantity a runtime would observe; the simulator uses it to
        advance application progress during exchange phases.
        """
        theta = np.asarray(self.theta_of_phi(phi), dtype=float)
        phi_arr = np.clip(np.asarray(phi, dtype=float), 0.0, self.theta_min)
        out = np.divide(phi_arr, theta, out=np.zeros_like(theta), where=theta > 0)
        return float(out) if np.isscalar(phi) or out.ndim == 0 else out

    def work_during_window(self, phi):
        """Work units executed during one exchange window: ``θ(φ) − φ``."""
        theta = np.asarray(self.theta_of_phi(phi), dtype=float)
        phi_arr = np.clip(np.asarray(phi, dtype=float), 0.0, self.theta_min)
        out = theta - phi_arr
        return float(out) if np.isscalar(phi) or out.ndim == 0 else out

    # ------------------------------------------------------------------
    def phi_grid(self, num: int = 101) -> np.ndarray:
        """Evenly spaced overheads covering ``[0, θmin]`` (figure x-axes)."""
        if num < 2:
            raise ParameterError("need at least 2 grid points")
        return np.linspace(0.0, self.theta_min, num)
