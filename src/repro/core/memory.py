"""Per-node memory accounting for buddy checkpointing protocols (§IV).

The paper's motivating question for TRIPLE: *given a fixed amount of memory
available for checkpointing, what is the best strategy?*  This module makes
the memory budget explicit so scenarios can verify that a protocol fits.

Steady-state images per node (checkpoint size ``s`` bytes each):

* **Doubles** — own local image + buddy's image: ``2s``.
* **Triples** — one image from each of the two buddies: ``2s`` (the node's
  own state is held only remotely; a local copy is unnecessary because
  recovery always restores from a buddy anyway).

Atomicity: coordinated snapshots must be replaced atomically, so during a
checkpoint wave the *previous* successful set coexists with the incoming
one — doubling the transient footprint of whichever images are being
rewritten.  With fork/copy-on-write checkpoint creation (modelled in
:mod:`repro.core.cow`) the sender-side transient is only the dirtied pages,
not a full image.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .protocols import ProtocolSpec, get_protocol

__all__ = ["MemoryBudget", "steady_state_bytes", "peak_bytes", "fits_in"]


def steady_state_bytes(spec: ProtocolSpec | str, checkpoint_bytes: int) -> int:
    """Bytes of checkpoint images held per node between checkpoint waves."""
    spec = get_protocol(spec)
    if checkpoint_bytes < 0:
        raise ParameterError("checkpoint size must be >= 0")
    return spec.checkpoint_images_held() * int(checkpoint_bytes)


def peak_bytes(
    spec: ProtocolSpec | str,
    checkpoint_bytes: int,
    *,
    cow_dirty_fraction: float = 1.0,
) -> int:
    """Peak transient bytes during a checkpoint wave.

    While a new remote image arrives, the previous one must be retained for
    atomicity (+1 image).  On the sender side, fork/COW duplicates only the
    fraction of pages dirtied before upload completes
    (``cow_dirty_fraction`` ∈ [0, 1]; 1.0 models an eager full copy, the
    worst case without COW).
    """
    spec = get_protocol(spec)
    if checkpoint_bytes < 0:
        raise ParameterError("checkpoint size must be >= 0")
    if not 0.0 <= cow_dirty_fraction <= 1.0:
        raise ParameterError("cow_dirty_fraction must lie in [0, 1]")
    steady = steady_state_bytes(spec, checkpoint_bytes)
    incoming = int(checkpoint_bytes)  # buffered next-set image being received
    sender_transient = int(round(checkpoint_bytes * cow_dirty_fraction))
    return steady + incoming + sender_transient


@dataclass(frozen=True)
class MemoryBudget:
    """A per-node memory envelope for checkpoint storage.

    Parameters
    ----------
    capacity_bytes:
        Memory (or local storage) reserved for checkpoint images per node.
    checkpoint_bytes:
        Size of one checkpoint image.
    cow_dirty_fraction:
        Expected fraction of pages duplicated by copy-on-write during one
        upload (see :func:`peak_bytes`).
    """

    capacity_bytes: int
    checkpoint_bytes: int
    cow_dirty_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ParameterError("capacity must be > 0")
        if self.checkpoint_bytes <= 0:
            raise ParameterError("checkpoint size must be > 0")
        if not 0.0 <= self.cow_dirty_fraction <= 1.0:
            raise ParameterError("cow_dirty_fraction must lie in [0, 1]")

    def steady_state(self, spec: ProtocolSpec | str) -> int:
        return steady_state_bytes(spec, self.checkpoint_bytes)

    def peak(self, spec: ProtocolSpec | str) -> int:
        return peak_bytes(
            spec, self.checkpoint_bytes, cow_dirty_fraction=self.cow_dirty_fraction
        )

    def headroom(self, spec: ProtocolSpec | str) -> int:
        """Remaining bytes at peak usage (negative = over budget)."""
        return self.capacity_bytes - self.peak(spec)


def fits_in(spec: ProtocolSpec | str, budget: MemoryBudget) -> bool:
    """Does the protocol's peak footprint fit in the budget?

    The paper's §IV claim — TRIPLE is "equally memory-demanding" as the
    doubles — is checkable here: both families report identical
    steady-state and peak footprints for the same image size.
    """
    return budget.headroom(spec) >= 0
