"""Generalised k-buddy checkpointing (extension of the paper's §IV–§V).

The paper's DOUBLE (k=2, with a local checkpoint) and TRIPLE (k=3,
fork/COW, rotating buddies, no local copy) are the first two members of a
family: organise nodes in rotating groups of ``k``; each period consists
of ``k−1`` exchange windows of length ``θ`` (the checkpoint propagates to
one further buddy per window, every node always holding ``k−1`` remote
images — the same two-image budget only holds for k ≤ 3) followed by a
compute phase.  By the same derivations as §V:

* fault-free cost            ``c  = (k−1)·φ``
* period minimum             ``P_min = (k−1)·θ``
* expected loss constant     ``A  = D + R + θ``  (the snapshot is safe
  once the *first* exchange window lands — exactly TRIPLE's argument)
* risk window (non-blocking) ``Risk = D + R + (k−1)·θ``
* optimal period             ``P* = sqrt(2(k−1)φ(M − A))``  (template)
* group fatal probability    ``k!·λᵏ·T·Risk^(k−1)``  (chain counting)
* application success        ``(1 − k!·λᵏ·T·Risk^(k−1))^(n/k)``

``k = 2`` in this family is *not* the paper's DOUBLE (which spends ``δ``
on a local checkpoint); it is a "double without local copy" enabled by
the same fork/COW trick — included because it shows why the paper jumps
to k = 3: one remote image alone leaves a pair fatally exposed the moment
either node fails (risk ∝ λ², like DOUBLE) while saving only ``δ``.

This module quantifies the diminishing returns for k ≥ 4: each extra
buddy multiplies the fatal probability by another ``λ·Risk`` (huge gain)
but adds ``φ`` of overhead and ``θ`` of risk-window length per period
(linear cost), and memory grows as ``k−1`` images.  :func:`recommend_k`
returns the smallest k meeting a target success probability.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from . import firstorder
from .parameters import Parameters

__all__ = [
    "KBuddyModel",
    "recommend_k",
]


class KBuddyModel:
    """Analytical model of the rotating k-buddy protocol (non-blocking).

    Parameters
    ----------
    k:
        Group size (≥ 2).  ``k = 3`` reproduces the paper's TRIPLE
        exactly (same ``c``, ``A``, ``P_min``, risk window and success
        probability).
    """

    def __init__(self, k: int):
        if not isinstance(k, int) or isinstance(k, bool) or k < 2:
            raise ParameterError(f"k must be an integer >= 2, got {k!r}")
        self.k = k

    # -- first-order coefficients --------------------------------------
    def cost_coefficient(self, params: Parameters, phi):
        phi_arr = self._phi(params, phi)
        return (self.k - 1) * phi_arr

    def lost_time_constant(self, params: Parameters, phi):
        return params.D + params.R + np.asarray(
            params.theta(self._phi(params, phi)), dtype=float
        )

    def min_period(self, params: Parameters, phi):
        theta = np.asarray(params.theta(self._phi(params, phi)), dtype=float)
        return (self.k - 1) * theta

    def _phi(self, params: Parameters, phi):
        phi_arr = np.asarray(phi, dtype=float)
        if np.any(phi_arr < -1e-12) or np.any(phi_arr > params.R * (1 + 1e-12)):
            raise ParameterError(f"phi must lie in [0, R={params.R}]")
        return np.clip(phi_arr, 0.0, params.R)

    # -- waste ----------------------------------------------------------
    def optimal_period(self, params: Parameters, phi, *, M=None):
        c = self.cost_coefficient(params, phi)
        A = self.lost_time_constant(params, phi)
        p_min = self.min_period(params, phi)
        out = firstorder.optimal_period_clamped(
            c, A, p_min, params.M if M is None else M
        )
        return float(out) if out.ndim == 0 else out

    def waste_at_optimum(self, params: Parameters, phi, *, M=None):
        c = self.cost_coefficient(params, phi)
        A = self.lost_time_constant(params, phi)
        p_min = self.min_period(params, phi)
        out = firstorder.waste_at_optimum(
            c, A, p_min, params.M if M is None else M
        )
        return float(out) if out.ndim == 0 else out

    # -- risk -----------------------------------------------------------
    def risk_window(self, params: Parameters, phi):
        theta = np.asarray(params.theta(self._phi(params, phi)), dtype=float)
        out = params.D + params.R + (self.k - 1) * theta
        return float(out) if out.ndim == 0 else out

    def group_fatal_probability(self, params: Parameters, phi, T):
        risk = np.asarray(self.risk_window(params, phi), dtype=float)
        T_arr = np.asarray(T, dtype=float)
        if np.any(T_arr < 0):
            raise ParameterError("T must be >= 0")
        p = (
            math.factorial(self.k)
            * params.lam**self.k
            * T_arr
            * risk ** (self.k - 1)
        )
        return np.clip(p, 0.0, 1.0)

    def success_probability(self, params: Parameters, phi, T):
        if params.n % self.k != 0:
            raise ParameterError(f"n={params.n} not divisible by k={self.k}")
        p_fatal = self.group_fatal_probability(params, phi, T)
        with np.errstate(divide="ignore"):
            log_term = np.where(p_fatal < 1.0, np.log1p(-p_fatal), -np.inf)
        out = np.exp(params.n / self.k * log_term)
        return float(out) if np.ndim(out) == 0 else out

    # -- memory ---------------------------------------------------------
    def images_held(self) -> int:
        """Remote images resident per node (``k − 1``)."""
        return self.k - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KBuddyModel(k={self.k})"


def recommend_k(
    params: Parameters,
    phi: float,
    T: float,
    *,
    target_success: float = 0.999,
    max_k: int = 8,
) -> tuple[int, dict[int, dict[str, float]]]:
    """Smallest k whose success probability meets the target.

    Returns ``(k, table)`` where ``table[k]`` holds the waste, success
    probability, risk window and memory images for every k tried (so
    callers can display the trade-off).  Raises if even ``max_k`` misses
    the target — at that point the platform needs a different strategy
    (the paper's §VIII hierarchical direction).
    """
    if not 0 < target_success < 1:
        raise ParameterError("target_success must lie in (0, 1)")
    table: dict[int, dict[str, float]] = {}
    best: int | None = None
    for k in range(2, max_k + 1):
        if params.n % k != 0:
            continue
        model = KBuddyModel(k)
        success = model.success_probability(params, phi, T)
        table[k] = {
            "waste": model.waste_at_optimum(params, phi),
            "success": success,
            "risk_window": model.risk_window(params, phi),
            "images": float(model.images_held()),
        }
        if best is None and success >= target_success:
            best = k
    if best is None:
        raise ParameterError(
            f"no k <= {max_k} reaches success {target_success} "
            f"(platform too unreliable for flat k-buddy replication)"
        )
    return best, table
