"""Higher-order waste expressions and their relation to the paper's Eq. (4).

The paper's derivation (Eqs. 2–4) counts ``T/M`` failures over the *whole*
execution ``T`` — including the time spent handling failures — and writes

.. math::  \\mathrm{WASTE}_{paper} = 1 - (1 - F/M)(1 - c/P).

An alternative renewal accounting counts failures only over *productive*
time ``H`` (failures that would strike during a recovery block are
deferred), giving

.. math::  \\mathrm{WASTE}_{renewal} = 1 - \\frac{1 - c/P}{1 + F/M}.

Both agree to first order in ``F/M`` — the order at which the paper's
analysis operates — and differ at ``O((F/M)^2)``:

.. math::  \\mathrm{WASTE}_{paper} - \\mathrm{WASTE}_{renewal}
           = (1 - c/P)\\,\\frac{(F/M)^2}{1 + F/M}.

The paper's form is the *more pessimistic* (failures can strike during
recovery and re-execution, which the renewal form excises); the truth for
a real platform lies in between, because failures during recovery blocks
neither vanish (renewal form) nor cost a full additional ``F`` on average
(paper form).  The event simulator implements the exact semantics; this
module provides both closed forms plus the exact optimal period of the
renewal form so users can quantify the gap — which is negligible in every
regime the paper plots (``F/M ≲ 0.1``) and grows to several points of
waste as ``M`` approaches the saturation threshold.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from . import firstorder
from .parameters import Parameters
from .protocols import ProtocolSpec, get_protocol

__all__ = [
    "waste_renewal",
    "waste_gap",
    "optimal_period_renewal",
    "waste_renewal_at_optimum",
]


def _coeffs(spec: ProtocolSpec, params: Parameters, phi, M):
    c = np.asarray(spec.cost_coefficient(params, phi), dtype=float)
    A = np.asarray(spec.lost_time_constant(params, phi), dtype=float)
    p_min = np.asarray(spec.min_period(params, phi), dtype=float)
    M_arr = np.asarray(params.M if M is None else M, dtype=float)
    if np.any(M_arr <= 0):
        raise ParameterError("M must be > 0")
    return c, A, p_min, M_arr


def waste_renewal(spec: ProtocolSpec | str, params: Parameters, phi, P, *, M=None):
    """Renewal-accounting waste ``1 − (1 − c/P)/(1 + F/M)``.

    Unlike the paper's form this is a valid fraction for *any* ``F/M``
    (it never needs clipping), which also makes it the natural reference
    for the renewal Monte Carlo estimator.
    """
    spec = get_protocol(spec)
    c, A, p_min, M_arr = _coeffs(spec, params, phi, M)
    P_arr = np.asarray(P, dtype=float)
    F = firstorder.expected_lost_time(A, P_arr)
    wff = firstorder.waste_fault_free(c, P_arr)
    out = 1.0 - (1.0 - np.minimum(wff, 1.0)) / (1.0 + F / M_arr)
    out = np.where(P_arr < p_min - 1e-12, 1.0, np.clip(out, 0.0, 1.0))
    return float(out) if out.ndim == 0 else out


def waste_gap(spec: ProtocolSpec | str, params: Parameters, phi, P, *, M=None):
    """Paper-form minus renewal-form waste at the same period.

    Equals ``(1 − c/P)·(F/M)²/(1 + F/M)`` wherever neither form saturates;
    ``nan`` where the paper form clips at 1.
    """
    from .waste import waste as paper_waste

    spec = get_protocol(spec)
    w_paper = np.asarray(paper_waste(spec, params, phi, P, M=M), dtype=float)
    w_renew = np.asarray(waste_renewal(spec, params, phi, P, M=M), dtype=float)
    out = np.where(w_paper >= 1.0, np.nan, w_paper - w_renew)
    return float(out) if out.ndim == 0 else out


def optimal_period_renewal(
    spec: ProtocolSpec | str, params: Parameters, phi, *, M=None
):
    """Exact minimiser of :func:`waste_renewal`.

    Maximise ``(1 − c/P)/(1 + (A + P/2)/M)``.  Setting the derivative to
    zero yields the quadratic ``P² + 2cP − 2c(2(M + A) − ...)``; solving::

        P* = c + sqrt(c² + 2c(M + A))

    (the positive root), clamped to the protocol's minimum period.  Note
    ``M + A`` where the paper's template has ``M − A`` — the renewal form
    penalises long periods slightly less, so its optimum is a bit larger;
    both reduce to Young's ``sqrt(2cM)`` as ``M → ∞``.
    """
    spec = get_protocol(spec)
    c, A, p_min, M_arr = _coeffs(spec, params, phi, M)
    with np.errstate(invalid="ignore"):
        p_star = c + np.sqrt(c**2 + 2.0 * c * (M_arr + A))
    out = np.maximum(p_star, p_min)
    return float(out) if out.ndim == 0 else out


def waste_renewal_at_optimum(
    spec: ProtocolSpec | str, params: Parameters, phi, *, M=None
):
    """Renewal-form waste at its own optimal period (always < 1)."""
    spec = get_protocol(spec)
    p_opt = optimal_period_renewal(spec, params, phi, M=M)
    return waste_renewal(spec, params, phi, p_opt, M=M)
