"""Centralised-checkpointing comparators: Young, Daly, and no checkpointing.

The paper situates the buddy algorithms against the classical coordinated
protocol that dumps the *whole application* image to stable storage every
period (§III-B, §VII).  With a global checkpoint cost ``C``, downtime ``D``
and recovery ``R_g``:

* Young's first-order period [6]:  ``P* = sqrt(2·M·C) + C``
* Daly's refinement [7]:           ``P* = sqrt(2·(M + D + R_g)·C) + C``

Both fit the same first-order template as the buddy protocols with
``c = C`` and ``A = 0`` (Young) or ``A = D + R_g`` (Daly — note Daly's
formula adds the lost-time constant to ``M`` instead of subtracting it;
both agree to first order and we reproduce each author's printed form).

The waste model for the centralised protocol mirrors Eq. (4) with blocking
checkpoints: ``WASTEff = C/P`` and ``F = D + R_g + P/2``.

These comparators quantify the paper's headline argument: because ``δ``
(local, per-node) is orders of magnitude smaller than ``C`` (global, to
stable storage), buddy protocols sustain far smaller waste.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from . import firstorder

__all__ = [
    "young_period",
    "daly_period",
    "centralized_waste",
    "centralized_optimal_period",
    "centralized_waste_at_optimum",
]


def _validate(C, M):
    C_arr = np.asarray(C, dtype=float)
    M_arr = np.asarray(M, dtype=float)
    if np.any(C_arr <= 0):
        raise ParameterError("global checkpoint cost C must be > 0")
    if np.any(M_arr <= 0):
        raise ParameterError("MTBF M must be > 0")
    return C_arr, M_arr


def young_period(C, M):
    """Young's optimum ``sqrt(2·M·C) + C`` [6]."""
    C_arr, M_arr = _validate(C, M)
    out = np.sqrt(2.0 * M_arr * C_arr) + C_arr
    return float(out) if out.ndim == 0 else out


def daly_period(C, M, D=0.0, R=0.0):
    """Daly's higher-order optimum ``sqrt(2·(M + D + R)·C) + C`` [7]."""
    C_arr, M_arr = _validate(C, M)
    D_arr = np.asarray(D, dtype=float)
    R_arr = np.asarray(R, dtype=float)
    if np.any(D_arr < 0) or np.any(R_arr < 0):
        raise ParameterError("D and R must be >= 0")
    out = np.sqrt(2.0 * (M_arr + D_arr + R_arr) * C_arr) + C_arr
    return float(out) if out.ndim == 0 else out


def centralized_waste(C, M, P, D=0.0, R=0.0):
    """Waste of blocking centralised checkpointing at period ``P``.

    ``WASTE = 1 − (1 − (D + R + P/2)/M)(1 − C/P)``, clipped to [0, 1];
    periods below ``C`` are infeasible (the platform would checkpoint
    back-to-back) and saturate at 1.
    """
    C_arr, M_arr = _validate(C, M)
    A = np.asarray(D, dtype=float) + np.asarray(R, dtype=float)
    out = firstorder.waste_at_period(C_arr, A, C_arr, np.asarray(P, dtype=float), M_arr)
    return float(out) if out.ndim == 0 else out


def centralized_optimal_period(C, M, D=0.0, R=0.0):
    """First-order optimal period from the template, ``sqrt(2C(M−D−R))``.

    This is the exact minimiser of :func:`centralized_waste`; Young/Daly's
    printed formulas agree with it to first order and are provided
    separately for fidelity to the originals.
    """
    C_arr, M_arr = _validate(C, M)
    A = np.asarray(D, dtype=float) + np.asarray(R, dtype=float)
    out = firstorder.optimal_period_clamped(C_arr, A, C_arr, M_arr)
    return float(out) if out.ndim == 0 else out


def centralized_waste_at_optimum(C, M, D=0.0, R=0.0):
    """Waste at the optimum of :func:`centralized_waste` (1.0 if infeasible)."""
    C_arr, M_arr = _validate(C, M)
    A = np.asarray(D, dtype=float) + np.asarray(R, dtype=float)
    out = firstorder.waste_at_optimum(C_arr, A, C_arr, M_arr)
    return float(out) if out.ndim == 0 else out
