"""Waste evaluation (paper Eqs. 1–5 and their §V analogues).

The *waste* is the fraction of platform time not spent on useful
application work.  Two sources combine multiplicatively (Eq. 5)::

    WASTE = WASTEfail + WASTEff − WASTEfail · WASTEff

where ``WASTEff = c/P`` is the fault-free checkpointing cost and
``WASTEfail = F(P)/M`` the failure-induced loss.  The execution time then
follows from ``(1 − WASTE)·T = T_base`` (Eq. 3).

Every function broadcasts over ``phi``, ``P`` and over array-valued
``M`` supplied via ``params_override_M`` -- sufficient for every figure in
the paper to be a single vectorised call.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..errors import ParameterError
from . import firstorder
from .parameters import Parameters
from .protocols import ProtocolSpec, get_protocol

__all__ = [
    "WasteBreakdown",
    "waste",
    "waste_breakdown",
    "waste_at_optimum",
    "execution_time",
]


class WasteBreakdown(NamedTuple):
    """Waste split into its two sources plus the combined total."""

    fault_free: np.ndarray | float
    failure: np.ndarray | float
    total: np.ndarray | float
    #: The period at which the waste was evaluated (useful when the caller
    #: asked for the optimum).
    period: np.ndarray | float


def _coeffs(spec: ProtocolSpec, params: Parameters, phi, M=None):
    c = np.asarray(spec.cost_coefficient(params, phi), dtype=float)
    A = np.asarray(spec.lost_time_constant(params, phi), dtype=float)
    p_min = np.asarray(spec.min_period(params, phi), dtype=float)
    M_arr = np.asarray(params.M if M is None else M, dtype=float)
    if np.any(M_arr <= 0):
        raise ParameterError("M must be > 0")
    return c, A, p_min, M_arr


def waste(spec: ProtocolSpec | str, params: Parameters, phi, P, *, M=None):
    """Total waste of ``spec`` at overhead ``phi`` and period ``P``.

    Parameters
    ----------
    spec:
        Protocol spec or registry key.
    params:
        Platform parameters; ``params.M`` is used unless ``M`` is given.
    phi, P:
        Overhead (work units) and period length [s]; scalars or arrays.
    M:
        Optional MTBF override (scalar or array) enabling M-sweeps without
        rebuilding ``Parameters``.

    Returns
    -------
    Waste in ``[0, 1]``; infeasible points saturate at ``1.0``.
    """
    spec = get_protocol(spec)
    c, A, p_min, M_arr = _coeffs(spec, params, phi, M)
    out = firstorder.waste_at_period(c, A, p_min, np.asarray(P, dtype=float), M_arr)
    return float(out) if out.ndim == 0 else out


def waste_breakdown(
    spec: ProtocolSpec | str, params: Parameters, phi, P, *, M=None
) -> WasteBreakdown:
    """Waste split into fault-free and failure components at period ``P``."""
    spec = get_protocol(spec)
    c, A, p_min, M_arr = _coeffs(spec, params, phi, M)
    P_arr = np.asarray(P, dtype=float)
    wff = firstorder.waste_fault_free(c, P_arr)
    wfail = firstorder.waste_failures(A, P_arr, M_arr)
    total = firstorder.waste_at_period(c, A, p_min, P_arr, M_arr)
    return WasteBreakdown(wff, wfail, total, P_arr)


def waste_at_optimum(
    spec: ProtocolSpec | str, params: Parameters, phi, *, M=None
) -> WasteBreakdown:
    """Waste at the model-optimal period (the quantity plotted in Figs. 4–8).

    Infeasible points (``M`` below the per-failure constant ``A``) yield
    waste ``1.0`` and period ``nan``.
    """
    spec = get_protocol(spec)
    c, A, p_min, M_arr = _coeffs(spec, params, phi, M)
    p_opt = firstorder.optimal_period_clamped(c, A, p_min, M_arr)
    safe_p = np.where(np.isnan(p_opt), p_min, p_opt)
    wff = np.where(
        np.isnan(p_opt), 1.0, firstorder.waste_fault_free(c, safe_p)
    )
    wfail = np.where(
        np.isnan(p_opt), 1.0, firstorder.waste_failures(A, safe_p, M_arr)
    )
    total = firstorder.waste_at_optimum(c, A, p_min, M_arr)
    return WasteBreakdown(wff, wfail, total, p_opt)


def execution_time(
    spec: ProtocolSpec | str, params: Parameters, phi, t_base, *, P=None, M=None
):
    """Expected execution time ``T = T_base / (1 − WASTE)`` (Eq. 3).

    Uses the optimal period when ``P`` is omitted.  Saturated points
    (waste = 1) return ``inf``: the application never completes.
    """
    if P is None:
        total = waste_at_optimum(spec, params, phi, M=M).total
    else:
        total = waste(spec, params, phi, P, M=M)
    total = np.asarray(total, dtype=float)
    t_base = np.asarray(t_base, dtype=float)
    if np.any(t_base < 0):
        raise ParameterError("t_base must be >= 0")
    with np.errstate(divide="ignore"):
        out = np.where(total >= 1.0, np.inf, t_base / (1.0 - np.minimum(total, 1.0)))
    return float(out) if out.ndim == 0 else out
