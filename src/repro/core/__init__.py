"""Analytical layer: the paper's unified performance/risk model.

Sub-modules
-----------
``overlap``
    The non-blocking communication overhead model ``θ(φ)`` (paper §II).
``parameters``
    Validated parameter bundles (``D``, ``δ``, ``R``, ``α``, ``M``, ``n``).
``firstorder``
    Generic first-order waste machinery shared by every protocol.
``protocols``
    Protocol specifications (DOUBLE-BLOCKING/NBL/BOF, TRIPLE-NBL/BOF).
``waste``
    Waste evaluation at arbitrary or optimal periods (Eqs. 4–5).
``period``
    Closed-form optimal periods with feasibility handling (Eqs. 9/10/15).
``risk``
    Risk windows and application success probabilities (Eqs. 11/12/16).
``comparators``
    Young/Daly centralised checkpointing and the no-checkpoint baseline.
``memory``
    Per-node memory accounting for each protocol (§IV).
``cow``
    fork()/copy-on-write checkpoint-creation model (§IV).
"""

from .overlap import OverlapModel
from .parameters import Parameters
from .protocols import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    PROTOCOLS,
    ProtocolSpec,
    get_protocol,
)
from .waste import waste, waste_at_optimum, waste_breakdown
from .period import optimal_period, feasible
from .risk import (
    risk_window,
    success_probability,
    success_probability_base,
    fatal_failure_probability,
)
from .exact import (
    waste_renewal,
    waste_gap,
    optimal_period_renewal,
    waste_renewal_at_optimum,
)
from .kbuddy import KBuddyModel, recommend_k
from .twolevel import TwoLevelModel, TwoLevelPoint

__all__ = [
    "OverlapModel",
    "Parameters",
    "ProtocolSpec",
    "PROTOCOLS",
    "DOUBLE_BLOCKING",
    "DOUBLE_NBL",
    "DOUBLE_BOF",
    "TRIPLE",
    "TRIPLE_BOF",
    "get_protocol",
    "waste",
    "waste_at_optimum",
    "waste_breakdown",
    "optimal_period",
    "feasible",
    "risk_window",
    "success_probability",
    "success_probability_base",
    "fatal_failure_probability",
    "waste_renewal",
    "waste_gap",
    "optimal_period_renewal",
    "waste_renewal_at_optimum",
    "KBuddyModel",
    "recommend_k",
    "TwoLevelModel",
    "TwoLevelPoint",
]
