"""Command-line interface: ``repro-checkpoint``.

Commands
--------
``list``
    Show the registered paper artefacts.
``table1`` / ``fig4`` … ``fig9``
    Regenerate an artefact; prints the ASCII rendering and (with
    ``--csv DIR``) writes the CSV grid(s).
``validate``
    Run the model-vs-simulation validation suite.
``optimum``
    Print optimal period / waste / risk for one configuration
    (``--protocol --scenario --M --phi``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from . import __version__
from .core.period import optimal_period
from .core.protocols import PROTOCOLS, get_protocol
from .core.risk import risk_window, success_probability
from .core.waste import waste_at_optimum
from .experiments import scenarios
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.validation import validate_all
from .units import format_time, parse_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint",
        description=("Reproduction toolkit for 'Revisiting the double "
                     "checkpointing algorithm' (Dongarra, Herault, Robert, "
                     "APDCM 2013)"),
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    for key, exp in EXPERIMENTS.items():
        p = sub.add_parser(key, help=f"regenerate {exp.paper_ref}: {exp.title}")
        p.add_argument("--csv", type=pathlib.Path, default=None,
                       help="directory to write CSV grid(s) into")

    v = sub.add_parser("validate", help="model-vs-simulation validation")
    v.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    v.add_argument("--M", default="10min", help="platform MTBF (e.g. 600 or '10min')")
    v.add_argument("--phi", type=float, default=1.0, help="overhead phi [s]")
    v.add_argument("--risk-T", default="10d",
                   help="horizon for the risk check (e.g. '10d')")
    v.add_argument("--risk-M", default="1min",
                   help="MTBF for the risk check")
    v.add_argument("--des", type=int, default=0,
                   help="number of DES replicas (0 = skip, slow)")
    v.add_argument("--seed", type=int, default=20130520)

    o = sub.add_parser("optimum", help="optimal period/waste/risk for a config")
    o.add_argument("--protocol", choices=sorted(PROTOCOLS), default="double-nbl")
    o.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    o.add_argument("--M", default="7h")
    o.add_argument("--phi", type=float, default=None,
                   help="overhead phi [s]; default R/2")
    o.add_argument("--T", default=None,
                   help="execution length for the success probability")

    t = sub.add_parser("tune", help="jointly tune phi and the period")
    t.add_argument("--protocol", choices=sorted(PROTOCOLS), default="triple")
    t.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    t.add_argument("--M", default="10min")
    t.add_argument("--T", default=None,
                   help="mission time for the risk constraint (e.g. '30d')")
    t.add_argument("--min-success", type=float, default=0.999,
                   help="success-probability floor (with --T)")
    return parser


def _cmd_experiment(key: str, args: argparse.Namespace) -> int:
    data = run_experiment(key)
    print(data.render())
    if getattr(args, "csv", None) is not None:
        outdir: pathlib.Path = args.csv
        outdir.mkdir(parents=True, exist_ok=True)
        payload = data.to_csv()
        if isinstance(payload, str):
            (outdir / f"{key}.csv").write_text(payload)
            print(f"wrote {outdir / (key + '.csv')}")
        else:
            for name, text in payload.items():
                path = outdir / f"{key}_{name}.csv"
                path.write_text(text)
                print(f"wrote {path}")
        if hasattr(data, "to_gnuplot"):
            for name, script in data.to_gnuplot().items():
                path = outdir / f"{key}_{name}.gp"
                path.write_text(script)
                print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    risk_params = scen.parameters(M=args.risk_M)
    report = validate_all(
        params,
        args.phi,
        risk_params=risk_params,
        risk_T=parse_time(args.risk_T),
        des_replicas=args.des,
        seed=args.seed,
    )
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_optimum(args: argparse.Namespace) -> int:
    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    spec = get_protocol(args.protocol)
    phi = params.R / 2 if args.phi is None else args.phi
    period = optimal_period(spec, params, phi)
    bd = waste_at_optimum(spec, params, phi)
    risk = risk_window(spec, params, phi)
    print(f"protocol     : {spec.name}")
    print(f"scenario     : {scen.key} ({params.describe()})")
    print(f"phi          : {phi:g}s (phi/R = {phi / params.R:.3f})")
    print(f"theta(phi)   : {float(np.asarray(spec.theta(params, phi))):g}s")
    if np.isfinite(period):
        print(f"optimal P    : {period:.3f}s ({format_time(float(period))})")
        print(f"waste        : {float(np.asarray(bd.total)):.6f} "
              f"(fault-free {float(np.asarray(bd.fault_free)):.6f}, "
              f"failures {float(np.asarray(bd.failure)):.6f})")
    else:
        print("optimal P    : infeasible (waste saturates at 1)")
    print(f"risk window  : {risk:g}s")
    if args.T is not None:
        T = parse_time(args.T)
        p = success_probability(spec, params, phi, T)
        print(f"P(success)   : {p:.6f} over T={format_time(T)}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .analysis.tuning import optimal_phi, optimal_phi_constrained

    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    spec = get_protocol(args.protocol)
    if args.T is None:
        choice = optimal_phi(spec, params)
    else:
        choice = optimal_phi_constrained(
            spec, params, parse_time(args.T), min_success=args.min_success
        )
        if choice is None:
            print(f"no phi meets P(success) >= {args.min_success} over "
                  f"T={args.T} with {spec.name}; try a triple protocol or "
                  "a shorter mission")
            return 1
    print(f"protocol     : {spec.name}")
    print(f"scenario     : {scen.key} ({params.describe()})")
    print(f"tuned phi    : {choice.phi:.4f}s (phi/R = {choice.phi / params.R:.3f})")
    print(f"theta        : {choice.theta:.3f}s")
    print(f"period       : {choice.period:.3f}s")
    print(f"waste        : {choice.waste:.6f}")
    print(f"risk window  : {choice.risk_window:.1f}s")
    if args.T is not None:
        print(f"P(success)   : {choice.success:.6f} over {args.T}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for key, exp in EXPERIMENTS.items():
            print(f"{key:8s} {exp.paper_ref:10s} {exp.title}")
        return 0
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "optimum":
        return _cmd_optimum(args)
    if args.command == "tune":
        return _cmd_tune(args)
    return _cmd_experiment(args.command, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
