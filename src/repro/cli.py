"""Command-line interface: ``repro-checkpoint``.

Commands
--------
``list``
    Show the registered paper artefacts.
``table1`` / ``fig4`` … ``fig9``
    Regenerate an artefact; prints the ASCII rendering and (with
    ``--csv DIR``) writes the CSV grid(s).
``validate``
    Run the model-vs-simulation validation suite.
``optimum``
    Print optimal period / waste / risk for one configuration
    (``--protocol --scenario --M --phi``).
``campaign``
    Run a protocol × M × φ DES sweep through the campaign engine.  Every
    invocation is internally one declarative
    :class:`~repro.sim.spec.CampaignSpec` (grid + execution policy):
    ``--spec FILE`` loads one from JSON, ``--dump-spec`` prints the spec
    the current flags describe (without running) so any flag combination
    can be frozen into a reviewable, re-runnable file.  Otherwise the
    grid comes from ``--preset`` (named workloads such as
    ``exa-weibull`` or ``trace-bootstrap``) or an explicit
    ``--scenario``/``--protocols``/``--M``/``--phi`` selection, and the
    policy from ``--workers N`` (process sharding, output bit-identical
    to serial), ``--sink framed`` (out-of-order records, no head-of-line
    wait), and one adaptive rule: ``--adaptive-ci TOL`` (stop a cell
    once its mean-waste CI half-width is ≤ TOL) or ``--adaptive-wilson
    W`` (stop once the success-rate Wilson interval is narrower than W —
    the rule for risk-probability sweeps).  ``--results FILE`` streams
    raw runs as JSON Lines and ``--resume`` finishes an interrupted
    sweep without re-running completed cells.

    Multi-machine: ``campaign --queue DIR --worker-id ID <grid flags>``
    joins the shared work-stealing queue at ``DIR`` as one worker — run
    the same command on any number of machines sharing the directory;
    dead workers' chunks are re-claimed after ``--lease`` seconds.
    ``campaign merge --queue DIR --out FILE`` then combines the
    per-worker shards into one resumable campaign file (``--partial``
    merges what a half-finished queue has so far).
    Caching: ``--store DIR`` points the run at a content-addressed
    results store (:mod:`repro.store`) — cells already warehoused are
    served instead of simulated (a warm re-run of a completed spec
    performs zero simulations yet writes a byte-identical results file),
    fresh cells are published for the next run; ``--store-mode read``
    consults without publishing.
    Observability: ``--trace FILE`` writes a Chrome trace-event JSON of
    the run (campaign → cell → replica-batch spans plus store and queue
    internals; see :mod:`repro.obs`), and every run's
    ``ExecutionReport.metrics`` carries the campaign's metric series.
``store``
    Inspect and manage a results store: ``store ls`` (filterable entry
    listing), ``store stat`` (totals, ``--verify`` re-checks every entry
    against its stored bytes), ``store gc`` (LRU eviction to
    ``--max-bytes``/``--max-age``, with ``--pin-queue``/``--pin-spec``
    footprints immune), ``store export`` (materialise a spec's
    byte-identical framed results file with zero simulations).
``report``
    Re-render analyses offline: ``--from-campaign FILE`` reads a
    campaign's persisted JSON Lines (either sink format) and prints waste
    tables, per-protocol waste surfaces and protocol-ratio tables with
    zero re-simulation.  ``--from-spec FILE --store DIR`` renders the
    same report for a spec straight from the results store — no results
    file, no simulation.
``serve``
    Run the always-on campaign service (:mod:`repro.service`): an HTTP
    daemon answering report queries straight from a results store
    (zero simulation on warm cells), accepting campaign submissions
    onto a background worker pool, and streaming per-cell results as
    NDJSON.  ``serve --store DIR --port 8642``; SIGINT/SIGTERM drains
    in-flight sessions before exiting (``--no-drain`` cancels them at
    the next cell boundary instead).  ``GET /metrics`` serves the
    process's Prometheus exposition (``--metrics`` prints the scrape
    URL on startup); ``store stat --metrics`` prints the same text for
    a one-shot CLI process.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from . import __version__
from .errors import ReproError
from .core.period import optimal_period
from .core.protocols import PROTOCOLS, get_protocol
from .core.risk import risk_window, success_probability
from .core.waste import waste_at_optimum
from .experiments import scenarios
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.validation import validate_all
from .units import format_time, parse_time

__all__ = ["main", "build_parser"]

#: Single source of truth for the ``campaign`` subcommand's flag
#: defaults: ``build_parser`` feeds these into ``add_argument`` and the
#: explicit-flag checks (merge refusing run flags, run refusing
#: merge/distributed flags) compare against them — so a changed default
#: can never silently desynchronise the two.
_CAMPAIGN_DEFAULTS: dict[str, object] = {
    "spec": None, "dump_spec": False,
    "preset": None, "scenario": None, "protocols": None, "M": None,
    "phi": None, "n": None, "work_target": None, "replicas": None,
    "seed": None, "share_traces": None, "results": None, "resume": False,
    "workers": 1, "chunk_size": None, "sink": None, "adaptive_ci": None,
    "adaptive_wilson": None,
    "queue": None, "worker_id": None, "lease": 60.0, "poll": 0.5,
    "worker_procs": 1, "store": None, "store_mode": None,
    "backend": None, "progress": False, "trace": None,
    "out": None, "partial": False,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint",
        description=("Reproduction toolkit for 'Revisiting the double "
                     "checkpointing algorithm' (Dongarra, Herault, Robert, "
                     "APDCM 2013)"),
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    for key, exp in EXPERIMENTS.items():
        p = sub.add_parser(key, help=f"regenerate {exp.paper_ref}: {exp.title}")
        p.add_argument("--csv", type=pathlib.Path, default=None,
                       help="directory to write CSV grid(s) into")

    v = sub.add_parser("validate", help="model-vs-simulation validation")
    v.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    v.add_argument("--M", default="10min", help="platform MTBF (e.g. 600 or '10min')")
    v.add_argument("--phi", type=float, default=1.0, help="overhead phi [s]")
    v.add_argument("--risk-T", default="10d",
                   help="horizon for the risk check (e.g. '10d')")
    v.add_argument("--risk-M", default="1min",
                   help="MTBF for the risk check")
    v.add_argument("--des", type=int, default=0,
                   help="number of DES replicas (0 = skip, slow)")
    v.add_argument("--seed", type=int, default=20130520)

    o = sub.add_parser("optimum", help="optimal period/waste/risk for a config")
    o.add_argument("--protocol", choices=sorted(PROTOCOLS), default="double-nbl")
    o.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    o.add_argument("--M", default="7h")
    o.add_argument("--phi", type=float, default=None,
                   help="overhead phi [s]; default R/2")
    o.add_argument("--T", default=None,
                   help="execution length for the success probability")

    t = sub.add_parser("tune", help="jointly tune phi and the period")
    t.add_argument("--protocol", choices=sorted(PROTOCOLS), default="triple")
    t.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS), default="base")
    t.add_argument("--M", default="10min")
    t.add_argument("--T", default=None,
                   help="mission time for the risk constraint (e.g. '30d')")
    t.add_argument("--min-success", type=float, default=0.999,
                   help="success-probability floor (with --T)")

    c = sub.add_parser(
        "campaign",
        help="run a protocol x M x phi DES sweep (parallel, resumable, "
             "multi-machine via --queue)",
    )
    c.add_argument("action", nargs="?", choices=("run", "merge"),
                   default="run",
                   help="'run' (default) executes the sweep / joins a "
                        "queue; 'merge' combines a queue's worker shards "
                        "into one results file (--queue + --out)")
    c.add_argument("--spec", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="load the whole campaign (grid + execution "
                        "policy) from a CampaignSpec JSON file; only "
                        "--results/--resume/--dump-spec/--store/"
                        "--store-mode may be combined with it")
    c.add_argument("--dump-spec", action="store_true",
                   help="print the CampaignSpec JSON the given flags "
                        "describe and exit without running (freeze a "
                        "flag combination into a file for --spec)")
    c.add_argument("--preset", choices=sorted(scenarios.CAMPAIGN_PRESETS),
                   default=None,
                   help="named campaign workload; fixes the whole grid "
                        "(only --replicas/--seed/--share-traces/--results "
                        "may be combined with it)")
    c.add_argument("--scenario", choices=sorted(scenarios.SCENARIOS),
                   default=None,
                   help="platform scenario (default base; not valid with "
                        "--preset)")
    c.add_argument("--protocols", default=None,
                   help="comma-separated protocol keys (default "
                        "'double-nbl,triple'; not valid with --preset)")
    c.add_argument("--M", default=None,
                   help="comma-separated MTBFs (default '10min,30min'; "
                        "not valid with --preset)")
    c.add_argument("--phi", default=None,
                   help="comma-separated overheads phi [s] (default '1.0'; "
                        "not valid with --preset)")
    c.add_argument("--n", type=int, default=None,
                   help="simulated node count; must be a multiple of "
                        "every protocol's buddy-group size (default 72; "
                        "not valid with --preset)")
    c.add_argument("--work-target", default=None,
                   help="application work per run (default '30min'; not "
                        "valid with --preset)")
    c.add_argument("--replicas", type=int, default=None,
                   help="DES replicas per cell (default: preset's, else 4)")
    c.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default 777)")
    c.add_argument("--share-traces", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="replay one failure trace per (M, replica) across "
                        "protocols (common random numbers); default off "
                        "for explicit grids, per-preset otherwise — "
                        "--no-share-traces forces independent replicas")
    c.add_argument("--results", type=pathlib.Path, default=None,
                   help="JSON Lines sink for every raw run")
    c.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --results "
                        "(requires --results)")
    c.add_argument("--progress", action="store_true",
                   help="stream per-cell progress lines to stderr as "
                        "cells finish (counters from the event "
                        "pipeline's progress consumer)")
    c.add_argument("--workers", type=int, default=1,
                   help="worker processes (0 = all cores; 1 = in-process "
                        "serial, still bit-identical)")
    c.add_argument("--chunk-size", type=int, default=None,
                   help="grid cells per worker task (default: one "
                        "(protocol, M) row)")
    c.add_argument("--sink", choices=("ordered", "framed"),
                   default=None,
                   help="results-file format: 'ordered' keeps grid order "
                        "(byte-identical to serial; the default); "
                        "'framed' appends each cell the moment it "
                        "completes (no head-of-line blocking, still "
                        "resumable; implied by --queue)")
    c.add_argument("--adaptive-ci", type=float, default=None,
                   metavar="TOL",
                   help="stop each cell early once the 95%% CI half-width "
                        "of its mean waste is <= TOL (runs at most "
                        "--replicas; deterministic; with --results "
                        "requires --sink framed)")
    c.add_argument("--adaptive-wilson", type=float, default=None,
                   metavar="WIDTH",
                   help="stop each cell early once the 95%% Wilson "
                        "interval of its success rate is narrower than "
                        "WIDTH (the rule for risk-probability sweeps; "
                        "same bounds and sink requirements as "
                        "--adaptive-ci, mutually exclusive with it)")
    c.add_argument("--queue", type=pathlib.Path, default=None,
                   metavar="DIR",
                   help="join (or initialise) the shared work-stealing "
                        "queue at DIR as one distributed worker; run the "
                        "same command on every machine sharing DIR")
    c.add_argument("--worker-id", default=None, metavar="ID",
                   help="stable identity of this worker in the queue "
                        "([A-Za-z0-9_-]; default "
                        "<hostname>-<pid>-<nonce>); names this worker's "
                        "claim files and shard — pass an explicit id to "
                        "reuse a shard across worker restarts")
    c.add_argument("--lease", type=float, default=60.0, metavar="SECONDS",
                   help="chunk lease: a claimed chunk whose worker has "
                        "not refreshed it for this long is presumed dead "
                        "and re-claimed by another worker (default 60)")
    c.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle polling interval while waiting for "
                        "claimable chunks (default 0.5)")
    c.add_argument("--worker-procs", type=int, default=1, metavar="N",
                   help="process-pool size inside this distributed "
                        "worker (0 = all cores; requires --queue): one "
                        "worker per machine can still use every core "
                        "while the fleet work-steals whole chunks")
    c.add_argument("--store", type=pathlib.Path, default=None,
                   metavar="DIR",
                   help="content-addressed results store: cells already "
                        "warehoused are served instead of simulated "
                        "(byte-identical output), fresh cells are "
                        "published for future runs; volatile, so it "
                        "combines with --spec/--resume/--queue freely")
    c.add_argument("--store-mode", choices=("off", "read", "read-write"),
                   default=None,
                   help="how --store is used: 'read-write' (default) "
                        "consults and publishes, 'read' only consults, "
                        "'off' ignores the store")
    c.add_argument("--backend", choices=("des", "vectorized"),
                   default=None,
                   help="simulation engine: 'des' (default) simulates "
                        "every event; 'vectorized' runs whole cells as "
                        "numpy batches via the renewal closed forms "
                        "(~10-100x faster, statistically equivalent but "
                        "not byte-identical; cells needing shared "
                        "failure traces fall back to the DES per cell)")
    c.add_argument("--trace", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="write a Chrome trace-event JSON of the run "
                        "(campaign/cell/replica-batch spans plus store "
                        "and queue internals; load in chrome://tracing "
                        "or Perfetto); volatile like --store, so it "
                        "combines with --spec")
    c.add_argument("--out", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="(merge) destination for the merged campaign "
                        "results file; a .manifest sidecar is written "
                        "next to it")
    c.add_argument("--partial", action="store_true",
                   help="(merge) merge the complete cells of an "
                        "unfinished queue instead of refusing; the "
                        "partial file can be finished with --resume")
    # Parser-level defaults take precedence over the per-argument ones:
    # this makes _CAMPAIGN_DEFAULTS authoritative for every campaign flag.
    c.set_defaults(**_CAMPAIGN_DEFAULTS)

    st = sub.add_parser(
        "store",
        help="inspect and manage a content-addressed results store "
             "(ls | stat | gc | compact | export)",
    )
    st.add_argument("action",
                    choices=("ls", "stat", "gc", "compact", "export"),
                    help="'ls' lists entries (filterable), 'stat' prints "
                         "totals (--verify re-checks every entry), 'gc' "
                         "evicts to a retention budget, 'compact' packs "
                         "loose entries into a segment file (flat "
                         "warm-lookup latency at fleet scale), 'export' "
                         "materialises a spec's results file with zero "
                         "simulations")
    st.add_argument("--store", type=pathlib.Path, required=True,
                    metavar="DIR", help="the store directory")
    st.add_argument("--protocol", default=None,
                    help="(ls) only entries of this protocol")
    st.add_argument("--M", default=None,
                    help="(ls) only entries at this MTBF (e.g. '10min')")
    st.add_argument("--phi", type=float, default=None,
                    help="(ls) only entries at this overhead phi [s]")
    st.add_argument("--limit", type=int, default=20,
                    help="(ls) print at most this many entries "
                         "(default 20; 0 = all)")
    st.add_argument("--verify", action="store_true",
                    help="(stat) re-verify every entry against its "
                         "stored bytes; exit 1 on corruption")
    st.add_argument("--cache", action="store_true",
                    help="(stat) also print this process's hot-cell "
                         "cache counters (hits/misses/evictions/bytes) "
                         "— meaningful in a live session or service "
                         "process; a fresh CLI process reports a cold "
                         "cache")
    st.add_argument("--metrics", action="store_true",
                    help="(stat) also print this process's metrics "
                         "registry in Prometheus text exposition format "
                         "(the same body GET /metrics serves)")
    st.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="(gc) evict least-recently-used entries until "
                         "the store holds at most N bytes")
    st.add_argument("--max-age", default=None, metavar="AGE",
                    help="(gc) evict entries idle longer than AGE "
                         "(e.g. '7d', '12h', 3600)")
    st.add_argument("--pin-queue", type=pathlib.Path, action="append",
                    default=[], metavar="DIR",
                    help="(gc) never evict cells referenced by this "
                         "campaign queue directory's manifest "
                         "(repeatable) — protects in-progress fleets")
    st.add_argument("--pin-spec", type=pathlib.Path, action="append",
                    default=[], metavar="FILE",
                    help="(gc) never evict cells in this CampaignSpec "
                         "JSON file's footprint (repeatable)")
    st.add_argument("--dry-run", action="store_true",
                    help="(gc/compact) report what would happen, change "
                         "nothing")
    st.add_argument("--spec", type=pathlib.Path, default=None,
                    metavar="FILE",
                    help="(export) the CampaignSpec JSON file to resolve "
                         "from the store")
    st.add_argument("--out", type=pathlib.Path, default=None,
                    metavar="FILE",
                    help="(export) destination results file (framed, "
                         "grid-ordered, byte-identical to a run; a "
                         ".manifest sidecar is written next to it)")

    sv = sub.add_parser(
        "serve",
        help="run the always-on campaign service (HTTP query/submit "
             "daemon over a results store)",
    )
    sv.add_argument("--store", type=pathlib.Path, required=True,
                    metavar="DIR",
                    help="the results store the service answers from "
                         "and publishes into (created if missing)")
    sv.add_argument("--data", type=pathlib.Path, default=None,
                    metavar="DIR",
                    help="where submitted campaigns' results files live "
                         "(default: <store>/service)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    sv.add_argument("--port", type=int, default=8642,
                    help="TCP port; 0 binds an ephemeral port and "
                         "prints it (default 8642)")
    sv.add_argument("--service-workers", type=int, default=2,
                    metavar="N",
                    help="background campaign sessions run at once "
                         "(default 2)")
    sv.add_argument("--metrics", action="store_true",
                    help="print the Prometheus scrape URL on startup "
                         "(GET /metrics is always served; this just "
                         "surfaces the address for scrape configs)")
    sv.add_argument("--no-drain", action="store_true",
                    help="on SIGINT/SIGTERM cancel running campaigns at "
                         "the next cell boundary instead of letting "
                         "them finish (their results files stay valid "
                         "resumable prefixes either way)")

    r = sub.add_parser(
        "report",
        help="render analyses from persisted results (no re-simulation)",
    )
    r.add_argument("--from-campaign", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="campaign JSON Lines results file (either sink "
                        "format) to render waste and ratio tables from")
    r.add_argument("--from-spec", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="CampaignSpec JSON file to render straight from "
                        "a results store (requires --store; zero "
                        "re-simulation, no results file needed)")
    r.add_argument("--store", type=pathlib.Path, default=None,
                   metavar="DIR",
                   help="results store to resolve --from-spec cells from")
    return parser


def _parse_values(text: str, parse) -> tuple[float, ...]:
    return tuple(parse(tok) for tok in text.split(",") if tok.strip())


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        return _run_campaign_command(args)
    except ReproError as exc:
        # The engine composes actionable one-line refusals (config drift,
        # foreign results files, bad grids) — surface them, not tracebacks.
        print(f"campaign: {exc}", file=sys.stderr)
        return 2


#: campaign flags that shape a *run* — `campaign merge` refuses them.
_RUN_SHAPING_FLAGS = (
    ("spec", "--spec"), ("dump_spec", "--dump-spec"),
    ("preset", "--preset"), ("scenario", "--scenario"),
    ("protocols", "--protocols"), ("M", "--M"), ("phi", "--phi"),
    ("n", "--n"), ("work_target", "--work-target"),
    ("replicas", "--replicas"), ("seed", "--seed"),
    ("share_traces", "--share-traces"), ("results", "--results"),
    ("resume", "--resume"), ("chunk_size", "--chunk-size"),
    ("sink", "--sink"), ("adaptive_ci", "--adaptive-ci"),
    ("adaptive_wilson", "--adaptive-wilson"),
    ("worker_id", "--worker-id"), ("workers", "--workers"),
    ("lease", "--lease"), ("poll", "--poll"),
    ("worker_procs", "--worker-procs"),
    ("store", "--store"), ("store_mode", "--store-mode"),
    ("backend", "--backend"), ("progress", "--progress"),
    ("trace", "--trace"),
)
#: campaign flags subsumed by a spec file — `--spec` refuses them.
#: (--store/--store-mode are deliberately absent: they are volatile
#: policy — incapable of changing output bytes — so layering them over a
#: reviewed spec runs exactly the reviewed campaign, just cheaper.)
_SPEC_CONFLICT_FLAGS = (
    ("preset", "--preset"), ("scenario", "--scenario"),
    ("protocols", "--protocols"), ("M", "--M"), ("phi", "--phi"),
    ("n", "--n"), ("work_target", "--work-target"),
    ("replicas", "--replicas"), ("seed", "--seed"),
    ("share_traces", "--share-traces"), ("chunk_size", "--chunk-size"),
    ("sink", "--sink"), ("adaptive_ci", "--adaptive-ci"),
    ("adaptive_wilson", "--adaptive-wilson"), ("workers", "--workers"),
    ("queue", "--queue"), ("worker_id", "--worker-id"),
    ("lease", "--lease"), ("poll", "--poll"),
    ("worker_procs", "--worker-procs"),
    # --backend is output-bearing (engines are statistically equivalent,
    # not byte-identical), so a reviewed spec's backend must win.
    ("backend", "--backend"),
)
#: campaign flags that only tune a distributed worker — require --queue.
_DISTRIBUTED_ONLY_FLAGS = (
    ("worker_id", "--worker-id"), ("lease", "--lease"), ("poll", "--poll"),
    ("worker_procs", "--worker-procs"),
)


def _explicit_flags(
    args: argparse.Namespace, pairs: tuple[tuple[str, str], ...]
) -> list[str]:
    """The flags in ``pairs`` whose values differ from the campaign
    defaults — i.e. were (in effect) passed explicitly."""
    return [
        flag for attr, flag in pairs
        if getattr(args, attr) != _CAMPAIGN_DEFAULTS[attr]
    ]


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from .sim.distributed import merge_shards

    missing = [flag for flag, value in (("--queue", args.queue),
                                        ("--out", args.out)) if value is None]
    if missing:
        print(f"campaign merge requires {' and '.join(missing)}",
              file=sys.stderr)
        return 2
    # Silently dropping run-shaping flags would mislead; refuse them.
    ignored = _explicit_flags(args, _RUN_SHAPING_FLAGS)
    if ignored:
        print("campaign merge only reads --queue/--out/--partial; drop "
              + ", ".join(ignored), file=sys.stderr)
        return 2
    report = merge_shards(
        args.queue, args.out, require_complete=not args.partial
    )
    print(report.describe())
    print(f"merged results: {args.out}")
    return 0


def _build_campaign_spec(args: argparse.Namespace):
    """The CampaignSpec the campaign flags describe, or an exit code.

    Every ``campaign`` invocation — preset, explicit grid, or ``--spec``
    file — converges on one spec object here; execution, ``--dump-spec``
    and the manifest/queue fingerprints all consume it, so the CLI can no
    longer describe a campaign the engine cannot serialise.
    """
    from .sim.campaign import CampaignConfig
    from .sim.spec import CampaignSpec, ExecutionPolicy

    if args.spec is not None:
        # The file is the whole configuration: silently layering flags on
        # top would run a different campaign than the reviewed spec.
        # (--store/--store-mode are the exception — volatile policy that
        # cannot change output bytes, only skip recomputing them.)
        conflicts = _explicit_flags(args, _SPEC_CONFLICT_FLAGS)
        if conflicts:
            print(f"--spec fixes the whole campaign; drop "
                  f"{', '.join(conflicts)} or drop --spec", file=sys.stderr)
            return 2
        spec = CampaignSpec.load(args.spec)
        if args.store is not None or args.store_mode is not None:
            from dataclasses import replace

            updates: dict = {}
            if args.store is not None:
                updates["store"] = str(args.store)
            if args.store_mode is not None:
                updates["store_mode"] = args.store_mode
            spec = replace(spec, policy=replace(spec.policy, **updates))
        return spec

    overrides: dict = {}
    if args.replicas is not None:
        overrides["replicas"] = args.replicas
    if args.seed is not None:
        overrides["seed"] = args.seed

    if args.preset is not None:
        # A preset fixes the whole grid: silently ignoring explicit grid
        # flags would run a different sweep than the user asked for.
        conflicts = [
            flag for attr, flag in (
                ("scenario", "--scenario"), ("protocols", "--protocols"),
                ("M", "--M"), ("phi", "--phi"), ("n", "--n"),
                ("work_target", "--work-target"),
            ) if getattr(args, attr) is not None
        ]
        if conflicts:
            print(f"--preset fixes the grid; drop {', '.join(conflicts)} "
                  "or drop --preset", file=sys.stderr)
            return 2
        preset = scenarios.get_campaign_preset(args.preset)
        if args.share_traces is not None:
            overrides["share_traces"] = args.share_traces
        config = preset.campaign_config(**overrides)
    else:
        scen = scenarios.get_scenario(args.scenario or "base")
        m_text = args.M or "10min,30min"
        n = 72 if args.n is None else args.n
        protocols = tuple(
            tok.strip() for tok in (args.protocols or "double-nbl,triple").split(",")
            if tok.strip()
        )
        config = CampaignConfig(
            protocols=protocols,
            base_params=scen.parameters(M=m_text.split(",")[0], n=n),
            m_values=_parse_values(m_text, parse_time),
            phi_values=_parse_values(args.phi or "1.0", float),
            work_target=parse_time(args.work_target or "30min"),
            share_traces=bool(args.share_traces),
            replicas=overrides.pop("replicas", 4),
            **overrides,
        )

    controller = None
    if args.adaptive_ci is not None and args.adaptive_wilson is not None:
        print("--adaptive-ci and --adaptive-wilson are mutually "
              "exclusive: a cell stops on one statistic", file=sys.stderr)
        return 2
    if args.adaptive_ci is not None:
        from .sim.adaptive import AdaptiveCI

        controller = AdaptiveCI(
            max_replicas=config.replicas, tolerance=args.adaptive_ci
        )
    if args.adaptive_wilson is not None:
        from .sim.adaptive import WilsonSuccessRate

        controller = WilsonSuccessRate(
            max_replicas=config.replicas, tolerance=args.adaptive_wilson
        )
    sink = args.sink or ("framed" if args.queue is not None else "ordered")
    return CampaignSpec(
        grid=config,
        policy=ExecutionPolicy(
            workers=args.workers,
            chunk_size=args.chunk_size,
            sink=sink,
            controller=controller,
            queue=None if args.queue is None else str(args.queue),
            worker_id=args.worker_id,
            lease_timeout=args.lease,
            poll_interval=args.poll,
            worker_processes=args.worker_procs,
            store=None if args.store is None else str(args.store),
            store_mode=args.store_mode or "read-write",
            backend=args.backend or "des",
        ),
    )


def _run_campaign_command(args: argparse.Namespace) -> int:
    from .sim.campaign import cells_table
    from .sim.spec import Campaign

    if args.action == "merge":
        return _cmd_campaign_merge(args)

    if args.out is not None or args.partial:
        print("--out/--partial belong to 'campaign merge' (campaign "
              "merge --queue DIR --out FILE [--partial])", file=sys.stderr)
        return 2
    if args.queue is None and args.spec is None:
        distributed_only = _explicit_flags(args, _DISTRIBUTED_ONLY_FLAGS)
        if distributed_only:
            print(f"{', '.join(distributed_only)} require --queue "
                  "(they tune a distributed worker)", file=sys.stderr)
            return 2
    if args.queue is not None:
        # Flag-level spellings of refusals ExecutionPolicy also enforces:
        # the CLI names the flag to drop, the policy stays authoritative.
        conflicts = []
        if args.results is not None:
            conflicts.append("--results (workers write shards in the "
                             "queue; use 'campaign merge --out')")
        if args.resume:
            conflicts.append("--resume (rejoining the queue is the resume)")
        if args.workers != 1:
            conflicts.append("--workers (start more --queue workers "
                             "instead)")
        if args.sink is not None and args.sink != "framed":
            conflicts.append("--sink ordered (distributed campaigns are "
                             "framed)")
        if conflicts:
            print("--queue conflicts with " + "; ".join(conflicts),
                  file=sys.stderr)
            return 2
    if args.resume and args.results is None:
        print("--resume requires --results", file=sys.stderr)
        return 2

    spec = _build_campaign_spec(args)
    if isinstance(spec, int):
        return spec
    # Checked against the *built* spec so the --spec path is covered
    # too: a mode with no store anywhere would silently run storeless.
    if args.store_mode is not None and spec.policy.store is None:
        print("--store-mode tunes a store; pass --store DIR (or a --spec "
              "whose policy names one)", file=sys.stderr)
        return 2
    if args.dump_spec:
        if args.results is not None or args.resume:
            print("--dump-spec prints the campaign description, which "
                  "never contains a results path; drop --results/--resume",
                  file=sys.stderr)
            return 2
        print(spec.to_json(), end="")
        return 0

    # The CLI is a plain session consumer: open the spec, stream the
    # typed events (the same seam the campaign service subscribes to),
    # collect the execution at the end.
    tracer = None
    if args.trace is not None:
        from .obs import Tracer, install_tracer

        tracer = install_tracer(Tracer())
    try:
        session = Campaign(spec).session(args.results, resume=args.resume)
        if args.progress:
            from .sim.events import CellFinished

            for event in session.events():
                if isinstance(event, CellFinished):
                    plan = event.plan
                    print(f"  cell {plan.index}: {plan.protocol} "
                          f"M={plan.M:g} phi={plan.phi:g} "
                          f"({len(event.results)} replicas, "
                          f"{event.source}) "
                          f"— {session.progress().describe()}",
                          file=sys.stderr)
            execution = session.result()
        else:
            execution = session.run()
    finally:
        if tracer is not None:
            from .obs import uninstall_tracer

            uninstall_tracer()
    if tracer is not None:
        spans = tracer.write_chrome(args.trace)
        print(f"trace: {args.trace} ({spans} spans)", file=sys.stderr)
    print(cells_table(execution.cells))
    print(execution.report.describe())
    if args.results is not None:
        print(f"raw runs: {args.results}")
    if spec.policy.store is not None and spec.policy.store_mode != "off":
        print(f"store: {spec.policy.store} "
              f"({execution.report.cells_cached} cells served from it)")
        stats = session.cache_stats()
        if stats is not None:
            print(f"store cache: {stats.describe()}")
    if spec.policy.queue is not None:
        from .sim.distributed import queue_status

        print(f"queue: {queue_status(spec.policy.queue).describe()}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        if (args.from_campaign is None) == (args.from_spec is None):
            print("report needs exactly one source: --from-campaign FILE "
                  "or --from-spec FILE --store DIR", file=sys.stderr)
            return 2
        if args.from_campaign is not None:
            if args.store is not None:
                print("--store belongs to --from-spec (a results file "
                      "already holds its cells)", file=sys.stderr)
                return 2
            from .experiments.report import campaign_report

            print(campaign_report(args.from_campaign), end="")
            return 0
        if args.store is None:
            print("--from-spec needs --store DIR (the store to resolve "
                  "the spec's cells from)", file=sys.stderr)
            return 2
        from .experiments.report import store_report
        from .sim.spec import CampaignSpec

        print(store_report(args.store, CampaignSpec.load(args.from_spec)),
              end="")
        return 0
    except (OSError, ReproError) as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import CampaignService

    try:
        service = CampaignService(
            store=args.store,
            data_dir=args.data if args.data is not None
            else args.store / "service",
            host=args.host, port=args.port,
            workers=args.service_workers,
        )
    except (OSError, ReproError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    # Serve on a daemon thread and park the main thread on an event:
    # signal handlers only set the flag, so shutdown never runs inside
    # the serve loop it has to join.
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    service.start()
    # Port 0 binds an ephemeral port; print the resolved address so
    # callers (and the lifecycle tests) can find the daemon.
    print(f"campaign service listening on {service.url()} "
          f"(store: {service.store.root})", flush=True)
    if args.metrics:
        print(f"metrics: {service.url('/metrics')} "
              "(Prometheus text exposition)", flush=True)
    try:
        # ``POST /shutdown`` completes the drain on its own thread; the
        # closed flag ends this loop so the process exits either way.
        while not stop.wait(0.2):
            if service.wait_closed(0.0):
                break
    except KeyboardInterrupt:
        pass
    drain = not args.no_drain
    print("campaign service: "
          + ("draining in-flight campaigns..." if drain
             else "cancelling in-flight campaigns..."),
          flush=True)
    service.shutdown(drain=drain)
    print("campaign service: stopped", flush=True)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    try:
        return _run_store_command(args)
    except (OSError, ReproError) as exc:
        print(f"store: {exc}", file=sys.stderr)
        return 2


def _run_store_command(args: argparse.Namespace) -> int:
    from .experiments.report import ascii_table
    from .store import CampaignStore

    # Inspection/management of an *existing* store: a missing directory
    # is an error here (campaign --store is what creates stores).
    store = CampaignStore(args.store, create=False)

    if args.action == "ls":
        entries = sorted(
            store.query(
                protocol=args.protocol,
                M=None if args.M is None else parse_time(args.M),
                phi=args.phi,
            ),
            key=lambda e: (e.protocol or "", e.M, e.phi, e.seed or 0),
        )
        shown = entries if not args.limit else entries[:args.limit]
        rows = [
            [e.protocol, e.M, e.phi, e.n, e.seed,
             "-" if e.trace_seed is None else e.trace_seed, e.size]
            for e in shown
        ]
        print(ascii_table(
            ["protocol", "M", "phi", "n", "seed", "trace seed", "bytes"],
            rows,
            title=f"=== store {args.store} "
                  f"({len(shown)}/{len(entries)} entries) ===",
        ), end="")
        return 0

    if args.action == "stat":
        print(f"store: {args.store}")

        def _print_cache() -> None:
            stats = store.cache_stats()
            print("cache: " + ("disabled" if stats is None
                               else stats.describe()))

        def _print_metrics() -> None:
            from .obs import default_registry

            print(default_registry().render_prometheus(), end="")

        if args.verify:
            # One scan serves both: verify() *collects* corruption
            # (where the plain stat scan would die on the first
            # unreadable entry) and aggregates the clean entries.
            report = store.verify()
            print(report.describe())
            if not report.ok:
                for error in report.errors[1:]:
                    print(error, file=sys.stderr)
                return 1
            print(report.stat.describe())
            if args.cache:
                _print_cache()
            if args.metrics:
                _print_metrics()
            return 0
        print(store.stat().describe())
        if args.cache:
            _print_cache()
        if args.metrics:
            _print_metrics()
        return 0

    if args.action == "gc":
        if args.max_bytes is None and args.max_age is None:
            print("store gc needs a retention budget: --max-bytes N "
                  "and/or --max-age AGE", file=sys.stderr)
            return 2
        from .sim.spec import CampaignSpec

        report = store.gc(
            max_bytes=args.max_bytes,
            max_age=None if args.max_age is None else parse_time(args.max_age),
            pin_specs=[CampaignSpec.load(p) for p in args.pin_spec],
            pin_queues=args.pin_queue,
            dry_run=args.dry_run,
        )
        print(report.describe())
        return 0

    if args.action == "compact":
        report = store.compact(dry_run=args.dry_run)
        print(report.describe())
        return 0

    # export
    missing = [flag for flag, value in (("--spec", args.spec),
                                        ("--out", args.out)) if value is None]
    if missing:
        print(f"store export requires {' and '.join(missing)}",
              file=sys.stderr)
        return 2
    from .sim.spec import CampaignSpec

    report = store.export(CampaignSpec.load(args.spec), args.out)
    print(report.describe())
    print(f"exported results: {args.out}")
    return 0


def _cmd_experiment(key: str, args: argparse.Namespace) -> int:
    data = run_experiment(key)
    print(data.render())
    if getattr(args, "csv", None) is not None:
        outdir: pathlib.Path = args.csv
        outdir.mkdir(parents=True, exist_ok=True)
        payload = data.to_csv()
        if isinstance(payload, str):
            (outdir / f"{key}.csv").write_text(payload)
            print(f"wrote {outdir / (key + '.csv')}")
        else:
            for name, text in payload.items():
                path = outdir / f"{key}_{name}.csv"
                path.write_text(text)
                print(f"wrote {path}")
        if hasattr(data, "to_gnuplot"):
            for name, script in data.to_gnuplot().items():
                path = outdir / f"{key}_{name}.gp"
                path.write_text(script)
                print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    risk_params = scen.parameters(M=args.risk_M)
    report = validate_all(
        params,
        args.phi,
        risk_params=risk_params,
        risk_T=parse_time(args.risk_T),
        des_replicas=args.des,
        seed=args.seed,
    )
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_optimum(args: argparse.Namespace) -> int:
    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    spec = get_protocol(args.protocol)
    phi = params.R / 2 if args.phi is None else args.phi
    period = optimal_period(spec, params, phi)
    bd = waste_at_optimum(spec, params, phi)
    risk = risk_window(spec, params, phi)
    print(f"protocol     : {spec.name}")
    print(f"scenario     : {scen.key} ({params.describe()})")
    print(f"phi          : {phi:g}s (phi/R = {phi / params.R:.3f})")
    print(f"theta(phi)   : {float(np.asarray(spec.theta(params, phi))):g}s")
    if np.isfinite(period):
        print(f"optimal P    : {period:.3f}s ({format_time(float(period))})")
        print(f"waste        : {float(np.asarray(bd.total)):.6f} "
              f"(fault-free {float(np.asarray(bd.fault_free)):.6f}, "
              f"failures {float(np.asarray(bd.failure)):.6f})")
    else:
        print("optimal P    : infeasible (waste saturates at 1)")
    print(f"risk window  : {risk:g}s")
    if args.T is not None:
        T = parse_time(args.T)
        p = success_probability(spec, params, phi, T)
        print(f"P(success)   : {p:.6f} over T={format_time(T)}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .analysis.tuning import optimal_phi, optimal_phi_constrained

    scen = scenarios.get_scenario(args.scenario)
    params = scen.parameters(M=args.M)
    spec = get_protocol(args.protocol)
    if args.T is None:
        choice = optimal_phi(spec, params)
    else:
        choice = optimal_phi_constrained(
            spec, params, parse_time(args.T), min_success=args.min_success
        )
        if choice is None:
            print(f"no phi meets P(success) >= {args.min_success} over "
                  f"T={args.T} with {spec.name}; try a triple protocol or "
                  "a shorter mission")
            return 1
    print(f"protocol     : {spec.name}")
    print(f"scenario     : {scen.key} ({params.describe()})")
    print(f"tuned phi    : {choice.phi:.4f}s (phi/R = {choice.phi / params.R:.3f})")
    print(f"theta        : {choice.theta:.3f}s")
    print(f"period       : {choice.period:.3f}s")
    print(f"waste        : {choice.waste:.6f}")
    print(f"risk window  : {choice.risk_window:.1f}s")
    if args.T is not None:
        print(f"P(success)   : {choice.success:.6f} over {args.T}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for key, exp in EXPERIMENTS.items():
            print(f"{key:8s} {exp.paper_ref:10s} {exp.title}")
        return 0
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "optimum":
        return _cmd_optimum(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_experiment(args.command, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
