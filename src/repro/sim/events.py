"""Typed result-event pipeline: producers → bus → consumers.

The execution core is event-driven: whatever runs a campaign's cells —
:class:`~repro.sim.backends.SerialBackend`,
:class:`~repro.sim.backends.ProcessPoolBackend`, the distributed
work-stealing backend, the vectorized engine, a results-store hit, or a
resume recovery — is a pure *producer* of the typed events in this
module, and everything that used to be hard-wired into the executor's
inner loop — the JSONL sink append, the store publish, the adaptive
controller's bookkeeping, progress counters — is an independent
*consumer* subscribed to one in-process :class:`EventBus`.  The seam
between them is where a long-running service, a metrics exporter or a
streaming client plugs in without owning (or perturbing) the execution
loop: byte-identical files fall out of the same consumer that always
wrote them.

Event grammar
-------------
One campaign produces exactly this stream (a regular language)::

    CampaignStarted
      ( CellStarted ReplicaBatch CellFinished CampaignProgress )*
    CampaignFinished

Every cell — recovered, store-served or freshly simulated — appears as
one ``CellStarted``/``ReplicaBatch``/``CellFinished`` triple, so any
consumer can replay the stream to the campaign's exact final state (the
consistent-observer property: an observer must never see a stream that
replays to a different state than the ground-truth files).  The
``source`` field says where the replicas came from and drives each
consumer's filter:

========== ===================================== ============ =========
source     meaning                               sink append  store pub
========== ===================================== ============ =========
backend    freshly simulated this execution      yes          yes
store      served from the content-addressed     yes          no
           results store (zero simulations)
resume     recovered from the existing results   no (already  no
           file before execution began           on disk)
========== ===================================== ============ =========

Consumer contract
-----------------
The bus is deliberately synchronous and unbuffered; the contract every
consumer can rely on (and every producer must honour):

**Ordering.**  Fan-out is deterministic: consumers receive each event in
*subscription order*, and event *N* is fully delivered to every consumer
before event *N + 1* is produced.  The built-in subscription order is
fixed — controller replay, sink writer, store publisher, progress
tracker, cell callback, then user consumers — which encodes the
durability rule directly: a cell reaches the results file before the
store can publish it, and progress counters only ever describe cells
that are already durable.  Cell triples arrive in *emission order*:
grid order under an ordered sink, store-hits-then-completion-order
under a framed one — exactly the order the file is written in.

**Backpressure.**  Delivery is a plain synchronous call on the
producer's thread: a slow consumer slows the campaign down rather than
falling behind, and no event is ever queued, coalesced or dropped.
Consumers that cannot afford to block the inner loop must do their own
buffering (the progress tracker is the model: O(1) counter updates
under a lock, snapshots on demand from any thread).

**Error propagation.**  A consumer exception aborts the campaign: it
propagates out of :meth:`EventBus.publish` into the producing loop and
from there to whoever is iterating
:meth:`~repro.sim.executor.CampaignSession.events`.  There is no
dead-letter path — a consumer that must survive its own failures
catches them itself.  On any termination (clean or not) every consumer's
:meth:`EventConsumer.close` is called exactly once, in subscription
order, with the terminating exception (or ``None``).

Built-in consumers
------------------
:class:`SinkWriter`
    appends ``backend``/``store`` cells to the
    :class:`~repro.sim.sinks.ResultSink` — the byte-identical file path.
:class:`StorePublisher`
    publishes ``backend`` cells to the
    :class:`~repro.store.CampaignStore` *after* the sink append (it
    subscribes after the writer; the warehouse must never get ahead of
    the durable results file).
:class:`ControllerReplay`
    replays every finished cell's waste sequence through a fresh
    :class:`~repro.sim.adaptive.ReplicaController` cursor and refuses a
    stream whose replica counts disagree with the stopping rule — the
    live-stream counterpart of the resume scan's per-cell validation.
:class:`ProgressTracker`
    thread-safe counters behind
    :meth:`~repro.sim.executor.CampaignSession.progress`; the final
    :class:`~repro.sim.executor.ExecutionReport` is assembled from this
    consumer's totals, so the metrics path is load-bearing, not
    decorative.
:class:`CellCallback`
    adapts the historical ``on_cell=`` callback surface.

Wire format
-----------
Every event serialises to a versioned JSON-safe dict
(:func:`event_to_dict`) and back (:func:`event_from_dict`) under the
same discipline as the :mod:`repro.io` envelopes and the campaign spec:
a ``format``/``version`` header, refused-by-name validation of unknown
kinds and fields, and an exact round trip:
``event_to_dict(event_from_dict(d)) == d`` holds for every emitted wire
dict, and decoding reproduces the original event field-for-field (equal
up to IEEE NaN, which compares unequal to itself — results carrying
``fatal_time=nan`` round-trip to canonically identical bytes via
:func:`repro.io.dump_result`).  Replica results ride in
:func:`repro.io.to_envelope` envelopes (typed float sentinels, exact
NaN round trip); a :class:`CellFinished` event's aggregated cell is
*not* transmitted — it is a pure function of ``(plan, results)`` and is
recomputed on read via :func:`make_cell`, so the wire carries no
derivable state that could drift from its inputs.  This one schema is
shared by the campaign service's NDJSON stream
(``GET /campaigns/<id>/events``) and any future replay consumer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import ParameterError
from .adaptive import ReplicaController, stop_count
from .campaign import CampaignCell, CampaignConfig
from .results import DesResult, MonteCarloSummary
from .sinks import ResultSink

if TYPE_CHECKING:  # circular at runtime: executor builds on this module
    from .executor import CellPlan, ExecutionReport
    from .spec import CampaignSpec

__all__ = [
    "EVENT_SOURCES",
    "EVENT_WIRE_FORMAT",
    "EVENT_WIRE_VERSION",
    "CampaignEvent",
    "CampaignStarted",
    "CellStarted",
    "ReplicaBatch",
    "CellFinished",
    "CampaignProgress",
    "CampaignFinished",
    "EventConsumer",
    "EventBus",
    "SinkWriter",
    "StorePublisher",
    "ControllerReplay",
    "ProgressTracker",
    "CellCallback",
    "make_cell",
    "event_to_dict",
    "event_from_dict",
]

#: Where a cell's replicas came from (see the module table).
EVENT_SOURCES = ("backend", "store", "resume")

EVENT_WIRE_FORMAT = "repro-campaign-event"
#: Written wire version.  Readers gate on each object's declared
#: version, so a future shape change bumps this and keeps reading older
#: spellings.
EVENT_WIRE_VERSION = 1
_WIRE_READ_VERSIONS = frozenset({1})


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignEvent:
    """Base of every event on the bus (useful for isinstance filters)."""


@dataclass(frozen=True)
class CampaignStarted(CampaignEvent):
    """First event of every stream: the full plan, before any cell.

    ``resumed`` holds the plan indices recovered from the results file —
    their triples follow immediately, in grid order, tagged
    ``source="resume"``.
    """

    spec: "CampaignSpec"
    plans: tuple
    resumed: tuple[int, ...] = ()

    @property
    def cells_total(self) -> int:
        return len(self.plans)


@dataclass(frozen=True)
class CellStarted(CampaignEvent):
    """A cell's triple is beginning: its results enter the pipeline."""

    plan: "CellPlan"
    source: str = "backend"


@dataclass(frozen=True)
class ReplicaBatch(CampaignEvent):
    """One batch of replica results for a cell.

    Today each cell delivers exactly one batch (backends hand the
    executor whole cells); the event is separate from
    :class:`CellFinished` so replica-streaming producers can emit
    several batches per cell without changing the grammar.
    """

    plan: "CellPlan"
    results: tuple[DesResult, ...]
    source: str = "backend"


@dataclass(frozen=True)
class CellFinished(CampaignEvent):
    """A cell is complete: all of its replicas, plus the summary."""

    plan: "CellPlan"
    cell: CampaignCell
    results: tuple[DesResult, ...]
    source: str = "backend"


@dataclass(frozen=True)
class CampaignProgress(CampaignEvent):
    """A point-in-time counter snapshot (also pollable on demand).

    Published after every :class:`CellFinished`; identical snapshots are
    returned by :meth:`ProgressTracker.snapshot` /
    :meth:`~repro.sim.executor.CampaignSession.progress` from any
    thread.
    """

    cells_total: int
    cells_resumed: int
    cells_cached: int
    cells_run: int
    replicas_run: int
    elapsed: float

    @property
    def cells_done(self) -> int:
        return self.cells_resumed + self.cells_cached + self.cells_run

    def describe(self) -> str:
        return (
            f"{self.cells_done}/{self.cells_total} cells "
            f"({self.cells_resumed} resumed, {self.cells_cached} cached, "
            f"{self.cells_run} run), replicas={self.replicas_run}, "
            f"{self.elapsed:.2f}s"
        )


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """Last event of every clean stream: the final execution report."""

    report: "ExecutionReport"


def make_cell(plan: "CellPlan", results) -> CampaignCell:
    """Aggregate one cell from its plan and replica results.

    The deterministic function behind every :class:`CellFinished.cell`
    — live emission, store resolution and wire decoding all build the
    cell through here, so an aggregated cell can never disagree with
    the replicas it summarises.
    """
    results = tuple(results)
    summary = MonteCarloSummary.from_samples(
        [res.waste for res in results],
        successes=sum(res.succeeded for res in results),
        meta={"protocol": plan.protocol, "M": plan.M, "phi": plan.phi},
    )
    return CampaignCell(
        protocol=plan.protocol, M=plan.M, phi=plan.phi,
        summary=summary, results=results,
    )


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
_PLAN_FIELDS = ("index", "protocol", "m_index", "M", "phi", "effective_phi")
_PROGRESS_FIELDS = ("cells_total", "cells_resumed", "cells_cached",
                    "cells_run", "replicas_run", "elapsed")
_REPORT_FIELDS = ("cells_total", "cells_skipped", "cells_run", "workers",
                  "chunk_size", "elapsed", "replicas_run", "sink",
                  "cells_cached")


def _plan_to_dict(plan: "CellPlan") -> dict:
    return {name: getattr(plan, name) for name in _PLAN_FIELDS}


def _plan_from_dict(data) -> "CellPlan":
    from .executor import CellPlan

    _check_fields("cell plan", data, _PLAN_FIELDS, required=_PLAN_FIELDS)
    return CellPlan(
        index=int(data["index"]), protocol=str(data["protocol"]),
        m_index=int(data["m_index"]), M=float(data["M"]),
        phi=float(data["phi"]), effective_phi=float(data["effective_phi"]),
    )


def _check_fields(what, data, known, *, required=()):
    if not isinstance(data, dict):
        raise ParameterError(
            f"a {what} must be an object, got {type(data).__name__}"
        )
    unknown = set(data) - set(known)
    if unknown:
        raise ParameterError(
            f"unknown {what} field(s): {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    missing = set(required) - set(data)
    if missing:
        raise ParameterError(
            f"{what} is missing field(s): {sorted(missing)}"
        )


def _check_source(source) -> str:
    if source not in EVENT_SOURCES:
        raise ParameterError(
            f"unknown event source {source!r}; known: {list(EVENT_SOURCES)}"
        )
    return source


def _results_to_wire(results) -> list:
    from .. import io as repro_io

    return [repro_io.to_envelope(res) for res in results]


def _results_from_wire(data) -> tuple[DesResult, ...]:
    from .. import io as repro_io

    if not isinstance(data, list):
        raise ParameterError(
            f"event results must be a list of result envelopes, "
            f"got {type(data).__name__}"
        )
    results = []
    for envelope in data:
        result = repro_io.from_envelope(envelope)
        if not isinstance(result, DesResult):
            raise ParameterError(
                f"event results must decode to DesResult, "
                f"got {type(result).__name__}"
            )
        results.append(result)
    return tuple(results)


def event_to_dict(event: CampaignEvent) -> dict:
    """One event as a versioned, JSON-safe wire dict.

    The exact inverse of :func:`event_from_dict`; replica results are
    carried as :func:`repro.io.to_envelope` envelopes, so non-finite
    floats survive strict JSON round trips.
    """
    head = {"format": EVENT_WIRE_FORMAT, "version": EVENT_WIRE_VERSION,
            "kind": type(event).__name__}
    if isinstance(event, CampaignStarted):
        return {**head,
                "spec": event.spec.to_dict(),
                "plans": [_plan_to_dict(p) for p in event.plans],
                "resumed": [int(i) for i in event.resumed]}
    if isinstance(event, CellStarted):
        return {**head, "plan": _plan_to_dict(event.plan),
                "source": event.source}
    if isinstance(event, (ReplicaBatch, CellFinished)):
        # CellFinished's aggregated cell is derivable state — recomputed
        # on read by make_cell, never transmitted.
        return {**head, "plan": _plan_to_dict(event.plan),
                "source": event.source,
                "results": _results_to_wire(event.results)}
    if isinstance(event, CampaignProgress):
        return {**head, **{
            name: getattr(event, name) for name in _PROGRESS_FIELDS
        }}
    if isinstance(event, CampaignFinished):
        return {**head, "report": {
            name: getattr(event.report, name) for name in _REPORT_FIELDS
        }}
    raise ParameterError(
        f"cannot serialise {type(event).__name__}: not a campaign event "
        "kind the wire format knows"
    )


def _started_from_dict(data) -> CampaignStarted:
    from .spec import CampaignSpec

    _check_fields("CampaignStarted event", data,
                  ("format", "version", "kind", "spec", "plans", "resumed"),
                  required=("spec", "plans"))
    if not isinstance(data["plans"], list):
        raise ParameterError(
            f"CampaignStarted plans must be a list, "
            f"got {type(data['plans']).__name__}"
        )
    return CampaignStarted(
        spec=CampaignSpec.from_dict(data["spec"]),
        plans=tuple(_plan_from_dict(p) for p in data["plans"]),
        resumed=tuple(int(i) for i in data.get("resumed", ())),
    )


def _progress_from_dict(data) -> CampaignProgress:
    _check_fields("CampaignProgress event", data,
                  ("format", "version", "kind") + _PROGRESS_FIELDS,
                  required=_PROGRESS_FIELDS)
    fields = {name: data[name] for name in _PROGRESS_FIELDS}
    fields["elapsed"] = float(fields["elapsed"])
    return CampaignProgress(**{
        name: value if name == "elapsed" else int(value)
        for name, value in fields.items()
    })


def _finished_from_dict(data) -> CampaignFinished:
    from .executor import ExecutionReport

    _check_fields("CampaignFinished event", data,
                  ("format", "version", "kind", "report"),
                  required=("report",))
    report = data["report"]
    _check_fields("execution report", report, _REPORT_FIELDS,
                  required=_REPORT_FIELDS)
    return CampaignFinished(report=ExecutionReport(**report))


def event_from_dict(data: dict) -> CampaignEvent:
    """Inverse of :func:`event_to_dict`, refused-by-name validated.

    Mirrors :meth:`~repro.sim.spec.CampaignSpec.from_dict`: the format
    is checked, the version gated by number, unknown kinds and fields
    refused with actionable messages — a stream written by a newer
    library fails loudly instead of silently mis-loading.
    """
    if not isinstance(data, dict) or data.get("format") != EVENT_WIRE_FORMAT:
        raise ParameterError(
            f"not a {EVENT_WIRE_FORMAT} object (format="
            f"{data.get('format')!r})" if isinstance(data, dict)
            else f"a campaign event must be an object, "
                 f"got {type(data).__name__}"
        )
    version = data.get("version")
    if version not in _WIRE_READ_VERSIONS:
        raise ParameterError(
            f"unsupported campaign-event version {version!r} (this "
            f"library reads versions {sorted(_WIRE_READ_VERSIONS)})"
        )
    kind = data.get("kind")
    if kind == "CampaignStarted":
        return _started_from_dict(data)
    if kind == "CellStarted":
        _check_fields("CellStarted event", data,
                      ("format", "version", "kind", "plan", "source"),
                      required=("plan",))
        return CellStarted(
            plan=_plan_from_dict(data["plan"]),
            source=_check_source(data.get("source", "backend")),
        )
    if kind in ("ReplicaBatch", "CellFinished"):
        _check_fields(f"{kind} event", data,
                      ("format", "version", "kind", "plan", "source",
                       "results"),
                      required=("plan", "results"))
        plan = _plan_from_dict(data["plan"])
        source = _check_source(data.get("source", "backend"))
        results = _results_from_wire(data["results"])
        if kind == "ReplicaBatch":
            return ReplicaBatch(plan=plan, results=results, source=source)
        return CellFinished(
            plan=plan, cell=make_cell(plan, results), results=results,
            source=source,
        )
    if kind == "CampaignProgress":
        return _progress_from_dict(data)
    if kind == "CampaignFinished":
        return _finished_from_dict(data)
    raise ParameterError(
        f"unknown campaign-event kind {kind!r}; known: CampaignStarted, "
        "CellStarted, ReplicaBatch, CellFinished, CampaignProgress, "
        "CampaignFinished"
    )


# ----------------------------------------------------------------------
# Bus
# ----------------------------------------------------------------------
class EventConsumer:
    """A subscriber; subclasses override what they care about.

    ``on_event`` runs on the producing thread under the contract in the
    module docstring (ordered, synchronous, exceptions abort the
    campaign).  ``close`` runs exactly once when the stream terminates.
    """

    def on_event(self, event: CampaignEvent) -> None:
        """Receive one event (default: ignore)."""

    def close(self, error: BaseException | None = None) -> None:
        """The stream terminated; ``error`` is None on clean completion."""


class EventBus:
    """Synchronous, deterministic, in-process fan-out (see contract).

    Subscription order is delivery order; ``publish`` returns only after
    every consumer has returned.  Subscribing after the first publish is
    refused — a late consumer would see a stream that replays to the
    wrong state, the one inconsistency this design exists to prevent.
    """

    def __init__(self) -> None:
        self._consumers: list[EventConsumer] = []
        self._published = False
        self._closed = False

    @property
    def consumers(self) -> tuple[EventConsumer, ...]:
        return tuple(self._consumers)

    def subscribe(self, consumer: EventConsumer) -> EventConsumer:
        if not isinstance(consumer, EventConsumer):
            raise ParameterError(
                f"EventBus.subscribe takes an EventConsumer, got "
                f"{type(consumer).__name__}"
            )
        if self._published:
            raise ParameterError(
                "cannot subscribe once events have been published: a "
                "late consumer would replay to a different state than "
                "the stream it missed; subscribe before iterating the "
                "session"
            )
        self._consumers.append(consumer)
        return consumer

    def publish(self, event: CampaignEvent) -> CampaignEvent:
        self._published = True
        for consumer in self._consumers:
            consumer.on_event(event)
        return event

    def close(self, error: BaseException | None = None) -> None:
        """Close every consumer (once, in subscription order).

        Every consumer's ``close`` runs even when an earlier one raises;
        the first close-time exception is re-raised afterwards (unless
        the stream already failed with ``error``, which the caller is
        propagating — close failures must not mask it).
        """
        if self._closed:
            return
        self._closed = True
        first: BaseException | None = None
        for consumer in self._consumers:
            try:
                consumer.close(error)
            except BaseException as exc:  # noqa: BLE001 - must close all
                if first is None:
                    first = exc
        if first is not None and error is None:
            raise first


# ----------------------------------------------------------------------
# Built-in consumers
# ----------------------------------------------------------------------
class SinkWriter(EventConsumer):
    """Appends finished cells to the results sink.

    ``resume`` cells are skipped — their bytes are already in the file
    the sink recovered; re-appending would duplicate them.
    """

    def __init__(self, sink: ResultSink):
        self.sink = sink

    def on_event(self, event: CampaignEvent) -> None:
        if isinstance(event, CellFinished) and event.source != "resume":
            self.sink.emit(event.plan, list(event.results))


class StorePublisher(EventConsumer):
    """Publishes freshly simulated cells to the results store.

    Only ``backend`` cells publish (``store`` cells are already
    warehoused; ``resume`` cells were published by the execution that
    ran them, and re-publishing would be idempotent but wasted I/O).
    Subscribes *after* :class:`SinkWriter`, so the store can never hold
    a cell the durable results file does not.
    """

    def __init__(self, store, config: CampaignConfig, engine: str):
        from .vectorized import plan_engine

        self.store = store
        self.config = config
        self.engine = engine
        self._plan_engine = plan_engine
        #: Cells this consumer published (observability/tests).
        self.published = 0

    def on_event(self, event: CampaignEvent) -> None:
        if isinstance(event, CellFinished) and event.source == "backend":
            self.store.publish_cell(
                self.config, event.plan, list(event.results),
                engine=self._plan_engine(
                    self.engine, self.config, event.plan
                ),
            )
            self.published += 1


class ControllerReplay(EventConsumer):
    """Validates every cell's replica count against the stopping rule.

    Replays the cell's waste sequence through a fresh controller cursor
    (linear, same as the resume scan) and requires the rule to stop at
    exactly ``len(results)``.  Every legitimate producer satisfies this
    by construction — backends drive the cursor while running, store
    hits are served through it, recovery rejects mismatches — so a
    violation means the stream was assembled from results the
    configuration cannot have produced, and the campaign aborts before
    the next cell is written.
    """

    def __init__(self, controller: ReplicaController):
        self.controller = controller
        #: Cells validated (observability/tests).
        self.validated = 0

    def on_event(self, event: CampaignEvent) -> None:
        if not isinstance(event, CellFinished):
            return
        wastes = [res.waste for res in event.results]
        stop = stop_count(self.controller, wastes)
        if stop != len(wastes):
            rule = self.controller.fingerprint() or {"rule": "fixed"}
            raise ParameterError(
                f"cell {event.plan.index} ({event.plan.protocol} "
                f"M={event.plan.M:g} phi={event.plan.phi:g}, source="
                f"{event.source}) carries {len(wastes)} replicas but the "
                f"replica controller {rule} stops at {stop}: the event "
                "stream does not replay to this campaign's state"
            )
        self.validated += 1


class ProgressTracker(EventConsumer):
    """Thread-safe counters over the stream; snapshot from any thread.

    The one consumer designed to be read *concurrently with* the
    producing loop (a poller thread, the campaign service's progress
    endpoint): updates are O(1) under a lock, and
    :meth:`snapshot` returns a consistent :class:`CampaignProgress` at
    any moment — before the first event (all zeros), mid-stream, or
    after the last.  ``reconcile`` folds in facts only known after the
    loop (a distributed worker's in-backend store hits).
    """

    def __init__(self, cells_total: int = 0):
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self._total = cells_total
        self._resumed = 0
        self._cached = 0
        self._run = 0
        self._replicas = 0

    def on_event(self, event: CampaignEvent) -> None:
        if isinstance(event, CampaignStarted):
            with self._lock:
                self._total = len(event.plans)
        elif isinstance(event, CellFinished):
            with self._lock:
                if event.source == "resume":
                    self._resumed += 1
                elif event.source == "store":
                    self._cached += 1
                else:
                    self._run += 1
                    self._replicas += len(event.results)

    def reconcile(
        self, *, cells_from_store: int = 0, replicas_from_store: int = 0
    ) -> None:
        """Reclassify cells a distributed backend served from the store.

        The emission loop sees a worker's claimed-chunk store hits as
        ``backend`` cells (the worker resolves them inside the backend);
        the backend counts what it served, and this folds those counts
        back into ``cached``/``run``/``replicas`` after the loop.
        """
        with self._lock:
            self._cached += cells_from_store
            self._run -= cells_from_store
            self._replicas -= replicas_from_store

    def snapshot(self) -> CampaignProgress:
        with self._lock:
            return CampaignProgress(
                cells_total=self._total,
                cells_resumed=self._resumed,
                cells_cached=self._cached,
                cells_run=self._run,
                replicas_run=self._replicas,
                elapsed=time.perf_counter() - self._start,
            )


class CellCallback(EventConsumer):
    """Adapts the historical ``on_cell=`` callback: one call per fresh
    cell (``backend`` or ``store``), in emission order — recovered cells
    were already reported by the execution that ran them."""

    def __init__(self, callback: Callable[[CampaignCell], None]):
        self.callback = callback

    def on_event(self, event: CampaignEvent) -> None:
        if isinstance(event, CellFinished) and event.source != "resume":
            self.callback(event.cell)
