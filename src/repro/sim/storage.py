"""Local storage model: derive the local checkpoint time ``δ``.

Table I's Base scenario states "checkpointing a memory of 512 MB at the
speed of SSDs is about 2 s"; Exa assumes 500 Gb/s/node of local storage
bus.  This module captures that derivation so scenario variants can be
computed from device characteristics.

A :class:`StorageDevice` has a sequential write bandwidth, an optional
per-operation setup latency, and a ``write_amplification`` factor
(filesystem/journaling overhead ≥ 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["StorageDevice", "local_checkpoint_time", "SSD_2013", "NVME_EXA"]


@dataclass(frozen=True)
class StorageDevice:
    """A local checkpoint target (SSD, NVMe, ramdisk...)."""

    name: str
    write_bandwidth: float  #: bytes/s sustained sequential write
    latency: float = 0.0  #: seconds of per-checkpoint setup
    write_amplification: float = 1.0  #: effective bytes written per byte

    def __post_init__(self) -> None:
        if self.write_bandwidth <= 0:
            raise ParameterError("write_bandwidth must be > 0")
        if self.latency < 0:
            raise ParameterError("latency must be >= 0")
        if self.write_amplification < 1.0:
            raise ParameterError("write_amplification must be >= 1")

    def write_time(self, nbytes: float) -> float:
        """Blocking time to persist ``nbytes`` locally."""
        if nbytes < 0:
            raise ParameterError("nbytes must be >= 0")
        return self.latency + nbytes * self.write_amplification / self.write_bandwidth


def local_checkpoint_time(checkpoint_bytes: float, device: StorageDevice) -> float:
    """The paper's ``δ``: one image persisted to the local device."""
    return device.write_time(checkpoint_bytes)


#: 2013-era SATA SSD: 512 MB in ≈2 s (Base scenario's δ).
SSD_2013 = StorageDevice(name="sata-ssd-2013", write_bandwidth=256e6)

#: Exa projection: 500 Gb/s of local storage bus (Table I discussion).
NVME_EXA = StorageDevice(name="exa-local-storage", write_bandwidth=500e9 / 8)
