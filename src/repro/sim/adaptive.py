"""Adaptive replica control: stop a grid cell once its CI is tight.

A campaign spends its budget replica by replica, but cells converge at
very different rates: a low-variance cell (large MTBF, few failures) may
pin its mean waste down after a handful of runs while a churn-dominated
cell needs every replica it can get.  A :class:`ReplicaController` decides
*per cell* how many replicas actually run:

* :class:`FixedReplicas` — always run the configured count; the default,
  and the bit-identical-to-serial path.
* :class:`AdaptiveCI` — run replicas in batches and stop as soon as the
  Student-t confidence-interval half-width of the mean waste falls below
  a tolerance (never before ``min_replicas``, never past ``max_replicas``).
* :class:`WilsonSuccessRate` — batch like :class:`AdaptiveCI`, but stop
  once the *Wilson interval width of the success rate* is small enough:
  the right rule when a campaign estimates fatal-failure probabilities
  (the paper's risk analysis) rather than mean waste — a cell whose runs
  all succeed (or all die) pins its proportion down long before its waste
  CI converges.

On the event pipeline the controller appears twice: backends drive its
incremental cursor while running cells, and the
:class:`~repro.sim.events.ControllerReplay` consumer replays every
finished cell's waste sequence through a fresh cursor, refusing any
stream whose replica counts disagree with the stopping rule.

Controllers are part of the campaign's identity: each serialises to a
JSON ``fingerprint()`` stored in manifests and
:class:`~repro.sim.spec.CampaignSpec` objects, and
:func:`controller_from_dict` inverts it.

Determinism
-----------
Replica seeds are a pure function of the campaign seed and the grid
coordinates (:mod:`repro.sim.backends`), so the waste samples a controller
sees — and therefore its stopping decision — depend only on the
configuration, never on execution order or worker count.  That is what
makes adaptive campaigns resumable: :func:`stop_count` replays the
decision sequence over recorded samples, letting a resume scan tell a
finished cell from an interrupted one without re-simulating anything.

Both the live execution path (:func:`repro.sim.backends.run_cell`) and
the replay (:func:`stop_count`) drive the rule through the same
:class:`StopCursor`, an incremental one-sample-at-a-time evaluator, so
the two paths agree bit-for-bit by construction *and* replaying a cell
with thousands of recorded replicas costs O(n) instead of the O(n²) a
naive prefix-by-prefix :meth:`~ReplicaController.should_stop` replay
would (``ci_half_width`` over every prefix).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError
from .results import ci_half_width, wilson_interval

__all__ = [
    "ReplicaController",
    "FixedReplicas",
    "AdaptiveCI",
    "WilsonSuccessRate",
    "StopCursor",
    "ci_half_width",
    "stop_count",
    "controller_from_dict",
]


class StopCursor:
    """Incremental evaluator of a stopping rule: one ``push`` per replica.

    The default implementation buffers samples and delegates to
    :meth:`ReplicaController.should_stop`, so any third-party controller
    keeps working (at the quadratic replay cost of its prefix rule).
    Built-in controllers return O(1)-per-push cursors from
    :meth:`ReplicaController.cursor`.
    """

    def __init__(self, controller: "ReplicaController"):
        self._controller = controller
        self._wastes: list[float] = []

    def push(self, waste: float) -> bool:
        """Feed the next replica's waste; ``True`` = stop the cell here."""
        self._wastes.append(waste)
        return self._controller.should_stop(self._wastes)


class ReplicaController(ABC):
    """Per-cell stopping rule over the replica waste samples seen so far.

    The executor runs a cell's replicas in seed order (replica 0, 1, ...)
    and asks the rule after each one whether to stop; the first ``True``
    ends the cell.  :meth:`should_stop` is the declarative form (a pure
    function of the full sample prefix); :meth:`cursor` is the
    incremental form both the live path and resume replays actually
    drive, and the two must decide identically.  Implementations must be
    pure functions of the sample sequence so parallel and resumed
    executions reach identical decisions, and must be picklable (they
    cross the process-pool boundary).
    """

    #: Hard ceiling on replicas per cell (the campaign's ``replicas``).
    max_replicas: int

    @abstractmethod
    def should_stop(self, wastes: Sequence[float]) -> bool:
        """Stop after the ``len(wastes)`` replicas whose wastes these are?"""

    def cursor(self) -> StopCursor:
        """A fresh incremental evaluator of this rule (one cell's worth).

        Override to make replays linear; the default buffers and replays
        :meth:`should_stop` over growing prefixes.
        """
        return StopCursor(self)

    def fingerprint(self) -> dict | None:
        """JSON-safe identity for campaign manifests (``None`` = the
        default fixed-count rule, so pre-adaptive manifests stay valid)."""
        return None


@dataclass(frozen=True)
class FixedReplicas(ReplicaController):
    """Run exactly ``max_replicas`` replicas — the historical behaviour."""

    max_replicas: int

    def __post_init__(self) -> None:
        if self.max_replicas < 1:
            raise ParameterError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )

    def should_stop(self, wastes: Sequence[float]) -> bool:
        return len(wastes) >= self.max_replicas

    def cursor(self) -> StopCursor:
        return _FixedCursor(self.max_replicas)


class _FixedCursor(StopCursor):
    """O(1)-per-push cursor for the fixed-count rule."""

    def __init__(self, max_replicas: int):
        self._max = max_replicas
        self._n = 0

    def push(self, waste: float) -> bool:
        self._n += 1
        return self._n >= self._max


@dataclass(frozen=True)
class AdaptiveCI(ReplicaController):
    """Stop once the mean-waste CI half-width is at most ``tolerance``.

    The check runs at batch boundaries only (``min_replicas``,
    ``min_replicas + batch``, ...) so replicas are committed in chunks —
    checking after every single replica would make the early decisions
    hypersensitive to the first few samples.
    """

    max_replicas: int
    #: Absolute half-width target on the mean waste (waste lives in [0, 1]).
    tolerance: float
    min_replicas: int = 3
    batch: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.max_replicas < 1:
            raise ParameterError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )
        if not math.isfinite(self.tolerance) or self.tolerance <= 0:
            raise ParameterError(
                f"tolerance must be finite and > 0, got {self.tolerance!r}"
            )
        if self.min_replicas < 2:
            raise ParameterError(
                f"min_replicas must be >= 2 (one sample has no CI), "
                f"got {self.min_replicas}"
            )
        if self.batch < 1:
            raise ParameterError(f"batch must be >= 1, got {self.batch}")
        if not 0 < self.confidence < 1:
            raise ParameterError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )

    def should_stop(self, wastes: Sequence[float]) -> bool:
        n = len(wastes)
        if n >= self.max_replicas:
            return True
        if n < self.min_replicas or (n - self.min_replicas) % self.batch:
            return False
        return ci_half_width(wastes, self.confidence) <= self.tolerance

    def cursor(self) -> StopCursor:
        return _AdaptiveCursor(self)

    def fingerprint(self) -> dict:
        return {
            "kind": "AdaptiveCI",
            "max_replicas": int(self.max_replicas),
            "tolerance": float(self.tolerance),
            "min_replicas": int(self.min_replicas),
            "batch": int(self.batch),
            "confidence": float(self.confidence),
        }


class _AdaptiveCursor(StopCursor):
    """O(1)-per-push cursor for :class:`AdaptiveCI` (Welford statistics).

    Maintains the running count/mean/M2 of the *finite* samples, so the
    CI half-width at a batch boundary costs one ``t.ppf`` instead of a
    full pass over the prefix — replaying a cell with n recorded replicas
    is O(n) total.  The half-width formula is the same as
    :func:`~repro.sim.results.ci_half_width` (Student-t, ``ddof=1``,
    finite samples only, ``inf`` below two finite samples, ``0`` at zero
    variance); the accumulation order differs from numpy's pairwise
    summation by at most a few ulps, which is irrelevant in practice and
    *cannot* desynchronise live runs from resumes because both drive this
    same cursor.
    """

    def __init__(self, rule: AdaptiveCI):
        self._rule = rule
        self._n = 0          # all samples, NaNs included (len(wastes))
        self._k = 0          # finite samples
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, waste: float) -> bool:
        self._n += 1
        if math.isfinite(waste):
            self._k += 1
            delta = waste - self._mean
            self._mean += delta / self._k
            self._m2 += delta * (waste - self._mean)
        rule = self._rule
        if self._n >= rule.max_replicas:
            return True
        if (self._n < rule.min_replicas
                or (self._n - rule.min_replicas) % rule.batch):
            return False
        return self._half_width() <= rule.tolerance

    def _half_width(self) -> float:
        from scipy import stats as sps

        if self._k < 2:
            return float("inf")
        variance = self._m2 / (self._k - 1)
        if variance <= 0.0:
            return 0.0
        return float(
            sps.t.ppf(0.5 + self._rule.confidence / 2.0, df=self._k - 1)
            * math.sqrt(variance) / math.sqrt(self._k)
        )


@dataclass(frozen=True)
class WilsonSuccessRate(ReplicaController):
    """Stop once the Wilson interval width of the success rate is small.

    The controller only sees waste samples, but a replica's waste is
    finite **iff** the run completed (:attr:`DesResult.waste` is NaN for
    fatal/timeout runs), so the success count is recoverable from the
    samples alone — which keeps resume replays pure functions of the
    recorded wastes, exactly like the other rules.

    ``tolerance`` bounds the *full* interval width (``hi − lo``, a value
    in ``(0, 1)``).  Checks run at the same batch boundaries as
    :class:`AdaptiveCI` so the early decisions are not hypersensitive to
    the first couple of replicas.
    """

    max_replicas: int
    #: Maximum Wilson interval width (hi − lo) of the success rate.
    tolerance: float
    min_replicas: int = 3
    batch: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.max_replicas < 1:
            raise ParameterError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )
        if not math.isfinite(self.tolerance) or not 0 < self.tolerance < 1:
            raise ParameterError(
                f"tolerance must lie in (0, 1) — it bounds the width of a "
                f"proportion interval — got {self.tolerance!r}"
            )
        if self.min_replicas < 1:
            raise ParameterError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.batch < 1:
            raise ParameterError(f"batch must be >= 1, got {self.batch}")
        if not 0 < self.confidence < 1:
            raise ParameterError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )

    def should_stop(self, wastes: Sequence[float]) -> bool:
        n = len(wastes)
        if n >= self.max_replicas:
            return True
        if n < self.min_replicas or (n - self.min_replicas) % self.batch:
            return False
        successes = sum(1 for w in wastes if math.isfinite(w))
        lo, hi = wilson_interval(successes, n, self.confidence)
        return hi - lo <= self.tolerance

    def cursor(self) -> StopCursor:
        return _WilsonCursor(self)

    def fingerprint(self) -> dict:
        return {
            "kind": "WilsonSuccessRate",
            "max_replicas": int(self.max_replicas),
            "tolerance": float(self.tolerance),
            "min_replicas": int(self.min_replicas),
            "batch": int(self.batch),
            "confidence": float(self.confidence),
        }


class _WilsonCursor(StopCursor):
    """O(1)-per-push cursor for :class:`WilsonSuccessRate` (two counters)."""

    def __init__(self, rule: WilsonSuccessRate):
        self._rule = rule
        self._n = 0
        self._successes = 0

    def push(self, waste: float) -> bool:
        self._n += 1
        if math.isfinite(waste):
            self._successes += 1
        rule = self._rule
        if self._n >= rule.max_replicas:
            return True
        if (self._n < rule.min_replicas
                or (self._n - rule.min_replicas) % rule.batch):
            return False
        lo, hi = wilson_interval(self._successes, self._n, rule.confidence)
        return hi - lo <= rule.tolerance


def controller_from_dict(data: dict | None) -> ReplicaController | None:
    """Rebuild a controller from its :meth:`ReplicaController.fingerprint`.

    ``None`` — the fingerprint of the default fixed-count rule — returns
    ``None``: the caller owns the replica budget and builds the
    :class:`FixedReplicas` itself.  Decodes the built-in adaptive rules;
    anything else is refused by name, so a spec or queue manifest written
    by a newer library fails loudly instead of silently running
    fixed-count.
    """
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ParameterError(
            f"a replica-controller spec must be an object, "
            f"got {type(data).__name__}"
        )
    kind = data.get("kind")
    kinds = {"AdaptiveCI": AdaptiveCI, "WilsonSuccessRate": WilsonSuccessRate}
    if kind not in kinds:
        raise ParameterError(
            f"unknown replica controller {kind!r}; this library knows "
            f"{sorted(kinds)} (and the fixed-count default, spelled null)"
        )
    try:
        return kinds[kind](
            max_replicas=int(data["max_replicas"]),
            tolerance=float(data["tolerance"]),
            min_replicas=int(data["min_replicas"]),
            batch=int(data["batch"]),
            confidence=float(data["confidence"]),
        )
    except KeyError as exc:
        raise ParameterError(
            f"replica-controller spec of kind {kind!r} is missing "
            f"field {exc}"
        ) from exc


def stop_count(
    controller: ReplicaController, wastes: Sequence[float]
) -> int | None:
    """Replay the controller over recorded samples: where would it stop?

    Returns the replica count at which ``controller`` first says stop, or
    ``None`` if it would keep running past ``len(wastes)``.  Resume scans
    use this to classify a recovered cell: ``stop_count == len(wastes)``
    means the cell finished exactly there; fewer recorded samples mean an
    interrupted cell; *more* recorded samples than the rule would ever run
    mean the file was written under a different configuration.

    The replay is incremental (:meth:`ReplicaController.cursor`): linear
    in ``len(wastes)`` for the built-in controllers, so recovering a
    framed file with thousands of replicas per cell does not go
    quadratic in ``ci_half_width`` calls.
    """
    cursor = controller.cursor()
    for n, waste in enumerate(wastes, 1):
        if cursor.push(waste):
            return n
    return None
