"""Adaptive replica control: stop a grid cell once its CI is tight.

A campaign spends its budget replica by replica, but cells converge at
very different rates: a low-variance cell (large MTBF, few failures) may
pin its mean waste down after a handful of runs while a churn-dominated
cell needs every replica it can get.  A :class:`ReplicaController` decides
*per cell* how many replicas actually run:

* :class:`FixedReplicas` — always run the configured count; the default,
  and the bit-identical-to-serial path.
* :class:`AdaptiveCI` — run replicas in batches and stop as soon as the
  Student-t confidence-interval half-width of the mean waste falls below
  a tolerance (never before ``min_replicas``, never past ``max_replicas``).

Determinism
-----------
Replica seeds are a pure function of the campaign seed and the grid
coordinates (:mod:`repro.sim.backends`), so the waste samples a controller
sees — and therefore its stopping decision — depend only on the
configuration, never on execution order or worker count.  That is what
makes adaptive campaigns resumable: :func:`stop_count` replays the
decision sequence over recorded samples, letting a resume scan tell a
finished cell from an interrupted one without re-simulating anything.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError
from .results import ci_half_width

__all__ = [
    "ReplicaController",
    "FixedReplicas",
    "AdaptiveCI",
    "ci_half_width",
    "stop_count",
]


class ReplicaController(ABC):
    """Per-cell stopping rule over the replica waste samples seen so far.

    The executor runs a cell's replicas in seed order (replica 0, 1, ...)
    and calls :meth:`should_stop` after each one with every waste sample
    collected so far; the first ``True`` ends the cell.  Implementations
    must be pure functions of the sample sequence so parallel and resumed
    executions reach identical decisions, and must be picklable (they
    cross the process-pool boundary).
    """

    #: Hard ceiling on replicas per cell (the campaign's ``replicas``).
    max_replicas: int

    @abstractmethod
    def should_stop(self, wastes: Sequence[float]) -> bool:
        """Stop after the ``len(wastes)`` replicas whose wastes these are?"""

    def fingerprint(self) -> dict | None:
        """JSON-safe identity for campaign manifests (``None`` = the
        default fixed-count rule, so pre-adaptive manifests stay valid)."""
        return None


@dataclass(frozen=True)
class FixedReplicas(ReplicaController):
    """Run exactly ``max_replicas`` replicas — the historical behaviour."""

    max_replicas: int

    def __post_init__(self) -> None:
        if self.max_replicas < 1:
            raise ParameterError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )

    def should_stop(self, wastes: Sequence[float]) -> bool:
        return len(wastes) >= self.max_replicas


@dataclass(frozen=True)
class AdaptiveCI(ReplicaController):
    """Stop once the mean-waste CI half-width is at most ``tolerance``.

    The check runs at batch boundaries only (``min_replicas``,
    ``min_replicas + batch``, ...) so replicas are committed in chunks —
    checking after every single replica would make the early decisions
    hypersensitive to the first few samples.
    """

    max_replicas: int
    #: Absolute half-width target on the mean waste (waste lives in [0, 1]).
    tolerance: float
    min_replicas: int = 3
    batch: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.max_replicas < 1:
            raise ParameterError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )
        if not math.isfinite(self.tolerance) or self.tolerance <= 0:
            raise ParameterError(
                f"tolerance must be finite and > 0, got {self.tolerance!r}"
            )
        if self.min_replicas < 2:
            raise ParameterError(
                f"min_replicas must be >= 2 (one sample has no CI), "
                f"got {self.min_replicas}"
            )
        if self.batch < 1:
            raise ParameterError(f"batch must be >= 1, got {self.batch}")
        if not 0 < self.confidence < 1:
            raise ParameterError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )

    def should_stop(self, wastes: Sequence[float]) -> bool:
        n = len(wastes)
        if n >= self.max_replicas:
            return True
        if n < self.min_replicas or (n - self.min_replicas) % self.batch:
            return False
        return ci_half_width(wastes, self.confidence) <= self.tolerance

    def fingerprint(self) -> dict:
        return {
            "kind": "AdaptiveCI",
            "max_replicas": int(self.max_replicas),
            "tolerance": float(self.tolerance),
            "min_replicas": int(self.min_replicas),
            "batch": int(self.batch),
            "confidence": float(self.confidence),
        }


def stop_count(
    controller: ReplicaController, wastes: Sequence[float]
) -> int | None:
    """Replay the controller over recorded samples: where would it stop?

    Returns the replica count at which ``controller`` first says stop, or
    ``None`` if it would keep running past ``len(wastes)``.  Resume scans
    use this to classify a recovered cell: ``stop_count == len(wastes)``
    means the cell finished exactly there; fewer recorded samples mean an
    interrupted cell; *more* recorded samples than the rule would ever run
    mean the file was written under a different configuration.
    """
    wastes = list(wastes)
    for n in range(1, len(wastes) + 1):
        if controller.should_stop(wastes[:n]):
            return n
    return None
