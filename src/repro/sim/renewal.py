"""Fast renewal-process Monte Carlo of the waste model.

Validates the expected-lost-time formulas (Eqs. 6–8, 13–14) and the waste
expressions in seconds instead of the minutes a full event simulation
takes, by exploiting the protocols' renewal structure:

* In *productive time* (failure handling excised), the periodic pattern
  runs uninterrupted, so the pattern offset at time ``s`` is simply
  ``s mod P``.
* Failures are Poisson with rate ``1/M``; conditioned on their count over
  a productive-time horizon ``H``, their positions are iid uniform — this
  is precisely the paper's "failures strike uniformly across the period"
  argument.
* Each failure at pattern offset ``x`` inserts a block of
  ``recovery_stall + RE(phase(x), offset(x))`` wall seconds, after which
  the platform state is exactly as at the failure instant.

Hence ``T = H + Σ blocks`` and ``work = H·W/P``, all vectorised.  The mean
block duration estimates ``F`` directly, so the test suite can assert
``F̂ ≈ A + P/2`` with a proper confidence interval.

Bias note: this estimator thins failures that would arrive during blocks,
giving waste ``1 − (1−c/P)/(1+F/M)``, which agrees with the paper's
``1 − (1−c/P)(1−F/M)`` to first order — the same order at which the
paper's own derivation operates.  The event simulator (no thinning) covers
the exact semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import Parameters
from ..core.period import optimal_period
from ..core.protocols import ProtocolSpec, get_protocol
from ..errors import InfeasibleModelError, ParameterError
from .results import MonteCarloSummary
from .rng import RngFactory

__all__ = [
    "RenewalConfig",
    "RenewalResult",
    "run_renewal",
    "run_renewal_batch",
    "mean_block_samples",
]


@dataclass(frozen=True)
class RenewalConfig:
    """Configuration of a renewal Monte Carlo estimate."""

    protocol: ProtocolSpec | str
    params: Parameters
    phi: float = 0.0
    period: float | None = None  #: None = model-optimal period
    n_periods: int = 10_000  #: productive-time horizon in periods
    seed: int | None = 2024

    def __post_init__(self) -> None:
        if self.n_periods < 1:
            raise ParameterError("n_periods must be >= 1")


@dataclass(frozen=True)
class RenewalResult:
    """One renewal Monte Carlo replica."""

    protocol: str
    period: float
    phi: float
    horizon: float  #: productive time simulated
    n_failures: int
    total_time: float  #: wall time = horizon + blocks
    work_done: float
    mean_block: float  #: empirical F̂ (nan if no failures)
    waste: float
    #: per-phase failure counts (validates the uniform-strike weights)
    phase_hits: tuple[int, int, int] = (0, 0, 0)
    meta: dict = field(default_factory=dict)


def run_renewal(config: RenewalConfig) -> RenewalResult:
    """One vectorised renewal replica."""
    spec = get_protocol(config.protocol)
    params = config.params
    phi = config.phi
    period = config.period
    if period is None:
        period = optimal_period(spec, params, phi)
        if not np.isfinite(period):
            raise InfeasibleModelError(
                f"{spec.key}: no feasible period at M={params.M:g}s"
            )
    period = float(period)
    p_min = float(np.asarray(spec.min_period(params, phi)))
    if period < p_min - 1e-9:
        raise ParameterError(f"period {period} below minimum {p_min}")

    lengths = [float(np.asarray(x)) for x in spec.phase_lengths(params, phi, period)]
    bounds = np.cumsum([0.0] + lengths)  # phase boundaries within the period
    work_per_period = float(np.asarray(spec.work_per_period(params, phi, period)))
    stall = float(np.asarray(spec.recovery_constant(params, phi)))

    rng = RngFactory(config.seed).replica(0)
    horizon = config.n_periods * period
    n_fail = int(rng.poisson(horizon / params.M))
    offsets = np.sort(rng.uniform(0.0, horizon, size=n_fail)) % period

    blocks = np.zeros(n_fail)
    phase_hits = [0, 0, 0]
    for phase in range(3):
        in_phase = (offsets >= bounds[phase]) & (offsets < bounds[phase + 1])
        phase_hits[phase] = int(in_phase.sum())
        if not np.any(in_phase):
            continue
        local = offsets[in_phase] - bounds[phase]
        re = np.asarray(
            spec.re_time(params, phi, period, phase, local), dtype=float
        )
        blocks[in_phase] = stall + re

    total_time = horizon + float(blocks.sum())
    work_done = config.n_periods * work_per_period
    waste = 1.0 - work_done / total_time
    return RenewalResult(
        protocol=spec.key,
        period=period,
        phi=float(np.asarray(spec.effective_phi(params, phi))),
        horizon=horizon,
        n_failures=n_fail,
        total_time=total_time,
        work_done=work_done,
        mean_block=float(blocks.mean()) if n_fail else float("nan"),
        waste=waste,
        phase_hits=tuple(phase_hits),
        meta={"M": params.M, "seed": config.seed},
    )


def mean_block_samples(results: "list[RenewalResult]") -> list[float]:
    """The finite per-replica F̂ samples of a batch.

    ``mean_block`` is NaN for a replica that saw no failures (an empty
    mean has no value, and any sentinel would bias F̂ low), and a single
    NaN poisons ``np.mean``/CI aggregation over replicas.  Every
    aggregation over ``mean_block`` must therefore go through this
    helper, which drops the no-failure replicas; callers decide what an
    all-empty batch means (usually "too few failures to estimate F —
    report NaN, don't assert").
    """
    return [
        float(r.mean_block) for r in results if np.isfinite(r.mean_block)
    ]


def run_renewal_batch(
    config: RenewalConfig, replicas: int, confidence: float = 0.95
) -> tuple[list[RenewalResult], MonteCarloSummary]:
    """Independent replicas plus a CI summary of the waste estimates."""
    if replicas < 1:
        raise ParameterError("replicas must be >= 1")
    base_seed = config.seed if config.seed is not None else 0
    results = []
    for r in range(replicas):
        cfg = RenewalConfig(
            protocol=config.protocol,
            params=config.params,
            phi=config.phi,
            period=config.period,
            n_periods=config.n_periods,
            seed=base_seed + 7919 * r,
        )
        results.append(run_renewal(cfg))
    summary = MonteCarloSummary.from_samples(
        [r.waste for r in results],
        confidence=confidence,
        meta={"protocol": results[0].protocol, "period": results[0].period},
    )
    return results, summary
