"""Simulation substrate: event-level and Monte Carlo checkpointing simulators.

Three tiers, by increasing speed and decreasing granularity:

``repro.sim.des``
    Full discrete-event simulation: per-node failure processes, buddy
    groups, phase-by-phase protocol state machines, risk windows and fatal
    failures.  The reference implementation of the protocols' semantics.
``repro.sim.renewal``
    Fast period-level Monte Carlo of the waste renewal process; validates
    the expected-lost-time formulas (Eqs. 6–8, 13–14) in seconds.
``repro.sim.riskmc``
    Vectorised Monte Carlo of pair/triple fatal failures; validates the
    success-probability formulas (Eqs. 11, 16).

Supporting modules: ``engine`` (event queue), ``rng`` (reproducible
streams), ``distributions`` (failure laws), ``failures`` (injection),
``cluster``/``topology`` (nodes and buddy groups), ``network``/``storage``
(parameter derivation from hardware characteristics), ``application``
(workload model), ``results`` (result containers and statistics),
``campaign``/``executor`` (protocol × M × φ sweep grids and their
parallel, resumable execution across worker processes).
"""

from .distributions import (
    Deterministic,
    Empirical,
    Exponential,
    FailureDistribution,
    Gamma,
    LogNormal,
    Weibull,
)
from .rng import RngFactory
from .results import DesResult, MonteCarloSummary
from .des import DesConfig, run_des, run_des_batch
from .renewal import RenewalConfig, run_renewal, run_renewal_batch
from .riskmc import RiskMcConfig, run_risk_mc
from .campaign import CampaignCell, CampaignConfig, run_campaign
from .executor import (
    CampaignExecution,
    ExecutionReport,
    execute_campaign,
    run_campaign_parallel,
)

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Gamma",
    "Deterministic",
    "Empirical",
    "RngFactory",
    "DesResult",
    "MonteCarloSummary",
    "DesConfig",
    "run_des",
    "run_des_batch",
    "RenewalConfig",
    "run_renewal",
    "run_renewal_batch",
    "RiskMcConfig",
    "run_risk_mc",
    "CampaignConfig",
    "CampaignCell",
    "run_campaign",
    "CampaignExecution",
    "ExecutionReport",
    "execute_campaign",
    "run_campaign_parallel",
]
