"""Simulation substrate: event-level and Monte Carlo checkpointing simulators.

Three tiers, by increasing speed and decreasing granularity:

``repro.sim.des``
    Full discrete-event simulation: per-node failure processes, buddy
    groups, phase-by-phase protocol state machines, risk windows and fatal
    failures.  The reference implementation of the protocols' semantics.
``repro.sim.renewal``
    Fast period-level Monte Carlo of the waste renewal process; validates
    the expected-lost-time formulas (Eqs. 6–8, 13–14) in seconds.
``repro.sim.riskmc``
    Vectorised Monte Carlo of pair/triple fatal failures; validates the
    success-probability formulas (Eqs. 11, 16).

Campaign architecture
---------------------
Protocol × M × φ sweeps are *described* by one serializable value and
*executed* by a layered subsystem, each layer replaceable without
touching the others:

``spec``  (the description, and the public API)
    :class:`~repro.sim.spec.CampaignSpec` = grid ⊕
    :class:`~repro.sim.spec.ExecutionPolicy` — frozen, versioned,
    JSON-round-trippable; manifests and queue directories store its
    fingerprint verbatim, so drift detection is spec inequality.
    :class:`~repro.sim.spec.Campaign` is the façade:
    ``Campaign(spec).run(path)/resume(path)/report()/merge(out)``.
``campaign``  (the grid)
    :class:`~repro.sim.campaign.CampaignConfig` and validation; the
    deprecated pre-spec ``run_campaign`` shim.
``executor``  (orchestration: the event producer)
    :class:`~repro.sim.executor.CampaignSession` plans the grid into
    deterministic cell chunks, recovers finished cells on resume
    (manifest + per-record identity checks), then *produces* the typed
    event stream of ``events`` — every cell (recovered, store-served or
    freshly simulated) as a ``CellStarted``/``ReplicaBatch``/
    ``CellFinished`` triple — and aggregates
    :class:`~repro.sim.campaign.CampaignCell` summaries.
    :func:`~repro.sim.executor.execute_spec` is the drain-it-all
    wrapper.
``events``  (the pipeline: bus + consumers)
    Typed events on one synchronous in-process
    :class:`~repro.sim.events.EventBus` with deterministic
    subscription-order fan-out.  Persistence and observation are
    independent consumers — :class:`~repro.sim.events.SinkWriter`,
    :class:`~repro.sim.events.StorePublisher`,
    :class:`~repro.sim.events.ControllerReplay`,
    :class:`~repro.sim.events.ProgressTracker` — so a service or
    metrics layer subscribes without owning (or perturbing) the
    execution loop.
``backends``  (where cells run: the producers' engine)
    :class:`~repro.sim.backends.CampaignBackend` implementations —
    in-process :class:`~repro.sim.backends.SerialBackend`, multi-process
    :class:`~repro.sim.backends.ProcessPoolBackend` — yield chunk results
    in *completion* order.  All seeds derive from grid coordinates, so any
    backend produces identical results; the multi-machine work-stealing
    backend (``distributed``) builds on the same contract.
``sinks``  (how results persist)
    :class:`~repro.sim.sinks.OrderedJsonlSink` keeps the results file a
    byte-exact prefix of the serial file; the out-of-order
    :class:`~repro.sim.sinks.FramedJsonlSink` appends each cell the
    moment it completes (per-record cell/replica/sequence framing —
    no head-of-line blocking) and still resumes from arbitrary
    truncation.  Both are driven by the ``events`` sink-writer consumer.
``repro.store``  (what never re-runs)
    The content-addressed results warehouse: the executor consults it
    per cell before dispatching to any backend and publishes fresh
    cells after their sink append, so identical (and overlapping)
    campaigns stop paying simulation cost — a warm re-run is
    byte-identical with zero simulations.  Volatile policy: the store
    can never change output bytes.
``adaptive``  (how many replicas)
    :class:`~repro.sim.adaptive.ReplicaController` stopping rules:
    :class:`~repro.sim.adaptive.FixedReplicas` (default, bit-identical to
    serial), :class:`~repro.sim.adaptive.AdaptiveCI` (stop once the
    mean-waste CI half-width meets a tolerance) or
    :class:`~repro.sim.adaptive.WilsonSuccessRate` (stop once the
    success-rate Wilson interval is narrow) — deterministic given the
    seed schedule, so adaptive campaigns resume exactly.

Supporting modules: ``engine`` (event queue), ``rng`` (reproducible
streams), ``distributions`` (failure laws), ``failures`` (injection),
``cluster``/``topology`` (nodes and buddy groups), ``network``/``storage``
(parameter derivation from hardware characteristics), ``application``
(workload model), ``results`` (result containers and statistics).
"""

from .distributions import (
    Deterministic,
    Empirical,
    Exponential,
    FailureDistribution,
    Gamma,
    LogNormal,
    Mixture,
    Weibull,
)
from .rng import RngFactory
from .results import DesResult, MonteCarloSummary
from .des import DesConfig, run_des, run_des_batch
from .renewal import RenewalConfig, run_renewal, run_renewal_batch
from .riskmc import RiskMcConfig, run_risk_mc
from .campaign import CampaignCell, CampaignConfig, run_campaign
from .adaptive import (
    AdaptiveCI,
    FixedReplicas,
    ReplicaController,
    WilsonSuccessRate,
)
from .backends import CampaignBackend, ProcessPoolBackend, SerialBackend
from .sinks import FramedJsonlSink, OrderedJsonlSink, ResultSink
from .spec import Campaign, CampaignSpec, ExecutionPolicy
from .events import (
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    CellFinished,
    CellStarted,
    EventBus,
    EventConsumer,
    ProgressTracker,
    ReplicaBatch,
)
from .executor import (
    CampaignExecution,
    CampaignSession,
    ExecutionReport,
    execute_campaign,
    execute_spec,
    run_campaign_parallel,
)

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Gamma",
    "Deterministic",
    "Empirical",
    "Mixture",
    "RngFactory",
    "DesResult",
    "MonteCarloSummary",
    "DesConfig",
    "run_des",
    "run_des_batch",
    "RenewalConfig",
    "run_renewal",
    "run_renewal_batch",
    "RiskMcConfig",
    "run_risk_mc",
    "CampaignConfig",
    "CampaignCell",
    "run_campaign",
    "CampaignSpec",
    "ExecutionPolicy",
    "Campaign",
    "ReplicaController",
    "FixedReplicas",
    "AdaptiveCI",
    "WilsonSuccessRate",
    "CampaignBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ResultSink",
    "OrderedJsonlSink",
    "FramedJsonlSink",
    "CampaignExecution",
    "CampaignSession",
    "ExecutionReport",
    "execute_campaign",
    "execute_spec",
    "run_campaign_parallel",
    "EventBus",
    "EventConsumer",
    "CampaignStarted",
    "CellStarted",
    "ReplicaBatch",
    "CellFinished",
    "CampaignProgress",
    "CampaignFinished",
    "ProgressTracker",
]
