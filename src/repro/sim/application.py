"""Application/workload model for the simulators.

The paper's application abstraction: progress at unit speed when
unimpeded, slowed by factor ``1 − φ/θ`` during overlapped exchanges, and
stopped during blocking phases.  :class:`Application` tracks committed
(snapshotted) versus volatile progress so rollbacks are explicit and
auditable.

``work`` is measured in seconds-of-compute (work units ≡ time units at
unit speed, as in §II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ParameterError, SimulationError

__all__ = ["Application"]


@dataclass
class Application:
    """Work tracking with snapshot/rollback semantics.

    Parameters
    ----------
    work_target:
        Total work units to complete (``T_base`` of Eq. 1).
    """

    work_target: float
    #: Work completed since t=0, including uncommitted progress.
    work_done: float = 0.0
    #: Work level captured by the last *committed* (recoverable) snapshot.
    committed_work: float = 0.0
    #: History of (time, work) snapshot commits, for diagnostics.
    commits: list[tuple[float, float]] = field(default_factory=list)
    rollbacks: int = 0
    #: Total work units destroyed by rollbacks (re-execution volume).
    work_lost: float = 0.0

    def __post_init__(self) -> None:
        if self.work_target <= 0:
            raise ParameterError("work_target must be > 0")

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.work_done >= self.work_target - 1e-9

    @property
    def remaining(self) -> float:
        return max(0.0, self.work_target - self.work_done)

    def advance(self, work_units: float) -> None:
        """Execute ``work_units`` of application progress."""
        if work_units < 0:
            raise SimulationError(f"cannot advance by {work_units}")
        self.work_done += work_units

    def time_to_complete(self, speed: float) -> float:
        """Wall time to finish the remaining work at ``speed`` (∞ if 0)."""
        if speed <= 0:
            return float("inf")
        return self.remaining / speed

    # ------------------------------------------------------------------
    def commit_snapshot(self, now: float, work_level: float | None = None) -> None:
        """A coordinated checkpoint set became globally recoverable.

        ``work_level`` is the progress the snapshot *captured* (the work
        done when the checkpoint was taken — the start of the period),
        which may be below the current ``work_done`` because the platform
        kept computing while the images propagated.  Defaults to the
        current progress (blocking checkpoint semantics).
        """
        level = self.work_done if work_level is None else float(work_level)
        if level > self.work_done + 1e-9:
            raise SimulationError("cannot commit work that was never executed")
        if level < self.committed_work - 1e-9:
            raise SimulationError("commit would move the snapshot backwards")
        self.committed_work = min(level, self.work_done)
        self.commits.append((now, self.committed_work))

    def rollback(self) -> float:
        """Roll volatile progress back to the last committed snapshot.

        Returns the amount of work lost (to be re-executed).
        """
        lost = self.work_done - self.committed_work
        if lost < -1e-9:  # pragma: no cover - defensive
            raise SimulationError("work_done below committed snapshot")
        lost = max(0.0, lost)
        self.work_done = self.committed_work
        self.rollbacks += 1
        self.work_lost += lost
        return lost
