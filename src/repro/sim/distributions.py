"""Failure inter-arrival distributions.

The paper's model assumes only *uniform strike position within a period*
(true for any law) and uses the MTBF ``M`` as the single failure statistic;
its risk analysis assumes exponential arrivals.  The literature it cites
([8]–[11]) studies Weibull and other laws, so the simulators accept any
:class:`FailureDistribution`:

* :class:`Exponential` — memoryless, the analytical reference case.
* :class:`Weibull` — decreasing (k<1, infant mortality) or increasing
  (k>1, wear-out) hazard; standard in HPC failure studies.
* :class:`LogNormal` / :class:`Gamma` — alternative empirical fits.
* :class:`Deterministic` — fixed spacing, handy in unit tests.
* :class:`Empirical` — resamples recorded inter-arrival times (trace
  bootstrap).
* :class:`Mixture` — weighted mixture of other laws.  A mixture of
  exponentials (hyperexponential) models a *heterogeneous* platform where
  a fraction of the fleet is markedly less reliable than the rest —
  over-dispersed arrivals (CV > 1) at a controlled overall MTBF.

Every distribution is parameterised by its **mean** (the node MTBF) so
protocol comparisons hold the first moment fixed while varying the shape.

Distributions are plain values: :meth:`FailureDistribution.to_dict` gives
a lossless JSON form (:class:`Empirical` carries its full sample, unlike
the digest-only :meth:`~FailureDistribution.fingerprint`),
:func:`distribution_from_dict` inverts it, and equality compares that
form — which is what lets a :class:`~repro.sim.spec.CampaignSpec` holding
any failure law round-trip through JSON and compare for drift.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ParameterError

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Gamma",
    "Deterministic",
    "Empirical",
    "Mixture",
    "distribution_from_dict",
]


class FailureDistribution(ABC):
    """Distribution of one node's failure inter-arrival times (seconds)."""

    @abstractmethod
    def mean(self) -> float:
        """First moment — the node MTBF this law realises."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = ()) :
        """Draw inter-arrival times; shape follows ``size``."""

    def rescale(self, new_mean: float) -> "FailureDistribution":
        """Same shape, different MTBF (used to convert node↔platform scales)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support rescaling"
        )

    def fingerprint(self) -> dict:
        """JSON-safe identifying state (campaign manifests compare these
        to refuse resuming a sweep under a different failure law).
        Subclasses with shape parameters must extend it."""
        return {"kind": type(self).__name__, "mean": self.mean()}

    def to_dict(self) -> dict:
        """Lossless JSON form; :func:`distribution_from_dict` inverts it.

        Unlike :meth:`fingerprint` (which may digest large state, e.g. an
        empirical sample, down to a hash) this carries everything needed
        to rebuild the distribution exactly.  The default covers laws
        fully described by their mean; shaped laws extend it.
        """
        return {"kind": type(self).__name__, "mean": self.mean()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureDistribution):
            return NotImplemented
        return type(self) is type(other) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        import json

        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean():g})"


def _check_mean(mean: float) -> float:
    if not isinstance(mean, (int, float)) or isinstance(mean, bool):
        raise ParameterError(f"mean must be a number, got {mean!r}")
    if not math.isfinite(mean) or mean <= 0:
        raise ParameterError(f"mean must be > 0, got {mean!r}")
    return float(mean)


class Exponential(FailureDistribution):
    """Memoryless law; ``rate = 1/mean``."""

    def __init__(self, mean: float):
        self._mean = _check_mean(mean)

    def mean(self) -> float:
        return self._mean

    @property
    def rate(self) -> float:
        return 1.0 / self._mean

    def sample(self, rng, size=()):
        return rng.exponential(self._mean, size=size)

    def rescale(self, new_mean: float) -> "Exponential":
        return Exponential(new_mean)


class Weibull(FailureDistribution):
    """Weibull law with shape ``k`` and the requested mean.

    ``k < 1`` gives a decreasing hazard (infant mortality — failures
    cluster, the risk-relevant regime); ``k = 1`` degenerates to
    :class:`Exponential`; ``k > 1`` a wear-out hazard.
    """

    def __init__(self, mean: float, shape: float):
        self._mean = _check_mean(mean)
        if not math.isfinite(shape) or shape <= 0:
            raise ParameterError(f"shape must be > 0, got {shape!r}")
        self.shape = float(shape)
        #: scale λ such that mean = λ·Γ(1 + 1/k)
        self.scale = self._mean / math.gamma(1.0 + 1.0 / self.shape)

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        return self.scale * rng.weibull(self.shape, size=size)

    def rescale(self, new_mean: float) -> "Weibull":
        return Weibull(new_mean, self.shape)

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "shape": self.shape}

    def to_dict(self) -> dict:
        return {**super().to_dict(), "shape": self.shape}


class LogNormal(FailureDistribution):
    """Log-normal law with the requested mean and log-space std ``sigma``."""

    def __init__(self, mean: float, sigma: float):
        self._mean = _check_mean(mean)
        if not math.isfinite(sigma) or sigma <= 0:
            raise ParameterError(f"sigma must be > 0, got {sigma!r}")
        self.sigma = float(sigma)
        #: mu chosen so that E = exp(mu + sigma²/2) equals the target mean.
        self.mu = math.log(self._mean) - self.sigma**2 / 2.0

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        return rng.lognormal(self.mu, self.sigma, size=size)

    def rescale(self, new_mean: float) -> "LogNormal":
        return LogNormal(new_mean, self.sigma)

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "sigma": self.sigma}

    def to_dict(self) -> dict:
        return {**super().to_dict(), "sigma": self.sigma}


class Gamma(FailureDistribution):
    """Gamma law with shape ``k`` and the requested mean (scale = mean/k)."""

    def __init__(self, mean: float, shape: float):
        self._mean = _check_mean(mean)
        if not math.isfinite(shape) or shape <= 0:
            raise ParameterError(f"shape must be > 0, got {shape!r}")
        self.shape = float(shape)
        self.scale = self._mean / self.shape

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        return rng.gamma(self.shape, self.scale, size=size)

    def rescale(self, new_mean: float) -> "Gamma":
        return Gamma(new_mean, self.shape)

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "shape": self.shape}

    def to_dict(self) -> dict:
        return {**super().to_dict(), "shape": self.shape}


class Deterministic(FailureDistribution):
    """Failures exactly ``mean`` apart — for deterministic unit tests."""

    def __init__(self, mean: float):
        self._mean = _check_mean(mean)

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        return np.full(size, self._mean) if size != () else self._mean

    def rescale(self, new_mean: float) -> "Deterministic":
        return Deterministic(new_mean)


class Empirical(FailureDistribution):
    """Bootstrap resampling of recorded inter-arrival times.

    Useful to replay the *distributional shape* of a real failure trace
    (which we cannot ship) while scaling its MTBF: pass the recorded
    inter-arrivals, then :meth:`rescale` to the target mean.
    """

    def __init__(self, interarrivals):
        data = np.asarray(interarrivals, dtype=float).ravel()
        if data.size == 0:
            raise ParameterError("need at least one inter-arrival time")
        if np.any(~np.isfinite(data)) or np.any(data <= 0):
            raise ParameterError("inter-arrival times must be finite and > 0")
        self._data = data
        self._mean = float(data.mean())

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        out = rng.choice(self._data, size=size, replace=True)
        return float(out) if size == () else out

    def rescale(self, new_mean: float) -> "Empirical":
        new_mean = _check_mean(new_mean)
        return Empirical(self._data * (new_mean / self._mean))

    def fingerprint(self) -> dict:
        import hashlib

        digest = hashlib.sha256(self._data.tobytes()).hexdigest()[:16]
        return {**super().fingerprint(), "n_samples": int(self._data.size),
                "data_sha256": digest}

    def to_dict(self) -> dict:
        # The full sample, not the fingerprint digest: a spec must be able
        # to rebuild the bootstrap source exactly (mean is derived).
        return {"kind": "Empirical",
                "interarrivals": [float(x) for x in self._data]}

    @property
    def data(self) -> np.ndarray:
        """The underlying inter-arrival sample (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view


class Mixture(FailureDistribution):
    """Weighted mixture of failure laws: each draw picks one component.

    The textbook heterogeneous-platform model is a mixture of
    exponentials (hyperexponential): e.g. 20 % of draws from a component
    with a quarter of the fleet-average MTBF captures a fragile
    sub-population without changing the platform MTBF the paper's model
    sees.  :meth:`rescale` scales every component mean by the same factor,
    preserving the *relative* heterogeneity while the injector pins the
    overall mean to each grid cell's node MTBF.
    """

    def __init__(self, components, weights):
        components = tuple(components)
        if len(components) < 2:
            raise ParameterError(
                "a mixture needs at least two components (one component "
                "is just that distribution)"
            )
        for comp in components:
            if not isinstance(comp, FailureDistribution):
                raise ParameterError(
                    f"mixture components must be FailureDistributions, "
                    f"got {type(comp).__name__}"
                )
        w = np.asarray(list(weights), dtype=float)
        if w.shape != (len(components),):
            raise ParameterError(
                f"need one weight per component, got {w.size} weights "
                f"for {len(components)} components"
            )
        if np.any(~np.isfinite(w)) or np.any(w <= 0):
            raise ParameterError(
                f"mixture weights must be finite and > 0, got {list(w)}"
            )
        self.components = components
        self.weights = w / w.sum()
        self._mean = float(
            sum(wi * c.mean() for wi, c in zip(self.weights, components))
        )

    def mean(self) -> float:
        return self._mean

    def sample(self, rng, size=()):
        k = len(self.components)
        if size == ():
            idx = int(rng.choice(k, p=self.weights))
            return float(self.components[idx].sample(rng))
        choice = rng.choice(k, size=size, p=self.weights)
        out = np.empty(size, dtype=float)
        # Fixed component order keeps the RNG consumption deterministic.
        for i, comp in enumerate(self.components):
            mask = choice == i
            count = int(mask.sum())
            if count:
                out[mask] = np.asarray(comp.sample(rng, (count,)))
        return out

    def rescale(self, new_mean: float) -> "Mixture":
        new_mean = _check_mean(new_mean)
        factor = new_mean / self._mean
        return Mixture(
            [c.rescale(c.mean() * factor) for c in self.components],
            self.weights,
        )

    def fingerprint(self) -> dict:
        return {
            **super().fingerprint(),
            "weights": [float(w) for w in self.weights],
            "components": [c.fingerprint() for c in self.components],
        }

    def to_dict(self) -> dict:
        # Mean is derived from the (normalised) weights and components.
        return {
            "kind": "Mixture",
            "weights": [float(w) for w in self.weights],
            "components": [c.to_dict() for c in self.components],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{w:.3g}*{c!r}" for w, c in zip(self.weights, self.components)
        )
        return f"Mixture({parts})"


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def distribution_from_dict(data: dict) -> FailureDistribution:
    """Rebuild a distribution from :meth:`FailureDistribution.to_dict`.

    Validates shape and kind with actionable errors — this is the decode
    path for hand-written :class:`~repro.sim.spec.CampaignSpec` JSON
    files, not just for trusted round-trips.
    """
    if not isinstance(data, dict):
        raise ParameterError(
            f"a failure-law spec must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    try:
        if kind == "Exponential":
            return Exponential(data["mean"])
        if kind == "Weibull":
            return Weibull(data["mean"], data["shape"])
        if kind == "LogNormal":
            return LogNormal(data["mean"], data["sigma"])
        if kind == "Gamma":
            return Gamma(data["mean"], data["shape"])
        if kind == "Deterministic":
            return Deterministic(data["mean"])
        if kind == "Empirical":
            return Empirical(data["interarrivals"])
        if kind == "Mixture":
            return Mixture(
                [distribution_from_dict(c) for c in data["components"]],
                data["weights"],
            )
    except KeyError as exc:
        raise ParameterError(
            f"failure-law spec of kind {kind!r} is missing field {exc}"
        ) from exc
    raise ParameterError(
        f"unknown failure-law kind {kind!r}; known: Deterministic, "
        "Empirical, Exponential, Gamma, LogNormal, Mixture, Weibull"
    )
