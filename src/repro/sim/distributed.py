"""Multi-machine campaigns: a work-stealing backend over a shared queue.

The single-machine backends (:mod:`repro.sim.backends`) already yield
chunks in arbitrary completion order, every replica seed derives from the
campaign seed and the cell's grid coordinates alone, and the framed sink
accepts any cell order — so scaling a campaign across machines needs only
(a) a shared *chunk queue* deciding who runs what, and (b) a way to merge
per-worker outputs.  This module provides both on top of nothing but a
shared directory (NFS, a bind-mounted volume, or plain ``/tmp`` for
multi-process runs on one box).  To the event pipeline
(:mod:`repro.sim.events`) a distributed worker is just another producer:
every cell it claims — simulated or served from its store — is emitted
as a ``backend`` cell, and the store hits it resolved inside claimed
chunks are reconciled into the progress counters after the loop:

``queue-dir/``
    ``manifest.json``
        The campaign's spec fingerprint
        (:meth:`repro.sim.spec.CampaignSpec.fingerprint` — identical to
        the results-file sidecar manifest) plus the chunk layout.  Every
        joining worker recomputes the fingerprint from its own spec and
        refuses to work a queue that disagrees — the multi-machine
        analogue of the resume drift check, expressed as spec inequality.
    ``pending/chunk-NNNNN.json``
        One ticket per unclaimed chunk.  Claiming is a single
        ``os.rename`` into ``claims/`` — atomic on POSIX, so exactly one
        worker wins a ticket.
    ``claims/chunk-NNNNN.gG.WORKER.json``
        The current claim on a chunk: generation ``G`` and owner in the
        file name, lease clock in the file mtime (the owner refreshes it
        after every replica, so ``lease_timeout`` only needs to exceed
        one replica's runtime plus clock slack, never a whole cell's).  A claim whose lease has expired with no done
        marker is *stolen* by renaming it to generation ``G+1`` under the
        thief's name — again one atomic rename, so a dead worker's chunk
        is re-claimed exactly once rather than lost or duplicated.
    ``done/chunk-NNNNN.json``
        Written (atomically, via temp-file + rename) only *after* the
        chunk's frames are durably appended to the worker's shard.  The
        queue is complete when every chunk has a done marker.
    ``shards/WORKER.jsonl``
        Each worker's framed results (:class:`repro.sim.sinks.WorkerShardSink`).
        Workers never write to a shared results file, so there is no
        cross-machine append coordination at all; :func:`merge_shards`
        combines the shards afterwards.

Crash safety is leases + determinism, not consensus: if a worker dies
mid-chunk its claim expires and another worker re-runs the chunk from
scratch.  Because every replica is a pure function of the campaign seed
and grid coordinates, a re-run (or a steal racing the original worker's
slow finish) produces *byte-identical* results, so :func:`merge_shards`
can simply deduplicate cells across shards — after verifying the
duplicates really are identical, which doubles as an end-to-end
integrity check.  The rare benign races (two initialisers recreating a
ticket, a stolen chunk finishing twice) therefore cost duplicate work,
never wrong output.

Clock caveat: lease expiry reads *now* from the queue directory's own
filesystem clock (:func:`repro.fsclock.filesystem_now` touch-and-stats
a probe file in ``claims/``), so claim mtimes and the expiry clock are
stamped by the same authority — the fileserver on NFS — and
cross-machine wall-clock skew cancels instead of stealing live leases.
Ages are clamped at zero, so a backwards clock jump can never make a
fresh claim look ancient; ``lease_timeout`` only needs to exceed one
replica's runtime plus NFS attribute-cache lag.

The merged file is an ordinary framed campaign results file — cells in
grid order, contiguous sequence numbers, the campaign manifest at its
side — indistinguishable from a single-machine ``sink="framed"`` run, so
``execute_campaign(resume=True)`` and ``repro-checkpoint report`` work on
it unchanged.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import pathlib
import re
import socket
import time
import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ParameterError
from ..fsclock import clamped_age, filesystem_now
from ..obs import Counter, default_registry
from ..obs.trace import current_tracer
from .adaptive import ReplicaController, stop_count
from .backends import (
    CampaignBackend,
    _execute_chunk,
    _resolve_workers,
    run_cell_for_engine,
)
from .campaign import CampaignConfig
from .results import DesResult
from .vectorized import plan_engine

__all__ = [
    "DistributedBackend",
    "QueueStatus",
    "MergeReport",
    "default_worker_id",
    "ensure_queue",
    "queue_status",
    "merge_shards",
    "shard_path",
]

_QUEUE_FORMAT = "repro-campaign-queue"
#: Version 1 embedded a hand-built fingerprint dict; 2 embeds the
#: campaign's spec fingerprint (``repro.sim.spec``).  Queues are
#: transient coordination state, so version 1 is refused (finish or
#: merge it with the library that created it) rather than translated.
_QUEUE_VERSION = 2
#: Worker ids become file-name components: keep them boring.
_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")
_CLAIM_RE = re.compile(r"^chunk-(\d+)\.g(\d+)\.([A-Za-z0-9_-]+)\.json$")
_TICKET_RE = re.compile(r"^chunk-(\d+)\.json$")


def default_worker_id() -> str:
    """``<hostname>-<pid>-<nonce>``, sanitised to the allowed id alphabet.

    Two live workers must never share an id — a shared id means a shared
    shard file, and concurrent appends corrupt it.  The pid separates
    workers on one host; the random nonce separates workers on *cloned*
    hosts (container replicas routinely share both hostname and pid 1).
    When the 64-char budget is tight it is the hostname that gets
    truncated, never the distinguishing suffix.  Pass an explicit
    ``worker_id`` when a stable identity (shard reuse across restarts)
    matters more than collision-proof defaults.
    """
    import secrets

    host = re.sub(r"[^A-Za-z0-9_-]", "-", socket.gethostname()) or "worker"
    suffix = f"{os.getpid()}-{secrets.token_hex(2)}"
    return f"{host[:64 - len(suffix) - 1]}-{suffix}"


def _check_worker_id(worker_id: str) -> str:
    if not _WORKER_ID_RE.match(worker_id):
        raise ParameterError(
            f"worker id {worker_id!r} must match [A-Za-z0-9_-]{{1,64}} "
            "(it becomes part of claim and shard file names)"
        )
    return worker_id


def _pending(queue: pathlib.Path) -> pathlib.Path:
    return queue / "pending"


def _claims(queue: pathlib.Path) -> pathlib.Path:
    return queue / "claims"


def _done(queue: pathlib.Path) -> pathlib.Path:
    return queue / "done"


def _shards(queue: pathlib.Path) -> pathlib.Path:
    return queue / "shards"


def _manifest_file(queue: pathlib.Path) -> pathlib.Path:
    return queue / "manifest.json"


def shard_path(queue: str | pathlib.Path, worker_id: str) -> pathlib.Path:
    """The framed shard file worker ``worker_id`` appends to."""
    return _shards(pathlib.Path(queue)) / f"{_check_worker_id(worker_id)}.jsonl"


def _ticket_name(chunk: int) -> str:
    return f"chunk-{chunk:05d}.json"


def _done_path(queue: pathlib.Path, chunk: int) -> pathlib.Path:
    return _done(queue) / _ticket_name(chunk)


def _atomic_write(path: pathlib.Path, text: str) -> None:
    """Write-then-rename so readers never see a torn file."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _manifests_agree(stored: dict, manifest: dict) -> bool:
    """Does a stored queue manifest describe this campaign?

    The chunk-layout fields must match exactly; the embedded campaign
    fingerprints are compared as *specs* (parse both, compare
    identities), not as raw dicts — so a joiner whose library writes
    additional defaulted (volatile) policy fields still recognises a
    queue created before those fields existed.
    """
    if not isinstance(stored, dict):
        return False
    for field in ("format", "version", "n_chunks", "chunk_size", "n_cells"):
        if stored.get(field) != manifest.get(field):
            return False
    if stored.get("campaign") == manifest.get("campaign"):
        return True
    from .spec import CampaignSpec

    try:
        return (
            CampaignSpec.from_dict(stored.get("campaign")).identity()
            == CampaignSpec.from_dict(manifest.get("campaign")).identity()
        )
    except ParameterError:
        return False


# ----------------------------------------------------------------------
# Queue lifecycle
# ----------------------------------------------------------------------
def ensure_queue(
    queue: pathlib.Path,
    campaign_fingerprint: dict,
    *,
    n_chunks: int,
    chunk_size: int,
    n_cells: int,
) -> dict:
    """Initialise the queue directory, or verify it matches this campaign.

    Idempotent and safe to race: every structure is created with
    create-if-absent semantics and identical deterministic content, so
    concurrent first workers converge on the same queue.  (The one
    observable race — a ticket recreated for a chunk another worker
    already claimed during the initialisation window — costs a duplicate
    deterministic execution that :func:`merge_shards` deduplicates.)

    A queue whose stored manifest disagrees with the caller's
    configuration is refused, exactly like resuming a results file under
    drifted settings.
    """
    manifest = {
        "format": _QUEUE_FORMAT,
        "version": _QUEUE_VERSION,
        "campaign": campaign_fingerprint,
        "n_chunks": int(n_chunks),
        "chunk_size": int(chunk_size),
        "n_cells": int(n_cells),
    }
    for sub in (_pending(queue), _claims(queue), _done(queue), _shards(queue)):
        sub.mkdir(parents=True, exist_ok=True)

    path = _manifest_file(queue)
    if path.exists():
        try:
            stored = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ParameterError(
                f"{path}: unreadable queue manifest ({exc}); this is not "
                "a campaign queue directory"
            ) from exc
        if not _manifests_agree(stored, manifest):
            drift = sorted(
                k for k in manifest
                if not isinstance(stored, dict) or stored.get(k) != manifest[k]
            )
            raise ParameterError(
                f"{path}: queue was created for a different campaign "
                f"(differs in: {', '.join(drift)}); every worker must "
                "join with the same configuration and chunk size"
            )
        return manifest

    # Tickets first, manifest last: a worker only starts claiming once
    # ensure_queue returns, which requires the manifest to exist.
    for chunk in range(n_chunks):
        ticket = _pending(queue) / _ticket_name(chunk)
        if ticket.exists() or _done_path(queue, chunk).exists():
            continue
        _atomic_write(ticket, json.dumps(
            {"format": _QUEUE_FORMAT, "chunk": chunk}
        ) + "\n")
    _atomic_write(path, json.dumps(manifest, sort_keys=True) + "\n")
    # Two workers racing a fresh directory with *different* configs both
    # reach this write; the last os.replace wins.  Re-reading closes the
    # race: whoever's manifest lost detects the foreign content and
    # fails fast instead of silently running a different campaign into
    # the shared queue.
    stored = json.loads(path.read_text())
    if not _manifests_agree(stored, manifest):
        raise ParameterError(
            f"{path}: another worker initialised this queue for a "
            "different campaign at the same moment; re-check the "
            "configurations and use a fresh directory"
        )
    return manifest


def read_queue_manifest(queue: str | pathlib.Path) -> dict:
    """The queue's stored manifest; raises if absent or unreadable."""
    path = _manifest_file(pathlib.Path(queue))
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ParameterError(
            f"{path}: no queue manifest found; was this directory "
            "initialised by a campaign worker (repro-checkpoint campaign "
            "--queue)?"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"{path}: unreadable queue manifest ({exc})") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _QUEUE_FORMAT:
        raise ParameterError(f"{path}: not a campaign queue manifest")
    if manifest.get("version") != _QUEUE_VERSION:
        raise ParameterError(
            f"{path}: unsupported queue version {manifest.get('version')!r} "
            f"(this library speaks version {_QUEUE_VERSION}; a version-1 "
            "queue was written by an older library — finish or merge it "
            "there, or start a fresh queue directory)"
        )
    return manifest


@dataclass(frozen=True)
class QueueStatus:
    """Point-in-time chunk accounting of a queue directory."""

    n_chunks: int
    pending: int
    claimed: int
    done: int

    @property
    def complete(self) -> bool:
        return self.done >= self.n_chunks

    def describe(self) -> str:
        return (f"{self.done}/{self.n_chunks} chunks done "
                f"({self.pending} pending, {self.claimed} claimed)")


def queue_status(queue: str | pathlib.Path) -> QueueStatus:
    """Count pending/claimed/done chunks (claimed = not yet done)."""
    queue = pathlib.Path(queue)
    manifest = read_queue_manifest(queue)
    done = {
        int(m.group(1)) for name in _list_dir(_done(queue))
        if (m := _TICKET_RE.match(name))
    }
    pending = sum(
        1 for name in _list_dir(_pending(queue))
        if (m := _TICKET_RE.match(name)) and int(m.group(1)) not in done
    )
    claimed = {
        int(m.group(1)) for name in _list_dir(_claims(queue))
        if (m := _CLAIM_RE.match(name))
    }
    return QueueStatus(
        n_chunks=int(manifest["n_chunks"]),
        pending=pending,
        claimed=len(claimed - done),
        done=len(done),
    )


def _list_dir(path: pathlib.Path) -> list[str]:
    try:
        return sorted(os.listdir(path))
    except FileNotFoundError:
        return []


# ----------------------------------------------------------------------
# The work-stealing backend
# ----------------------------------------------------------------------
class DistributedBackend(CampaignBackend):
    """Claims chunks from a shared queue directory, one worker at a time.

    Each process (on any machine sharing the queue directory) constructs
    its own backend and calls :meth:`execute` with the *same* chunk plan
    — identical by construction, since chunks are a pure function of the
    campaign configuration and chunk size, which the queue manifest pins.
    The backend then loops: claim a pending ticket (atomic rename), run
    its cells in-process, yield the results (the executor appends them to
    this worker's shard while the generator is suspended), and mark the
    chunk done on resume — so a done marker always post-dates the shard
    append it certifies.  When no pending tickets remain it looks for
    expired claims to steal, and returns once every chunk is done.

    By default a worker runs its claimed cells in-process — horizontal
    scale comes from starting more workers, each claiming whole chunks.
    ``processes=N`` (the :class:`~repro.sim.spec.ExecutionPolicy`'s
    ``worker_processes``) additionally fans each claimed chunk's cells
    across a per-machine process pool, so one worker per machine can
    still use every core; the claim/lease/steal protocol is unchanged
    (the lease is refreshed from the coordinating process while pool
    cells complete).

    With a ``store`` (:class:`~repro.store.CampaignStore`), the worker
    consults the warehouse per claimed cell before simulating it —
    chunk *claiming* stays untouched (the queue layout must remain a
    pure function of the spec), only the simulation inside a claim is
    skipped.  Served cells still land in the worker's shard, so the
    merge sees a complete campaign.  Store reads share the process-wide
    hot-cell cache (:mod:`repro.store.cache`) with every other store
    consumer in this process, so a worker re-claiming overlapping cells
    (steal races, resumed queues) re-verifies at digest level instead of
    re-reading disk; workers on other machines each warm their own.
    """

    def __init__(
        self,
        queue: str | pathlib.Path,
        worker_id: str | None = None,
        *,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.5,
        processes: int | None = 1,
        store=None,
        engine: str = "des",
    ):
        if lease_timeout <= 0:
            raise ParameterError(
                f"lease_timeout must be > 0, got {lease_timeout!r}"
            )
        if poll_interval <= 0:
            raise ParameterError(
                f"poll_interval must be > 0, got {poll_interval!r}"
            )
        self.queue = pathlib.Path(queue)
        self.worker_id = _check_worker_id(
            default_worker_id() if worker_id is None else worker_id
        )
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        #: In-worker pool size (1 = run claimed cells in-process).
        self.workers = _resolve_workers(processes)
        self._store = store
        #: Simulation engine ("des" or "vectorized") for claimed cells;
        #: per-cell fallback is decided inside the chunk runner exactly
        #: as in the single-machine backends, so a distributed campaign
        #: produces the same bytes as a serial one with the same policy.
        self.engine = engine
        #: Cells/replicas served from the store instead of simulated
        #: (the executor folds these into its report counters).
        self.cells_from_store = 0
        self.replicas_from_store = 0
        #: Per-worker queue-protocol counters (repro_queue_*): claims
        #: won, leases stolen from presumed-dead workers, lease-clock
        #: refreshes, chunks certified done, and straggler chunks —
        #: work this worker completed that another worker had already
        #: certified (a steal race's duplicated effort, the queue's
        #: analogue of the paper's wasted re-execution time).
        registry = default_registry()
        labels = {"worker": self.worker_id}
        self._m_claims = registry.register(Counter(
            "repro_queue_claims_total",
            help="Pending tickets claimed.", labels=labels))
        self._m_steals = registry.register(Counter(
            "repro_queue_steals_total",
            help="Expired leases stolen.", labels=labels))
        self._m_lease_refreshes = registry.register(Counter(
            "repro_queue_lease_refreshes_total",
            help="Lease-clock refreshes.", labels=labels))
        self._m_chunks_done = registry.register(Counter(
            "repro_queue_chunks_done_total",
            help="Chunks certified done.", labels=labels))
        self._m_stragglers = registry.register(Counter(
            "repro_queue_straggler_chunks_total",
            help="Chunks finished after another worker already "
                 "certified them (duplicated work).", labels=labels))

    # -- claim protocol ------------------------------------------------
    def _claim_path(self, chunk: int, generation: int) -> pathlib.Path:
        return _claims(self.queue) / (
            f"chunk-{chunk:05d}.g{generation}.{self.worker_id}.json"
        )

    def _try_claim_pending(self) -> tuple[int, pathlib.Path] | None:
        """Atomically move one pending ticket under this worker's name."""
        tracer = current_tracer()
        if tracer is None:
            return self._claim_pending()
        with tracer.span("queue.claim", "queue",
                         worker=self.worker_id) as span:
            claimed = self._claim_pending()
            if claimed is not None:
                span.args["chunk"] = claimed[0]
            return claimed

    def _claim_pending(self) -> tuple[int, pathlib.Path] | None:
        tickets = [
            (int(m.group(1)), name)
            for name in _list_dir(_pending(self.queue))
            if (m := _TICKET_RE.match(name))
        ]
        # Start at a worker-dependent offset so a fleet hitting a fresh
        # queue doesn't all fight over ticket 0.
        if tickets:
            start = zlib.crc32(self.worker_id.encode()) % len(tickets)
            tickets = tickets[start:] + tickets[:start]
        for chunk, name in tickets:
            ticket = _pending(self.queue) / name
            if _done_path(self.queue, chunk).exists():
                # Stale ticket for a finished chunk (initialisation race):
                # retire it instead of re-running the chunk.
                try:
                    ticket.unlink()
                except OSError:
                    pass
                continue
            claim = self._claim_path(chunk, 0)
            # Freshen the ticket first: its mtime may predate the claim
            # by more than a lease (late-joining fleet), and rename
            # preserves mtimes — without this, the new claim would be
            # steal-eligible for the instant before the refresh below.
            try:
                os.utime(ticket)
            except OSError:
                pass  # racing claimant took it; rename below settles it
            try:
                os.rename(ticket, claim)
            except OSError:
                continue  # someone else won this ticket
            self._refresh_lease(claim)
            self._m_claims.inc()
            return chunk, claim
        return None

    def _try_steal_expired(self) -> tuple[int, pathlib.Path] | None:
        """Re-claim one chunk whose current lease has expired."""
        tracer = current_tracer()
        if tracer is None:
            return self._steal_expired()
        with tracer.span("queue.steal", "queue",
                         worker=self.worker_id) as span:
            stolen = self._steal_expired()
            if stolen is not None:
                span.args["chunk"] = stolen[0]
            return stolen

    def _steal_expired(self) -> tuple[int, pathlib.Path] | None:
        current: dict[int, tuple[int, str]] = {}
        for name in _list_dir(_claims(self.queue)):
            m = _CLAIM_RE.match(name)
            if not m:
                continue
            chunk, generation = int(m.group(1)), int(m.group(2))
            if generation >= current.get(chunk, (-1, ""))[0]:
                current[chunk] = (generation, name)
        # Sample *now* from the claims directory's own filesystem clock —
        # the clock that stamped every claim mtime — so lease expiry is
        # immune to cross-machine skew; clamp so a backwards jump (or a
        # refresh racing this scan) reads as "fresh", never "ancient".
        now = filesystem_now(_claims(self.queue))
        for chunk in sorted(current):
            generation, name = current[chunk]
            if _done_path(self.queue, chunk).exists():
                continue
            stale = _claims(self.queue) / name
            try:
                age = clamped_age(now, stale.stat().st_mtime)
            except OSError:
                continue  # vanished: owner finished or another thief won
            if age < self.lease_timeout:
                continue
            fresh = self._claim_path(chunk, generation + 1)
            try:
                os.rename(stale, fresh)
            except OSError:
                continue  # lost the steal race
            self._refresh_lease(fresh)
            self._m_steals.inc()
            return chunk, fresh
        return None

    def _refresh_lease(self, claim: pathlib.Path) -> None:
        """Restart the lease clock (rename preserves the old mtime)."""
        self._m_lease_refreshes.inc()
        tracer = current_tracer()
        if tracer is not None:
            with tracer.span("queue.lease-refresh", "queue",
                             worker=self.worker_id):
                try:
                    os.utime(claim)
                except OSError:
                    pass  # claim stolen from under us; run stays harmless
            return
        try:
            os.utime(claim)
        except OSError:
            pass  # claim stolen from under us; the run stays harmless

    def _mark_done(self, chunk: int, claim: pathlib.Path, frames: int) -> None:
        if _done_path(self.queue, chunk).exists():
            # Another worker stole the lease and certified this chunk
            # while we were running it: our copy was wasted work.
            self._m_stragglers.inc()
        self._m_chunks_done.inc()
        _atomic_write(_done_path(self.queue, chunk), json.dumps({
            "format": _QUEUE_FORMAT, "chunk": chunk,
            "worker": self.worker_id, "frames": frames,
        }) + "\n")
        try:
            claim.unlink()
        except OSError:
            pass  # a thief holds it now; done marker still wins

    def _all_done(self, n_chunks: int) -> bool:
        done = _list_dir(_done(self.queue))
        return sum(1 for name in done if _TICKET_RE.match(name)) >= n_chunks

    # -- execution -----------------------------------------------------
    def execute(
        self,
        config: CampaignConfig,
        chunks: Sequence[list],
        controller: ReplicaController,
    ) -> Iterator[tuple[int, list[list[DesResult]]]]:
        read_queue_manifest(self.queue)  # fail fast on a foreign directory
        pool: concurrent.futures.ProcessPoolExecutor | None = None
        if self.workers > 1:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        try:
            while True:
                claimed = self._try_claim_pending() or self._try_steal_expired()
                if claimed is None:
                    if self._all_done(len(chunks)):
                        return
                    time.sleep(self.poll_interval)
                    continue
                claims = [claimed]
                if pool is not None:
                    # Keep the pool full: one chunk may hold fewer cells
                    # than the pool has processes (chunk_size=1 is the
                    # common fine-grained layout), so claim additional
                    # chunks until the held cells cover the pool.
                    while sum(
                        len(chunks[c]) for c, _ in claims if c < len(chunks)
                    ) < self.workers:
                        more = (self._try_claim_pending()
                                or self._try_steal_expired())
                        if more is None:
                            break
                        claims.append(more)
                for chunk, _ in claims:
                    if chunk >= len(chunks):
                        raise ParameterError(
                            f"{self.queue}: ticket names chunk {chunk} but "
                            f"this campaign only plans {len(chunks)}; the "
                            "queue belongs to a different campaign"
                        )

                def heartbeat(claims=tuple(c for _, c in claims)) -> None:
                    # Keep every held lease alive *inside* long cells
                    # too: a slow cell must not look dead to the fleet.
                    for claim in claims:
                        self._refresh_lease(claim)

                per_chunk = self._run_chunks(
                    config, [chunks[c] for c, _ in claims], controller,
                    pool, heartbeat,
                )
                for (chunk, claim), results in zip(claims, per_chunk):
                    yield chunk, results
                    # The executor appended the chunk to this worker's
                    # shard while we were suspended at the yield: the
                    # completion is durable, so certify it.
                    self._mark_done(
                        chunk, claim, sum(len(r) for r in results)
                    )
        finally:
            if pool is not None:
                pool.shutdown()

    def _run_chunks(
        self,
        config: CampaignConfig,
        plan_chunks: Sequence[Sequence],
        controller: ReplicaController,
        pool: concurrent.futures.ProcessPoolExecutor | None,
        heartbeat,
    ) -> list[list[list[DesResult]]]:
        """The claimed chunks' per-cell results, chunk- and plan-ordered.

        Store hits are resolved first (and counted); the remaining cells
        run in-process or concurrently across the worker's pool —
        pooling spans *all* held chunks, which is what lets a
        fine-grained chunk layout still saturate the local cores.
        Either way the lease keeps beating: in-process via
        :func:`run_cell`'s per-replica hook, pooled via the coordinating
        process refreshing while it waits on cell futures.
        """
        slots: dict[tuple[int, int], list[DesResult]] = {}
        remaining: list[tuple[tuple[int, int], object]] = []
        for ci, plans in enumerate(plan_chunks):
            for pos, plan in enumerate(plans):
                hit = None
                if self._store is not None:
                    hit = self._store.load_cell(
                        config, plan, controller,
                        engine=plan_engine(self.engine, config, plan),
                    )
                if hit is not None:
                    slots[(ci, pos)] = hit
                    self.cells_from_store += 1
                    self.replicas_from_store += len(hit)
                    heartbeat()
                else:
                    remaining.append(((ci, pos), plan))
        if pool is not None and remaining:
            futures = {
                pool.submit(
                    _execute_chunk, config, [plan], controller, self.engine
                ): key
                for key, plan in remaining
            }
            pending = set(futures)
            while pending:
                done, pending = concurrent.futures.wait(
                    pending, timeout=self.lease_timeout / 4.0
                )
                heartbeat()  # cells run elsewhere; the lease clock is ours
                for future in done:
                    slots[futures[future]] = future.result()[0]
        else:
            trace_cache: dict = {}
            for key, plan in remaining:
                slots[key] = run_cell_for_engine(
                    self.engine, config, plan, controller, trace_cache,
                    heartbeat=heartbeat,
                )
        return [
            [slots[(ci, pos)] for pos in range(len(plans))]
            for ci, plans in enumerate(plan_chunks)
        ]


# ----------------------------------------------------------------------
# Shard merging
# ----------------------------------------------------------------------
def _controller_from_manifest(campaign_fp: dict) -> ReplicaController:
    """Rebuild the replica controller a queue's campaign ran under.

    The queue manifest embeds the campaign's spec fingerprint, which
    records the controller (or ``None`` for the fixed-count default) —
    everything the merge needs to replay per-cell completeness without
    access to the original :class:`~repro.sim.adaptive.ReplicaController`
    object.  Parsing the whole spec (rather than plucking one key) also
    validates that the queue really was written by a compatible library.
    """
    from .spec import CampaignSpec

    spec = CampaignSpec.from_dict(campaign_fp)
    return spec.controller()


@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_shards` combined."""

    cells: int
    frames: int
    shards: int
    #: Re-executed cells seen in more than one shard (verified identical).
    duplicate_cells: int
    #: Torn/unfinished cell groups dropped from crashed workers' shards.
    incomplete_cells: int

    def describe(self) -> str:
        return (
            f"{self.cells} cells ({self.frames} frames) merged from "
            f"{self.shards} shards; {self.duplicate_cells} duplicated by "
            f"work-stealing, {self.incomplete_cells} torn groups dropped"
        )


def merge_shards(
    queue: str | pathlib.Path,
    out_path: str | pathlib.Path,
    *,
    require_complete: bool = True,
) -> MergeReport:
    """Combine every worker shard into one resumable campaign file.

    Reads each ``shards/*.jsonl`` with the tolerant
    :func:`repro.io.scan_frames` (a crashed worker's torn trailing write
    ends that shard's scan silently), regroups frames by grid cell,
    verifies that cells executed by several workers (steal races,
    re-runs) produced byte-identical results, drops incomplete trailing
    cell groups, and writes the cells in grid order with contiguous
    sequence numbers — plus the campaign manifest sidecar — so the output
    is exactly what a single-machine framed campaign would have written
    and resumes/reports identically.

    With ``require_complete`` (the default) a queue that still has
    unfinished chunks is refused; pass ``require_complete=False`` to
    merge the finished cells of a dead campaign into a partial file that
    ``execute_campaign(resume=True)`` can then finish on one machine.
    """
    from .. import io as repro_io

    queue = pathlib.Path(queue)
    out_path = pathlib.Path(out_path)
    manifest = read_queue_manifest(queue)

    if require_complete:
        status = queue_status(queue)
        if not status.complete:
            raise ParameterError(
                f"{queue}: queue is incomplete ({status.describe()}); "
                "wait for the workers (or start more), or merge what "
                "exists with require_complete=False / --partial"
            )

    shard_files = [
        _shards(queue) / name for name in _list_dir(_shards(queue))
        if name.endswith(".jsonl")
    ]
    # cell -> replica -> result.  Serialisation (the cross-shard identity
    # witness) happens lazily, only when a cell actually collides —
    # collisions are rare (steal races), so the common path serialises
    # each record once, at output time.
    cells: dict[int, dict[int, DesResult]] = {}
    duplicated_cells: set[int] = set()
    for shard in shard_files:
        shard_cells: dict[int, dict[int, DesResult]] = {}
        for frame, _ in repro_io.scan_frames(shard):
            replicas = shard_cells.setdefault(frame.cell, {})
            known = replicas.get(frame.replica)
            if known is not None:
                # The same (cell, replica) twice in one shard: a worker
                # that restarted and re-claimed the chunk it died
                # holding.  Unlike a cross-shard torn copy, both copies
                # here are whole (the rejoin truncated any torn tail
                # before re-appending), so they must be identical.
                duplicated_cells.add(frame.cell)
                if (repro_io.dump_result(known)
                        != repro_io.dump_result(frame.result)):
                    raise ParameterError(
                        f"{shard}: cell {frame.cell} replica "
                        f"{frame.replica} appears twice in this shard "
                        "with different results — campaign execution is "
                        "deterministic, so the shard is corrupt; "
                        "refusing to merge"
                    )
                continue
            replicas[frame.replica] = frame.result
        for cell, replicas in shard_cells.items():
            if sorted(replicas) != list(range(len(replicas))):
                raise ParameterError(
                    f"{shard}: cell {cell} has replica indices "
                    f"{sorted(replicas)}; shard frames are corrupt"
                )
            known = cells.get(cell)
            if known is None:
                cells[cell] = replicas
                continue
            # The same cell in several shards: a steal race or a re-run.
            # Replicas execute in seed order, so a torn shorter copy must
            # be an exact prefix of the longer one — anything else means
            # the shards came from different configurations.
            duplicated_cells.add(cell)
            shorter, longer = sorted((known, replicas), key=len)
            if any(
                repro_io.dump_result(shorter[r])
                != repro_io.dump_result(longer[r])
                for r in shorter
            ):
                raise ParameterError(
                    f"{shard}: cell {cell} disagrees with another "
                    "shard's copy of the same cell — campaign execution "
                    "is deterministic, so the shards were produced by "
                    "different configurations; refusing to merge"
                )
            cells[cell] = longer

    # Completeness per cell: replay the replica controller (rebuilt from
    # the queue manifest) over each cell's recorded wastes, exactly like
    # the framed sink's resume scan.  A crashed worker's torn trailing
    # write can leave a *prefix* of a cell in its shard; if no other
    # worker holds the full copy, the cell is incomplete and dropped —
    # the merged file then resumes cleanly instead of passing a short
    # cell off as finished.
    controller = _controller_from_manifest(manifest["campaign"])
    n_cells = int(manifest["n_cells"])
    incomplete = 0
    merged: dict[int, list[DesResult]] = {}
    for cell in sorted(cells):
        if cell >= n_cells:
            raise ParameterError(
                f"{queue}: shards hold cell {cell} but the campaign only "
                f"has {n_cells} cells; queue and shards disagree"
            )
        replicas = cells[cell]
        ordered = [replicas[r] for r in range(len(replicas))]
        stops_at = stop_count(controller, [res.waste for res in ordered])
        if stops_at is not None and stops_at < len(ordered):
            raise ParameterError(
                f"{queue}: cell {cell} holds {len(ordered)} replicas but "
                f"the replica controller stops it after {stops_at}; the "
                "shards were written under different adaptive settings"
            )
        if stops_at is None:
            incomplete += 1
            continue
        merged[cell] = ordered

    if require_complete and len(merged) < n_cells:
        missing = sorted(set(range(n_cells)) - set(merged))
        raise ParameterError(
            f"{queue}: every chunk is marked done but cells {missing} "
            "are absent or incomplete in the shards — was a shard file "
            "deleted?"
        )

    frames_written = 0
    tmp = out_path.with_name(out_path.name + f".tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as fh:
        for cell in sorted(merged):
            for replica, res in enumerate(merged[cell]):
                fh.write(repro_io.dump_frame(
                    res, cell=cell, replica=replica, seq=frames_written
                ) + "\n")
                frames_written += 1
    os.replace(tmp, out_path)
    _atomic_write(
        out_path.with_name(out_path.name + ".manifest"),
        json.dumps(manifest["campaign"], sort_keys=True) + "\n",
    )
    return MergeReport(
        cells=len(merged),
        frames=frames_written,
        shards=len(shard_files),
        duplicate_cells=len(duplicated_cells),
        incomplete_cells=incomplete,
    )
