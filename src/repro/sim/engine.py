"""Minimal discrete-event simulation engine.

A deliberately small, dependency-free core: a time-ordered event queue with
stable FIFO tie-breaking and O(log n) schedule/cancel.  Protocol state
machines register callbacks; the engine owns nothing else (no processes,
no resources) — the checkpointing protocols are *explicit* state machines,
which keeps their failure-handling logic auditable against the paper.

Cancellation uses the standard lazy-deletion idiom: :meth:`Engine.cancel`
marks the event; the main loop skips dead entries.  This keeps the heap
simple and is O(1) per cancel.

Determinism: two events at the same timestamp fire in scheduling order
(monotonic sequence number), so simulations are bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "Engine"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: (time, sequence)."""

    time: float
    seq: int
    callback: Callable[["Engine", "Event"], None] = field(compare=False)
    #: Free-form payload for the callback (e.g. node id).
    payload: Any = field(default=None, compare=False)
    #: Category tag for introspection/tracing ("failure", "phase-end", ...).
    kind: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class Engine:
    """Time-ordered event loop.

    Examples
    --------
    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(2.0, lambda e, ev: hits.append(ev.time), kind="a")  # doctest: +ELLIPSIS
    Event(...)
    >>> eng.run()
    >>> hits
    [2.0]
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        #: Number of events executed (diagnostics / perf counters).
        self.executed: int = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[["Engine", Event], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule ``callback(engine, event)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        event = Event(float(time), next(self._seq), callback, payload, kind)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["Engine", Event], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule relative to the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.now + delay, callback, payload, kind)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = event.time
            self.executed += 1
            event.callback(self, event)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue empties, ``until`` is reached, or the budget.

        ``until`` advances the clock to exactly ``until`` if the simulation
        outlives it.  ``max_events`` guards against runaway state machines.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        try:
            while not self._stopped:
                if self.executed >= budget:
                    raise SimulationError(
                        f"event budget exhausted ({max_events} events); "
                        "likely a protocol state-machine livelock"
                    )
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event (e.g. on fatal failure)."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
