"""Cluster state: nodes, buddy groups and their recovery bookkeeping.

The DES tracks, for every buddy group, whether it is *at risk* — i.e. a
member failed and the replacement has not yet re-received every checkpoint
image it is responsible for.  A further failure of another member during
that window is **fatal** (§III-C/§V-C); a repeat failure of the recovering
node itself merely restarts its recovery (the surviving members still hold
every image — the model ignores this second-order event, the simulator
handles it).

Node lifecycle::

    HEALTHY --failure--> DOWN --(downtime D)--> RESTORING
            <------------- risk window ends ----------- AT_RISK...

The cluster is protocol-agnostic; durations of each stage come from the
protocol state machine that drives it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ParameterError, SimulationError
from .topology import GroupAssignment

__all__ = ["NodeState", "GroupStatus", "Cluster"]


class NodeState(enum.Enum):
    HEALTHY = "healthy"
    #: Failed, replacement not yet restored (within downtime + recovery).
    DOWN = "down"
    #: Replacement running but group images not fully re-replicated.
    AT_RISK = "at-risk"


@dataclass
class GroupStatus:
    """Risk bookkeeping of one buddy group."""

    index: int
    members: tuple[int, ...]
    #: Node currently recovering, or None when the group is safe.
    recovering: int | None = None
    #: Absolute end time of the current risk window (valid iff recovering).
    risk_end: float = 0.0
    #: Number of failures this group has absorbed.
    failures: int = 0
    #: Cumulative time spent at risk (for reporting).
    risk_time: float = 0.0
    _risk_start: float = field(default=0.0, repr=False)

    @property
    def at_risk(self) -> bool:
        return self.recovering is not None


class Cluster:
    """Node states plus group risk windows over a :class:`GroupAssignment`."""

    def __init__(self, assignment: GroupAssignment):
        self.assignment = assignment
        self.n_nodes = assignment.n_nodes
        self.states = [NodeState.HEALTHY] * self.n_nodes
        self.groups = [
            GroupStatus(index=i, members=members)
            for i, members in enumerate(assignment.groups)
        ]
        self.total_failures = 0

    # ------------------------------------------------------------------
    def group_of(self, node: int) -> GroupStatus:
        return self.groups[self.assignment.group_of(node)]

    def on_failure(self, node: int, now: float, risk_duration: float) -> bool:
        """Register a failure at ``now``.

        Returns ``True`` if the failure is **fatal** (another member of the
        group is still within its risk window).  Otherwise opens/extends
        the group's risk window to ``now + risk_duration``.
        """
        if not 0 <= node < self.n_nodes:
            raise ParameterError(f"node {node} out of range")
        if risk_duration < 0:
            raise ParameterError("risk_duration must be >= 0")
        group = self.group_of(node)
        group.failures += 1
        self.total_failures += 1
        if group.at_risk and now > group.risk_end:
            # The window expired but no explicit close arrived (lazy
            # expiry keeps the cluster correct standalone; the DES also
            # schedules explicit risk-end events for state reporting).
            self.on_risk_end(group.recovering, group.risk_end)
        if group.at_risk and group.recovering != node:
            # Second distinct member lost while under-replicated: the only
            # remaining copies of some image just vanished.
            return True
        if not group.at_risk:
            group._risk_start = now
        group.recovering = node
        group.risk_end = now + risk_duration
        self.states[node] = NodeState.DOWN
        return False

    def on_restored(self, node: int) -> None:
        """Replacement node is running (post D+R) but images still pending."""
        if self.states[node] is not NodeState.DOWN:
            raise SimulationError(f"node {node} restored while {self.states[node]}")
        self.states[node] = NodeState.AT_RISK

    def on_risk_end(self, node: int, now: float) -> None:
        """Risk window closed: group fully re-replicated."""
        group = self.group_of(node)
        if group.recovering != node:
            raise SimulationError(
                f"risk window closed for {node} but group recovering "
                f"{group.recovering}"
            )
        group.risk_time += now - group._risk_start
        group.recovering = None
        self.states[node] = NodeState.HEALTHY

    # ------------------------------------------------------------------
    def at_risk_groups(self) -> list[GroupStatus]:
        return [g for g in self.groups if g.at_risk]

    def abort_risk_windows(self, now: float) -> None:
        """Close all open windows (end of simulation bookkeeping)."""
        for group in self.groups:
            if group.at_risk:
                group.risk_time += now - group._risk_start
                self.states[group.recovering] = NodeState.HEALTHY
                group.recovering = None

    def describe(self) -> str:
        healthy = sum(1 for s in self.states if s is NodeState.HEALTHY)
        return (
            f"Cluster(n={self.n_nodes}, groups={len(self.groups)}, "
            f"healthy={healthy}, failures={self.total_failures})"
        )
