"""Declarative campaign specs: one serializable object, one entry point.

Before this module, *describing* a campaign was smeared across ~15
executor kwargs, CLI flags, preset tuples and hand-built manifest dicts —
every new capability widened three surfaces at once.  A
:class:`CampaignSpec` collapses them into one frozen, versioned,
JSON-round-trippable value with two halves:

* the **grid** — *what to simulate*: a
  :class:`~repro.sim.campaign.CampaignConfig` (protocols × M × φ,
  platform parameters, work target, replicas, seed, failure law);
* the **policy** — *how to execute it*: an :class:`ExecutionPolicy`
  (backend choice including the distributed queue/worker/lease
  parameters, sink mode, replica controller, chunking).

Deliberately **not** in the spec: the results path.  A spec describes a
campaign; *where one particular execution lands* is an argument to
:meth:`Campaign.run`, so the same spec object can drive a fresh run, a
resume, and a fleet of queue workers without mutation.

The split mirrors the checkpoint-placement literature's separation of
*policy* from *mechanism*: the executor/backends/sinks are mechanism, the
spec is the policy object handed to them.

Serialisation discipline (mirrors the :mod:`repro.io` envelope rules):
``to_dict`` emits ``{"format": "repro-campaign-spec", "version": 1, ...}``;
``from_dict`` validates the format, gates on declared version, rejects
unknown fields with actionable messages, and applies defaults for omitted
optional ones — so hand-written spec files stay terse and files written
by newer library versions fail loudly instead of silently mis-loading.
``from_dict(to_dict(spec)) == spec`` holds exactly (value equality,
including failure laws and controllers).

Identity vs. description
------------------------
Two executions of one campaign may legitimately differ in worker count,
chunking, or queue wiring without changing a byte of output — those
policy fields are *volatile*.  :meth:`CampaignSpec.identity` resets them
to defaults; :meth:`CampaignSpec.fingerprint` is the identity's dict form
and is what results-file manifests and queue manifests store.  Drift
detection on resume/join is therefore literally spec inequality:
``CampaignSpec.from_dict(stored) != spec.identity()``.

The façade
----------
:class:`Campaign` is the one public entry point::

    from repro.sim import Campaign, CampaignSpec, ExecutionPolicy

    spec = CampaignSpec.load("sweep.json")          # or a preset: Campaign("smoke")
    execution = Campaign(spec).run("results.jsonl")  # fresh run
    Campaign(spec).resume("results.jsonl")           # finish an interrupted one
    print(Campaign(spec).report("results.jsonl"))    # offline, zero re-simulation

Queue workers run the same spec with ``policy.queue`` set; any machine
can then ``Campaign(spec).merge("results.jsonl")`` the shards.  The
legacy kwarg APIs (``run_campaign``, ``execute_campaign(config, ...)``)
survive as thin shims that build a spec and emit a ``DeprecationWarning``.
"""

from __future__ import annotations

import json
import numbers
import pathlib
from dataclasses import dataclass, replace
from typing import Any, Callable

from ..errors import ParameterError
from .adaptive import FixedReplicas, ReplicaController, controller_from_dict
from .campaign import CampaignCell, CampaignConfig
from .distributions import distribution_from_dict
from .sinks import SINK_MODES

__all__ = [
    "SPEC_FORMAT",
    "SPEC_VERSION",
    "STORE_MODES",
    "CAMPAIGN_BACKENDS",
    "ExecutionPolicy",
    "CampaignSpec",
    "Campaign",
]

#: How a campaign uses a results store (:mod:`repro.store`): ``"off"``
#: ignores it, ``"read"`` consults it without publishing, ``"read-write"``
#: (the default whenever a store is configured) consults and publishes.
#: All three are *volatile*: they cannot change a single output byte,
#: only how many simulations it costs to produce them.
STORE_MODES = ("off", "read", "read-write")

#: Simulation engines a campaign can run on: ``"des"`` (the per-event
#: discrete-event simulator, the historical default) or ``"vectorized"``
#: (:mod:`repro.sim.vectorized` — whole cells as numpy batches via the
#: renewal closed forms, with a per-cell scalar fallback).  NOT volatile:
#: the engines are statistically equivalent but not byte-identical, so
#: the backend participates in identity/fingerprints and a resume or
#: queue join with a different backend is refused as drift.
CAMPAIGN_BACKENDS = ("des", "vectorized")

SPEC_FORMAT = "repro-campaign-spec"
#: Written version.  Readers gate on each object's declared version, so a
#: future shape change bumps this and keeps reading older spellings.
SPEC_VERSION = 1
_READ_VERSIONS = frozenset({1})

#: Policy fields that cannot change campaign *output* — reset by
#: :meth:`CampaignSpec.identity`, excluded from fingerprints, and
#: therefore free to differ between a run and its resume or between
#: workers joining one queue.
_VOLATILE_POLICY_FIELDS = {
    "workers": 1,
    "chunk_size": None,
    "queue": None,
    "worker_id": None,
    "lease_timeout": 60.0,
    "poll_interval": 0.5,
    "worker_processes": 1,
    "store": None,
    "store_mode": "read-write",
}


def _check_number(name: str, value: Any, *, positive: bool) -> float:
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ParameterError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if positive and value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return value


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign executes: backend, sink, replica control, chunking.

    Every field has the historical default, so ``ExecutionPolicy()`` is
    the exact serial path (in-process, ordered sink, fixed replicas).
    Validation happens at construction — *before* any results file is
    touched — so an invalid combination (the classic being ``workers=N``
    with a ``queue``) is refused here with a clear
    :class:`~repro.errors.ParameterError`, not deep inside the executor.
    """

    #: Process count: ``1`` in-process serial, ``None``/``0`` every core.
    workers: int | None = 1
    #: Grid cells per backend task; ``None`` = one (protocol, M) row.
    chunk_size: int | None = None
    #: Results-file format: ``"ordered"`` or ``"framed"``.
    sink: str = "ordered"
    #: Per-cell replica stopping rule; ``None`` = run every replica
    #: (:class:`~repro.sim.adaptive.FixedReplicas`).
    controller: ReplicaController | None = None
    #: Shared chunk-queue directory for multi-machine campaigns.
    queue: str | None = None
    #: Stable worker identity in the queue (``None`` = generated).
    worker_id: str | None = None
    #: Seconds without a lease refresh before a claim is stealable.
    lease_timeout: float = 60.0
    #: Idle polling interval while waiting for claimable chunks.
    poll_interval: float = 0.5
    #: Process-pool size *inside one distributed queue worker*:
    #: a worker with ``worker_processes=N`` runs its claimed chunk's
    #: cells across N local processes (``None``/``0`` = every core).
    #: Requires ``queue``; for single-machine campaigns use ``workers``.
    worker_processes: int | None = 1
    #: Content-addressed results-store directory (:mod:`repro.store`);
    #: ``None`` = no store.  Volatile: a store cannot change output
    #: bytes, only skip recomputing them.
    store: str | None = None
    #: How the store is used: ``"off"``, ``"read"`` or ``"read-write"``
    #: (the default).  Only meaningful when ``store`` is set.
    store_mode: str = "read-write"
    #: Simulation engine (:data:`CAMPAIGN_BACKENDS`): ``"des"`` or
    #: ``"vectorized"``.  Output-bearing (not volatile) — see
    #: :data:`CAMPAIGN_BACKENDS`.
    backend: str = "des"

    def __post_init__(self) -> None:
        if self.backend not in CAMPAIGN_BACKENDS:
            raise ParameterError(
                f"unknown backend {self.backend!r}; "
                f"known: {list(CAMPAIGN_BACKENDS)}"
            )
        if self.workers is not None:
            if (not isinstance(self.workers, numbers.Integral)
                    or isinstance(self.workers, bool) or self.workers < 0):
                raise ParameterError(
                    f"workers must be >= 0 (0/None = every core), "
                    f"got {self.workers!r}"
                )
            object.__setattr__(self, "workers", int(self.workers))
        if self.chunk_size is not None:
            if (not isinstance(self.chunk_size, numbers.Integral)
                    or isinstance(self.chunk_size, bool)
                    or self.chunk_size < 1):
                raise ParameterError(
                    f"chunk_size must be >= 1, got {self.chunk_size!r}"
                )
            object.__setattr__(self, "chunk_size", int(self.chunk_size))
        if self.sink not in SINK_MODES:
            raise ParameterError(
                f"unknown sink mode {self.sink!r}; known: {list(SINK_MODES)}"
            )
        if (self.controller is not None
                and not isinstance(self.controller, ReplicaController)):
            raise ParameterError(
                f"controller must be a ReplicaController, "
                f"got {type(self.controller).__name__}"
            )
        object.__setattr__(
            self, "lease_timeout",
            _check_number("lease_timeout", self.lease_timeout, positive=True),
        )
        object.__setattr__(
            self, "poll_interval",
            _check_number("poll_interval", self.poll_interval, positive=True),
        )
        if self.worker_processes is not None:
            if (not isinstance(self.worker_processes, numbers.Integral)
                    or isinstance(self.worker_processes, bool)
                    or self.worker_processes < 0):
                raise ParameterError(
                    f"worker_processes must be >= 0 (0/None = every "
                    f"core), got {self.worker_processes!r}"
                )
            object.__setattr__(
                self, "worker_processes", int(self.worker_processes)
            )
        if self.store_mode not in STORE_MODES:
            raise ParameterError(
                f"unknown store mode {self.store_mode!r}; "
                f"known: {list(STORE_MODES)}"
            )
        if self.store is not None:
            object.__setattr__(self, "store", str(self.store))
        if self.queue is None and self.worker_processes != 1:
            raise ParameterError(
                f"worker_processes={self.worker_processes} sizes the "
                "in-machine pool of a *distributed* queue worker; for a "
                "single-machine campaign use workers=N"
            )
        if self.queue is not None:
            object.__setattr__(self, "queue", str(self.queue))
            if self.sink != "framed":
                raise ParameterError(
                    "distributed campaigns require sink='framed': workers "
                    "complete chunks in unpredictable order, which the "
                    "ordered byte-prefix format cannot represent"
                )
            if self.workers != 1:
                # None/0 (= every core) refused too: silently running a
                # single process after an explicit all-cores request
                # would hide the dropped parallelism.
                raise ParameterError(
                    f"workers={self.workers} is meaningless for a "
                    "distributed worker (workers shards a single-machine "
                    "campaign); start more workers against the same "
                    "queue, or set worker_processes=N to run this "
                    "worker's claimed cells in a local process pool"
                )
        if self.worker_id is not None:
            from .distributed import _check_worker_id

            _check_worker_id(self.worker_id)

    def to_dict(self) -> dict:
        """Plain JSON-safe dict; the controller becomes its fingerprint."""
        controller = self.controller
        fp = None if controller is None else controller.fingerprint()
        if controller is not None and fp is None \
                and not isinstance(controller, FixedReplicas):
            raise ParameterError(
                f"{type(controller).__name__} has no fingerprint and "
                "cannot be serialised into a CampaignSpec; implement "
                "ReplicaController.fingerprint() for it"
            )
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "sink": self.sink,
            "controller": fp,
            "queue": self.queue,
            "worker_id": self.worker_id,
            "lease_timeout": self.lease_timeout,
            "poll_interval": self.poll_interval,
            "worker_processes": self.worker_processes,
            "store": self.store,
            "store_mode": self.store_mode,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPolicy":
        """Inverse of :meth:`to_dict`; omitted fields take defaults."""
        if not isinstance(data, dict):
            raise ParameterError(
                f"an execution policy must be an object, "
                f"got {type(data).__name__}"
            )
        known = {
            "workers", "chunk_size", "sink", "controller", "queue",
            "worker_id", "lease_timeout", "poll_interval",
            "worker_processes", "store", "store_mode", "backend",
        }
        unknown = set(data) - known
        if unknown:
            raise ParameterError(
                f"unknown execution-policy field(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        fields = dict(data)
        if "controller" in fields:
            fields["controller"] = controller_from_dict(fields["controller"])
        return cls(**fields)


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, serializable campaign description: grid ⊕ policy.

    Construction normalises the grid (protocol specs become their keys,
    axis values become plain floats) so that equality is value equality
    and a JSON round-trip is exact, and cross-validates grid against
    policy (the controller's replica ceiling must equal the grid's
    budget; an explicit :class:`~repro.sim.adaptive.FixedReplicas`
    matching the budget normalises to ``None``, the canonical spelling of
    the default rule).
    """

    grid: CampaignConfig
    policy: ExecutionPolicy = ExecutionPolicy()

    def __post_init__(self) -> None:
        from ..core.protocols import get_protocol

        if not isinstance(self.grid, CampaignConfig):
            raise ParameterError(
                f"grid must be a CampaignConfig, got {type(self.grid).__name__}"
            )
        if not isinstance(self.policy, ExecutionPolicy):
            raise ParameterError(
                f"policy must be an ExecutionPolicy, "
                f"got {type(self.policy).__name__}"
            )
        if self.grid.results_path is not None:
            raise ParameterError(
                "a CampaignSpec describes the campaign, not one "
                "execution of it: leave grid.results_path unset and pass "
                "the path to Campaign.run(path)/resume(path)"
            )
        object.__setattr__(self, "grid", replace(
            self.grid,
            protocols=tuple(get_protocol(s).key for s in self.grid.protocols),
            m_values=tuple(float(m) for m in self.grid.m_values),
            phi_values=tuple(float(p) for p in self.grid.phi_values),
            work_target=float(self.grid.work_target),
            replicas=int(self.grid.replicas),
            seed=int(self.grid.seed),
            share_traces=bool(self.grid.share_traces),
            max_time=None if self.grid.max_time is None
            else float(self.grid.max_time),
        ))
        controller = self.policy.controller
        if controller is not None:
            if controller.max_replicas != self.grid.replicas:
                raise ParameterError(
                    f"controller.max_replicas={controller.max_replicas} "
                    f"must equal the grid's replicas={self.grid.replicas}: "
                    "the campaign's replica budget is the single source "
                    "of truth for the per-cell ceiling"
                )
            if isinstance(controller, FixedReplicas):
                object.__setattr__(
                    self, "policy", replace(self.policy, controller=None)
                )

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def config(
        self, results_path: str | pathlib.Path | None = None
    ) -> CampaignConfig:
        """The grid bound to one execution's results path."""
        if results_path is None:
            return self.grid
        return replace(self.grid, results_path=results_path)

    def controller(self) -> ReplicaController:
        """The effective replica controller (default: every replica)."""
        return self.policy.controller or FixedReplicas(self.grid.replicas)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def identity(self) -> "CampaignSpec":
        """This spec with the volatile policy fields reset to defaults.

        Two specs with equal identities produce byte-identical campaign
        files; everything the identity drops (worker counts, chunking,
        queue wiring) only changes *where and how fast* the same bytes
        are computed.  Resume and queue-join drift checks compare
        identities — spec inequality *is* the drift signal.
        """
        return replace(
            self, policy=replace(self.policy, **_VOLATILE_POLICY_FIELDS)
        )

    def fingerprint(self) -> dict:
        """The identity's dict form — what manifests store verbatim."""
        return self.identity().to_dict()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The spec as a plain JSON-safe dict (versioned envelope)."""
        grid = self.grid
        dist = grid.distribution
        return {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "grid": {
                "protocols": list(grid.protocols),
                "params": grid.base_params.to_dict(),
                "m_values": list(grid.m_values),
                "phi_values": list(grid.phi_values),
                "work_target": grid.work_target,
                "replicas": grid.replicas,
                "seed": grid.seed,
                "share_traces": grid.share_traces,
                "max_time": grid.max_time,
                "distribution": None if dist is None else dist.to_dict(),
            },
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`, with validation and defaulting.

        Version-gated like the :mod:`repro.io` envelopes: an undeclared
        or unsupported version is refused by number, never guessed at.
        Optional grid fields (``replicas``, ``seed``, ``share_traces``,
        ``max_time``, ``distribution``) and the whole ``policy`` object
        may be omitted — hand-written spec files only say what they mean.
        """
        from ..core.parameters import Parameters

        if not isinstance(data, dict) or data.get("format") != SPEC_FORMAT:
            raise ParameterError(
                f"not a {SPEC_FORMAT} object (format="
                f"{data.get('format')!r})" if isinstance(data, dict)
                else f"a campaign spec must be an object, "
                     f"got {type(data).__name__}"
            )
        version = data.get("version")
        if version not in _READ_VERSIONS:
            raise ParameterError(
                f"unsupported campaign-spec version {version!r} "
                f"(this library reads versions {sorted(_READ_VERSIONS)})"
            )
        unknown = set(data) - {"format", "version", "grid", "policy"}
        if unknown:
            raise ParameterError(
                f"unknown campaign-spec field(s): {sorted(unknown)}; "
                "known: grid, policy"
            )
        grid = data.get("grid")
        if not isinstance(grid, dict):
            raise ParameterError(
                "campaign spec is missing its 'grid' object"
            )
        known = {
            "protocols", "params", "m_values", "phi_values", "work_target",
            "replicas", "seed", "share_traces", "max_time", "distribution",
        }
        unknown = set(grid) - known
        if unknown:
            raise ParameterError(
                f"unknown grid field(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        missing = {"protocols", "params", "m_values", "phi_values",
                   "work_target"} - set(grid)
        if missing:
            raise ParameterError(f"grid is missing field(s): {sorted(missing)}")
        dist = grid.get("distribution")
        config = CampaignConfig(
            protocols=tuple(grid["protocols"]),
            base_params=Parameters.from_mapping(grid["params"]),
            m_values=tuple(grid["m_values"]),
            phi_values=tuple(grid["phi_values"]),
            work_target=grid["work_target"],
            replicas=grid.get("replicas", 5),
            seed=grid.get("seed", 777),
            share_traces=bool(grid.get("share_traces", False)),
            max_time=grid.get("max_time"),
            distribution=None if dist is None else distribution_from_dict(dist),
        )
        policy = ExecutionPolicy.from_dict(data.get("policy", {}))
        return cls(grid=config, policy=policy)

    def to_json(self) -> str:
        """The spec as pretty-printed JSON (``campaign --dump-spec``)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | pathlib.Path) -> None:
        """Write the spec as a JSON file loadable by :meth:`load`."""
        pathlib.Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "CampaignSpec":
        """Read a spec JSON file (``campaign --spec FILE``)."""
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise ParameterError(f"{path}: cannot read spec file ({exc})") from exc
        except json.JSONDecodeError as exc:
            raise ParameterError(f"{path}: invalid spec JSON ({exc})") from exc
        try:
            return cls.from_dict(data)
        except ParameterError as exc:
            raise ParameterError(f"{path}: {exc}") from exc

    # ------------------------------------------------------------------
    @classmethod
    def from_legacy_kwargs(
        cls,
        config: CampaignConfig,
        *,
        workers: int | None = 1,
        chunk_size: int | None = None,
        sink: str = "ordered",
        controller: ReplicaController | None = None,
        queue: str | pathlib.Path | None = None,
        worker_id: str | None = None,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.5,
    ) -> "CampaignSpec":
        """Build a spec from the pre-spec kwarg surface (the shim path).

        ``config.results_path`` is allowed here (the legacy config
        carried it); callers pass it to :meth:`Campaign.run` separately.
        """
        grid = replace(config, results_path=None) \
            if config.results_path is not None else config
        return cls(
            grid=grid,
            policy=ExecutionPolicy(
                workers=workers,
                chunk_size=chunk_size,
                sink=sink,
                controller=controller,
                queue=None if queue is None else str(queue),
                worker_id=worker_id,
                lease_timeout=lease_timeout,
                poll_interval=poll_interval,
            ),
        )


class Campaign:
    """The façade: runs, resumes, reports, merges — and opens sessions.

    :meth:`run`/:meth:`resume` execute to completion; :meth:`session`
    opens the same execution as a
    :class:`~repro.sim.executor.CampaignSession` event stream (iterate,
    poll progress, subscribe consumers) for callers that want to watch
    the campaign instead of waiting for it.

    Construct from a :class:`CampaignSpec` or a preset name
    (``Campaign("smoke")`` resolves through
    :data:`repro.experiments.scenarios.CAMPAIGN_PRESETS`).  The façade is
    stateless between calls except for remembering the last execution
    (:attr:`execution`) and results path, which :meth:`report` uses when
    called with no argument.
    """

    def __init__(self, spec: "CampaignSpec | str"):
        if isinstance(spec, str):
            from ..experiments.scenarios import get_campaign_preset

            spec = get_campaign_preset(spec).spec()
        if not isinstance(spec, CampaignSpec):
            raise ParameterError(
                f"Campaign takes a CampaignSpec or a preset name, "
                f"got {type(spec).__name__}"
            )
        self.spec = spec
        #: The last :class:`~repro.sim.executor.CampaignExecution`.
        self.execution = None
        self._results_path: pathlib.Path | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        results_path: str | pathlib.Path | None = None,
        *,
        on_cell: Callable[[CampaignCell], None] | None = None,
        store=None,
    ):
        """Execute the campaign (truncating ``results_path`` if given).

        ``store`` — a :class:`~repro.store.CampaignStore` or store
        directory — overrides ``policy.store`` for this execution, like
        the results path a per-execution argument: cells already
        warehoused are served instead of simulated, fresh cells are
        published after their sink append.
        """
        return self._execute(results_path, resume=False, on_cell=on_cell,
                             store=store)

    def resume(
        self,
        results_path: str | pathlib.Path,
        *,
        on_cell: Callable[[CampaignCell], None] | None = None,
        store=None,
    ):
        """Finish an interrupted campaign without re-running done cells."""
        return self._execute(results_path, resume=True, on_cell=on_cell,
                             store=store)

    def session(
        self,
        results_path: str | pathlib.Path | None = None,
        *,
        resume: bool = False,
        on_cell: Callable[[CampaignCell], None] | None = None,
        store=None,
        consumers=(),
    ):
        """Open a :class:`~repro.sim.executor.CampaignSession`.

        The event-stream view of this campaign: iterate
        ``session.events()`` to execute it cell by cell, poll
        ``session.progress()`` from any thread, attach extra
        :class:`~repro.sim.events.EventConsumer` subscribers via
        ``consumers=``.  :meth:`run`/:meth:`resume` are this, drained.
        """
        from .executor import CampaignSession

        return CampaignSession(
            self.spec, results_path=results_path, resume=resume,
            on_cell=on_cell, store=store, consumers=consumers,
        )

    def _execute(self, results_path, *, resume, on_cell, store=None):
        session = self.session(
            results_path, resume=resume, on_cell=on_cell, store=store,
        )
        execution = session.run()
        self.execution = execution
        # Track the *last* execution's persistence — including clearing
        # it, so report() after a later unpersisted run renders that
        # run's in-memory cells instead of a stale file.
        self._results_path = (
            None if results_path is None else pathlib.Path(results_path)
        )
        return execution

    # ------------------------------------------------------------------
    @property
    def cells(self) -> tuple[CampaignCell, ...]:
        """The last execution's cells (raises before any run)."""
        if self.execution is None:
            raise ParameterError(
                "no execution yet: call Campaign.run()/resume() first"
            )
        return self.execution.cells

    def report(self, results_path: str | pathlib.Path | None = None) -> str:
        """Render the campaign's results, with zero re-simulation.

        With a path (or after a persisted run) this streams the results
        file through :func:`repro.experiments.report.campaign_report`;
        after an unpersisted run it renders the in-memory cells.
        """
        path = results_path or self._results_path
        if path is not None:
            from ..experiments.report import campaign_report

            return campaign_report(path)
        from .campaign import cells_table

        return cells_table(self.cells) + self.execution.report.describe() + "\n"

    def merge(
        self,
        out_path: str | pathlib.Path,
        *,
        partial: bool = False,
    ):
        """Merge a queue campaign's worker shards into one results file."""
        if self.spec.policy.queue is None:
            raise ParameterError(
                "merge needs a queue campaign: this spec's policy has no "
                "queue directory"
            )
        from .distributed import merge_shards

        return merge_shards(
            self.spec.policy.queue, out_path, require_complete=not partial
        )
