"""Campaign result sinks: how raw runs land on disk, and how they resume.

A sink is the durability consumer of the result-event pipeline: the
:class:`~repro.sim.events.SinkWriter` consumer feeds every finished
``backend``/``store`` cell from the event bus into a
:class:`ResultSink` (``resume`` cells are skipped — their bytes are
already in the recovered file), and the sink decides the on-disk
format:

* :class:`OrderedJsonlSink` — plain result envelopes in strict grid
  order.  The results file is an exact byte prefix of the serial file at
  all times (the historical format), which is the strongest possible
  reproducibility statement but serialises output behind the slowest
  in-flight cell.
* :class:`FramedJsonlSink` — framed envelopes
  (:class:`repro.io.ResultFrame`: cell index + replica + file-wide
  sequence number) appended the moment a cell completes, in *completion*
  order.  No head-of-line blocking; resume reconstructs per-cell
  completion from the framing alone, so arbitrary truncation recovers
  exactly like the ordered sink does.
* :class:`WorkerShardSink` — a distributed worker's private framed shard
  (:mod:`repro.sim.distributed`); re-opens instead of truncating, since a
  shard accumulates across worker restarts and the *queue* tracks which
  cells are complete.
* :class:`NullSink` — no persistence (campaigns without a results path).

Both persistent sinks implement ``recover``: scan an existing file,
identity-check every intact record against the campaign grid (protocol,
M, effective φ, per-replica seed, platform size, workload), truncate any
torn trailing cell, and report which cells are already complete.  A file
the campaign cannot have written is refused, never truncated.

Writes are cell-atomic — one ``write``+``flush`` per cell — so an
interrupted campaign tears at most the trailing cell, which is exactly
the damage ``recover`` knows how to undo.
"""

from __future__ import annotations

import pathlib
from abc import ABC, abstractmethod

from ..errors import ParameterError
from .adaptive import ReplicaController, stop_count
from .backends import replica_seed
from .campaign import CampaignConfig
from .results import DesResult

__all__ = [
    "ResultSink",
    "NullSink",
    "OrderedJsonlSink",
    "FramedJsonlSink",
    "WorkerShardSink",
    "make_sink",
    "SINK_MODES",
]

#: The sink modes the executor (and ``campaign --sink``) accepts.
SINK_MODES = ("ordered", "framed")


class ResultSink(ABC):
    """Receives finished cells; owns the results file and its recovery.

    ``ordered`` declares the contract with the executor: an ordered sink
    must be fed cells in grid order (the executor buffers out-of-order
    completions), an unordered one wants them the moment they finish.
    """

    #: Must cells be emitted in grid order?
    ordered: bool = True
    #: The results file (``None`` for :class:`NullSink`).
    path: pathlib.Path | None = None

    @abstractmethod
    def emit(self, plan, results: list[DesResult]) -> None:
        """Persist one finished cell's replica results."""

    def begin(self) -> None:
        """Start a fresh campaign: truncate — a campaign owns its file."""
        if self.path is not None:
            self.path.write_text("")

    def recover(
        self,
        config: CampaignConfig,
        plans: list,
        controller: ReplicaController,
        trusted: bool,
    ) -> dict[int, list[DesResult]]:
        """Resume: recover completed cells (by plan index) from the file.

        Truncates the file past the last complete cell so appends continue
        cleanly, and positions the sink's internal state (e.g. the framed
        sequence counter) to match.  Raises :class:`ParameterError` rather
        than touch a file this campaign cannot have written.
        """
        return {}


class NullSink(ResultSink):
    """No persistence; recovery finds nothing.

    Still honours the requested ordering contract so ``sink="framed"``
    without a results path keeps its no-head-of-line-blocking ``on_cell``
    behaviour instead of silently reverting to grid-order buffering.
    """

    def __init__(self, ordered: bool = True):
        self.ordered = ordered

    def emit(self, plan, results) -> None:  # noqa: D102 - interface impl
        pass


def _refuse_unrecognisable(path: pathlib.Path, trusted: bool) -> None:
    """A non-empty file with zero intact records could be *anything* (a
    pointed-at notes file, a results file corrupted from byte 0).  Unless
    our own manifest vouches for it (``trusted`` — e.g. a campaign
    interrupted mid-first-record), refuse rather than wipe it."""
    if not trusted and path.stat().st_size > 0:
        raise ParameterError(
            f"{path}: no intact campaign records found; refusing to "
            "resume over a file this campaign cannot have written "
            "(delete it, or rerun without resume to start over)"
        )


def _check_identity(
    path: pathlib.Path,
    where: str,
    res: DesResult,
    plan,
    config: CampaignConfig,
    replica: int,
) -> None:
    """Refuse any intact record that does not match the campaign grid.

    Applied to *every* record — including a partial trailing cell about to
    be truncated — before the file is touched, so a foreign file is
    refused rather than destroyed and resuming under changed settings
    cannot mix two campaigns.
    """
    meta = res.meta
    expected_seed = replica_seed(config, replica)
    if (meta.get("protocol") != plan.protocol
            or float(meta.get("M", float("nan"))) != plan.M
            or float(meta.get("phi", float("nan"))) != plan.effective_phi
            or meta.get("seed") != expected_seed
            or meta.get("n") != config.base_params.n
            or res.work_target != config.work_target):
        raise ParameterError(
            f"{path}: {where} holds "
            f"({meta.get('protocol')}, M={meta.get('M')}, "
            f"phi={meta.get('phi')}, seed={meta.get('seed')}, "
            f"n={meta.get('n')}, work_target={res.work_target}) but "
            f"the campaign grid expects ({plan.protocol}, M={plan.M}, "
            f"phi={plan.effective_phi}, seed={expected_seed}, "
            f"n={config.base_params.n}, "
            f"work_target={config.work_target}); "
            "refusing to resume a different campaign's file"
        )


class OrderedJsonlSink(ResultSink):
    """Plain result envelopes in strict grid order (the historical format).

    The file is an exact byte prefix of the serial file at all times;
    recovery is positional (record ``i`` belongs to cell ``i //
    replicas``), which requires the fixed-replica controller — the
    executor refuses adaptive control on this sink.
    """

    ordered = True

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)

    def emit(self, plan, results) -> None:
        from .. import io as repro_io

        repro_io.save_results(results, self.path, append=True)

    def recover(self, config, plans, controller, trusted):
        from .. import io as repro_io

        loaded: list[DesResult] = []
        offsets: list[int] = []
        for result, end in repro_io.scan_results(self.path):
            if not isinstance(result, DesResult):
                raise ParameterError(
                    f"{self.path}: cannot resume: found a "
                    f"{type(result).__name__} record where raw DES runs "
                    "were expected"
                )
            loaded.append(result)
            offsets.append(end)

        if not loaded:
            _refuse_unrecognisable(self.path, trusted)

        if len(loaded) > len(plans) * config.replicas:
            raise ParameterError(
                f"{self.path}: holds {len(loaded)} records but the "
                f"campaign grid only produces "
                f"{len(plans) * config.replicas}; refusing to resume a "
                "different campaign's file"
            )
        for pos, res in enumerate(loaded):
            _check_identity(
                self.path, f"record {pos}", res,
                plans[pos // config.replicas], config, pos % config.replicas,
            )

        n_cells = len(loaded) // config.replicas
        done = {
            plans[i].index: loaded[i * config.replicas:(i + 1) * config.replicas]
            for i in range(n_cells)
        }
        keep = offsets[n_cells * config.replicas - 1] if n_cells else 0
        with self.path.open("r+b") as fh:
            fh.truncate(keep)
        return done


class FramedJsonlSink(ResultSink):
    """Framed envelopes in completion order (no head-of-line blocking).

    Each record carries its cell index, replica index and a contiguous
    file-wide sequence number, so the file tolerates any cell completion
    order while recovery can still prove which cells are whole.  One cell
    is one atomic append (all its frames in a single write), so torn
    writes only ever affect the trailing cell group.
    """

    ordered = False

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._seq = 0

    def begin(self) -> None:
        super().begin()
        self._seq = 0

    def emit(self, plan, results) -> None:
        from .. import io as repro_io

        lines = [
            repro_io.dump_frame(
                res, cell=plan.index, replica=r, seq=self._seq + r
            )
            for r, res in enumerate(results)
        ]
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        self._seq += len(results)

    def recover(self, config, plans, controller, trusted):
        from .. import io as repro_io

        frames: list = []
        ends: list[int] = []
        for frame, end in repro_io.scan_frames(self.path):
            frames.append(frame)
            ends.append(end)

        if not frames:
            _refuse_unrecognisable(self.path, trusted)
            self._seq = 0
            with self.path.open("r+b") as fh:
                fh.truncate(0)
            return {}

        # Frame invariants: the sequence counter is contiguous from 0 and
        # every (cell, replica) pair is in range — an append under this
        # configuration cannot produce anything else, so violations mean a
        # foreign or hand-edited file.
        for pos, frame in enumerate(frames):
            if frame.seq != pos:
                raise ParameterError(
                    f"{self.path}: frame {pos} carries sequence number "
                    f"{frame.seq} (expected {pos}); refusing to resume a "
                    "reordered or foreign frames file"
                )
            if frame.cell >= len(plans):
                raise ParameterError(
                    f"{self.path}: frame {pos} names cell {frame.cell} but "
                    f"the campaign grid only has {len(plans)} cells; "
                    "refusing to resume a different campaign's file"
                )
            if frame.replica >= config.replicas:
                raise ParameterError(
                    f"{self.path}: frame {pos} names replica "
                    f"{frame.replica} but the campaign runs at most "
                    f"{config.replicas}; refusing to resume a different "
                    "campaign's file"
                )
            if not isinstance(frame.result, DesResult):
                raise ParameterError(
                    f"{self.path}: cannot resume: frame {pos} holds a "
                    f"{type(frame.result).__name__} record where raw DES "
                    "runs were expected"
                )
            _check_identity(
                self.path, f"frame {pos}", frame.result,
                plans[frame.cell], config, frame.replica,
            )

        # Group into cell runs: frames of one cell are contiguous (cell
        # appends are atomic) with replicas counting up from 0, and no
        # cell appears twice.
        groups: list[tuple[int, list[DesResult], int]] = []  # (cell, results, start)
        seen: set[int] = set()
        pos = 0
        while pos < len(frames):
            cell = frames[pos].cell
            if cell in seen:
                raise ParameterError(
                    f"{self.path}: frame {pos} reopens cell {cell}, which "
                    "an earlier frame group already wrote; refusing to "
                    "resume a corrupt frames file"
                )
            seen.add(cell)
            start = ends[pos - 1] if pos else 0
            results: list[DesResult] = []
            while pos < len(frames) and frames[pos].cell == cell:
                if frames[pos].replica != len(results):
                    raise ParameterError(
                        f"{self.path}: frame {pos} is replica "
                        f"{frames[pos].replica} of cell {cell} but replica "
                        f"{len(results)} was expected; refusing to resume "
                        "a corrupt frames file"
                    )
                results.append(frames[pos].result)
                pos += 1
            groups.append((cell, results, start))

        # Completeness: replay the replica controller over each group's
        # recorded wastes.  All groups but the last must be complete (an
        # atomic-append file can only tear at the tail); the last may be
        # an interrupted cell, which is dropped and re-run.
        done: dict[int, list[DesResult]] = {}
        keep = ends[-1]
        kept_frames = len(frames)
        for gi, (cell, results, start) in enumerate(groups):
            stops_at = stop_count(controller, [r.waste for r in results])
            if stops_at is not None and stops_at < len(results):
                raise ParameterError(
                    f"{self.path}: cell {cell} holds {len(results)} "
                    f"replicas but the replica controller stops it after "
                    f"{stops_at}; refusing to resume a file written under "
                    "different adaptive settings"
                )
            if stops_at == len(results):
                done[cell] = results
            elif gi == len(groups) - 1:
                keep = start  # interrupted trailing cell: drop and re-run
                kept_frames -= len(results)
            else:
                raise ParameterError(
                    f"{self.path}: cell {cell} is incomplete "
                    f"({len(results)} replicas) but later cells follow "
                    "it; cell appends are atomic, so this file was not "
                    "written by this campaign - refusing to resume"
                )

        with self.path.open("r+b") as fh:
            fh.truncate(keep)
        self._seq = kept_frames
        return done


class WorkerShardSink(FramedJsonlSink):
    """One distributed worker's framed shard (:mod:`repro.sim.distributed`).

    Same record format as :class:`FramedJsonlSink`, but the recovery
    contract is shard-local: which *cells* of the campaign are complete
    is the queue's business (done markers), not the shard's, so
    :meth:`begin` re-opens an existing shard instead of truncating it —
    it drops only a torn trailing write (the crash damage of this
    worker's own previous life) and continues the shard-local sequence.
    Whole-campaign invariants deliberately do not apply: after a restart
    this worker may re-claim the chunk it died holding and append cells
    its shard already holds intact — a benign duplicate that the merge
    step verifies and collapses.
    """

    def begin(self) -> None:
        from .. import io as repro_io

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.touch()
            self._seq = 0
            return
        keep = 0
        count = 0
        for frame, end in repro_io.scan_frames(self.path):
            if frame.seq != count:
                raise ParameterError(
                    f"{self.path}: frame {count} carries sequence number "
                    f"{frame.seq} (expected {count}); this is not a "
                    "worker shard this campaign wrote"
                )
            count += 1
            keep = end
        with self.path.open("r+b") as fh:
            fh.truncate(keep)
        self._seq = count

    def recover(self, config, plans, controller, trusted):
        raise ParameterError(
            "worker shards rejoin via begin(); completed cells are "
            "tracked by the queue's done markers, not by shard scans"
        )


def make_sink(
    mode: str, results_path: str | pathlib.Path | None
) -> ResultSink:
    """Build the sink for ``mode`` (``results_path=None`` ⇒ no-op sink)."""
    if mode not in SINK_MODES:
        raise ParameterError(
            f"unknown sink mode {mode!r}; known: {list(SINK_MODES)}"
        )
    if results_path is None:
        return NullSink(ordered=(mode == "ordered"))
    if mode == "framed":
        return FramedJsonlSink(results_path)
    return OrderedJsonlSink(results_path)
