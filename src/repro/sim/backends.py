"""Campaign execution backends: where grid cells actually run.

Backends are the *producers* of the result-event pipeline
(:mod:`repro.sim.events`): they compute replica results and nothing
else — no file writes, no store publishes, no progress bookkeeping.
:mod:`repro.sim.executor` plans a campaign as chunks of grid cells,
delegates the raw computation to a :class:`CampaignBackend`, and turns
each finished cell into the typed events every consumer (sink writer,
store publisher, progress tracker) subscribes to:

* :class:`SerialBackend` — in-process, one shared-trace cache across the
  whole grid; reproduces the historical serial execution exactly.
* :class:`ProcessPoolBackend` — chunks across worker processes, yielded
  in *completion* order so a slow cell never blocks downstream handling
  of finished ones (sinks that need grid order re-buffer themselves).
* :class:`repro.sim.vectorized.VectorizedBackend` — in-process, whole
  cells as numpy batches via the renewal closed forms instead of
  per-event simulation (``engine="vectorized"``); cells that genuinely
  need event interleaving (shared failure traces) fall back to the
  scalar DES per cell, byte-identically.

Every backend accepts an ``engine`` selector ("des" or "vectorized")
naming the per-replica simulation; the *backend* decides where cells
run, the *engine* decides how.

The interface is deliberately narrow — ``execute(config, chunks,
controller)`` yielding ``(chunk_index, per-cell results)`` — which is
what lets the multi-machine work-stealing backend
(:class:`repro.sim.distributed.DistributedBackend`) slot in without
touching the executor, the sinks or any caller: every replica seed and
shared failure trace is derived from the campaign seed and the cell's
grid coordinates alone (:func:`replica_seed`, :func:`trace_seed`), never
from execution order or worker identity, which makes any chunk
executable by any worker at any time with identical output.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import Callable, Iterator, Sequence

from ..errors import ParameterError
from .adaptive import ReplicaController
from .campaign import CampaignConfig
from .des import DesConfig, run_des
from .failures import FailureInjector, generate_trace
from .results import DesResult
from .rng import RngFactory

__all__ = [
    "CampaignBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "replica_seed",
    "trace_seed",
    "run_cell",
    "run_cell_for_engine",
]

#: Seed stride between replicas (kept identical to the historical serial
#: path so old campaigns replay bit-for-bit).
_REPLICA_SEED_STRIDE = 1000003
#: Seed offsets of the shared-trace streams: seed + 7919·r + 104729·mi.
_TRACE_REPLICA_STRIDE = 7919
_TRACE_M_STRIDE = 104729


def replica_seed(config: CampaignConfig, replica: int) -> int:
    """The DES seed of replica ``replica`` in any cell of ``config``."""
    # int() so numpy-integer campaign seeds work with RngFactory.
    return int(config.seed) + _REPLICA_SEED_STRIDE * replica


def trace_seed(config: CampaignConfig, m_index: int, replica: int) -> int:
    """The shared-failure-trace seed of grid row ``m_index``."""
    return (int(config.seed) + _TRACE_REPLICA_STRIDE * replica
            + _TRACE_M_STRIDE * m_index)


def _horizon(config: CampaignConfig) -> float:
    return config.max_time or 200.0 * config.work_target


def _cell_trace(config: CampaignConfig, plan, replica: int):
    """Regenerate the shared failure trace of (m_index, replica).

    The trace is a pure function of the campaign seed and the grid
    coordinates, so workers rebuild it locally instead of shipping
    potentially-huge arrays through the process pool.
    """
    params = config.base_params.with_updates(M=plan.M)
    factory = RngFactory(trace_seed(config, plan.m_index, replica))
    injector = FailureInjector.from_platform_mtbf(
        params.n, params.M, factory, config.distribution
    )
    return generate_trace(injector, _horizon(config))


def run_cell(
    config: CampaignConfig,
    plan,
    controller: ReplicaController,
    trace_cache: dict | None = None,
    heartbeat: Callable[[], None] | None = None,
) -> list[DesResult]:
    """Execute one grid cell's replicas (any process, any order).

    Replicas run in seed order; after each one the ``controller``'s
    incremental :class:`~repro.sim.adaptive.StopCursor` is pushed the new
    waste sample and the first stop ends the cell — the same cursor
    resume scans replay, so live and recovered decisions agree
    bit-for-bit.  A :class:`~repro.sim.adaptive.FixedReplicas` controller
    makes this exactly the historical fixed-count loop.

    ``heartbeat`` (optional) is invoked after every replica: liveness
    hooks such as the distributed backend's lease refresh need to fire
    *within* long cells, not just between them.
    """
    from ..core.protocols import get_protocol

    spec = get_protocol(plan.protocol)
    params = config.base_params.with_updates(M=plan.M)
    results: list[DesResult] = []
    cursor = controller.cursor()
    for r in range(controller.max_replicas):
        trace = None
        if config.share_traces:
            key = (plan.m_index, r)
            if trace_cache is not None and key in trace_cache:
                trace = trace_cache[key]
            else:
                trace = _cell_trace(config, plan, r)
                if trace_cache is not None:
                    trace_cache[key] = trace
        cfg = DesConfig(
            protocol=spec,
            params=params,
            phi=plan.phi,
            work_target=config.work_target,
            seed=replica_seed(config, r),
            trace=trace,
            distribution=config.distribution,
            max_time=config.max_time,
        )
        result = run_des(cfg)
        results.append(result)
        if heartbeat is not None:
            heartbeat()
        if cursor.push(result.waste):
            break
    return results


def run_cell_for_engine(
    engine: str,
    config: CampaignConfig,
    plan,
    controller: ReplicaController,
    trace_cache: dict | None = None,
    heartbeat: Callable[[], None] | None = None,
) -> list[DesResult]:
    """Run one cell on the requested simulation engine.

    ``engine="des"`` is :func:`run_cell` verbatim.  ``engine="vectorized"``
    batches the cell's replicas through the renewal closed forms
    (:mod:`repro.sim.vectorized`) *when the cell is vectorizable*;
    otherwise it falls back to the scalar DES path, producing exactly the
    bytes :func:`run_cell` would — the fallback is a per-cell decision
    (:func:`repro.sim.vectorized.cell_engine`), pure in the config and
    plan, so every worker and the store agree on it.
    """
    if engine == "des":
        return run_cell(config, plan, controller, trace_cache, heartbeat)
    from .vectorized import cell_engine, run_cell_vectorized

    if cell_engine(config, plan) == "vectorized":
        return run_cell_vectorized(config, plan, controller, heartbeat)
    return run_cell(config, plan, controller, trace_cache, heartbeat)


def _execute_chunk(
    config: CampaignConfig,
    plans: list,
    controller: ReplicaController,
    engine: str = "des",
) -> list[list[DesResult]]:
    """Worker entry point: run a chunk of cells, sharing traces within it."""
    trace_cache: dict = {}
    return [
        run_cell_for_engine(engine, config, plan, controller, trace_cache)
        for plan in plans
    ]


class CampaignBackend(ABC):
    """Executes planned chunks of grid cells and streams their results.

    Implementations yield ``(chunk_index, results)`` pairs where
    ``results[i]`` holds the replica results of ``chunks[chunk_index][i]``.
    Pairs may arrive in **any order** — consumers that need grid order
    (the ordered sink) buffer out-of-order chunks themselves.  Every chunk
    must be yielded exactly once.
    """

    @abstractmethod
    def execute(
        self,
        config: CampaignConfig,
        chunks: Sequence[list],
        controller: ReplicaController,
    ) -> Iterator[tuple[int, list[list[DesResult]]]]:
        """Run every chunk, yielding per-chunk results as they complete."""


class SerialBackend(CampaignBackend):
    """In-process execution, chunks in submission order.

    One trace cache spans the whole campaign, so each shared
    (m_index, replica) failure trace is generated exactly once — like the
    historical serial implementation.
    """

    def __init__(self, engine: str = "des"):
        self.engine = engine

    def execute(self, config, chunks, controller):
        trace_cache: dict = {}
        for index, chunk in enumerate(chunks):
            yield index, [
                run_cell_for_engine(
                    self.engine, config, plan, controller, trace_cache
                )
                for plan in chunk
            ]


def _resolve_workers(workers: int | None) -> int:
    """``None``/``0`` mean every core; anything else passes through."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    return int(workers)


class ProcessPoolBackend(CampaignBackend):
    """Chunks across worker processes, yielded in completion order.

    Workers regenerate shared traces locally (per chunk), trading a little
    recomputation for never pickling trace arrays.  Because results carry
    their chunk index, consumers needing grid order can re-sequence them,
    while out-of-order sinks stream a slow chunk's neighbours immediately.
    """

    def __init__(self, workers: int | None = None, engine: str = "des"):
        workers = _resolve_workers(workers)
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.engine = engine

    def execute(self, config, chunks, controller):
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            futures = {
                pool.submit(
                    _execute_chunk, config, chunk, controller, self.engine
                ): index
                for index, chunk in enumerate(chunks)
            }
            for future in concurrent.futures.as_completed(futures):
                yield futures[future], future.result()


def make_backend(
    workers: int | None, engine: str = "des"
) -> CampaignBackend:
    """The backend for a worker count (``1`` = in-process serial;
    ``None``/``0`` = every core, in-process if that resolves to one).

    ``engine`` selects the per-replica simulation
    (:data:`repro.sim.spec.CAMPAIGN_BACKENDS`); the in-process vectorized
    combination returns the dedicated
    :class:`~repro.sim.vectorized.VectorizedBackend`.
    """
    from .spec import CAMPAIGN_BACKENDS

    if engine not in CAMPAIGN_BACKENDS:
        raise ParameterError(
            f"unknown backend {engine!r}; expected one of {CAMPAIGN_BACKENDS}"
        )
    if workers is not None and workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    backend = ProcessPoolBackend(workers, engine)  # single resolution site
    if backend.workers == 1:
        if engine == "vectorized":
            from .vectorized import VectorizedBackend

            return VectorizedBackend()
        return SerialBackend(engine)
    return backend
