"""Simulation campaigns: protocol × parameter sweeps with persistence.

A *campaign* runs a grid of DES configurations — protocols × MTBFs ×
overheads × replicas — collects per-cell summaries, and (optionally)
persists every raw run as JSON Lines via :mod:`repro.io` so expensive
sweeps survive interruption and can be re-analysed offline.

Common-random-numbers support: with ``share_traces=True`` each
(M, replica) cell pre-generates one failure trace and replays it for
*every protocol*, so protocol differences are not drowned in sampling
noise — the standard variance-reduction technique for simulation
comparisons.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..errors import ParameterError
from .des import DesConfig, run_des
from .failures import FailureInjector, generate_trace
from .results import DesResult, MonteCarloSummary
from .rng import RngFactory

__all__ = ["CampaignConfig", "CampaignCell", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """A protocol × M × φ sweep of event simulations."""

    protocols: tuple[ProtocolSpec | str, ...]
    base_params: Parameters
    m_values: tuple[float, ...]
    phi_values: tuple[float, ...]
    work_target: float
    replicas: int = 5
    seed: int = 777
    #: Replay one failure trace per (M, replica) across all protocols.
    share_traces: bool = False
    #: Optional JSON Lines sink for every raw run.
    results_path: str | pathlib.Path | None = None
    max_time: float | None = None

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ParameterError("need at least one protocol")
        if not self.m_values or not self.phi_values:
            raise ParameterError("need at least one M and one phi value")
        if self.replicas < 1:
            raise ParameterError("replicas must be >= 1")
        if self.work_target <= 0:
            raise ParameterError("work_target must be > 0")


@dataclass(frozen=True)
class CampaignCell:
    """Aggregated outcome of one (protocol, M, φ) grid cell."""

    protocol: str
    M: float
    phi: float
    summary: MonteCarloSummary
    results: tuple[DesResult, ...] = field(repr=False, default=())

    @property
    def mean_waste(self) -> float:
        return self.summary.mean

    @property
    def success_rate(self) -> float:
        return self.summary.success_rate


def _trace_for(params: Parameters, horizon: float, seed: int):
    factory = RngFactory(seed)
    injector = FailureInjector.from_platform_mtbf(
        params.n, params.M, factory
    )
    return generate_trace(injector, horizon)


def run_campaign(config: CampaignConfig) -> list[CampaignCell]:
    """Execute the sweep; returns one :class:`CampaignCell` per grid cell.

    Cells are evaluated protocol-major so shared traces are generated once
    per (M, replica) and reused across protocols.
    """
    from .. import io as repro_io

    sink = None
    if config.results_path is not None:
        sink = pathlib.Path(config.results_path)
        sink.parent.mkdir(parents=True, exist_ok=True)
        sink.write_text("")  # truncate: a campaign owns its file

    horizon = config.max_time or 200.0 * config.work_target
    traces: dict[tuple[float, int], object] = {}
    if config.share_traces:
        for mi, m in enumerate(config.m_values):
            params = config.base_params.with_updates(M=float(m))
            for r in range(config.replicas):
                traces[(m, r)] = _trace_for(
                    params, horizon, config.seed + 7919 * r + 104729 * mi
                )

    cells: list[CampaignCell] = []
    for spec in config.protocols:
        spec = get_protocol(spec)
        for m in config.m_values:
            params = config.base_params.with_updates(M=float(m))
            for phi in config.phi_values:
                results = []
                for r in range(config.replicas):
                    cfg = DesConfig(
                        protocol=spec,
                        params=params,
                        phi=float(phi),
                        work_target=config.work_target,
                        seed=config.seed + 1000003 * r,
                        trace=traces.get((m, r)),
                        max_time=config.max_time,
                    )
                    results.append(run_des(cfg))
                if sink is not None:
                    repro_io.save_results(results, sink, append=True)
                summary = MonteCarloSummary.from_samples(
                    [res.waste for res in results],
                    successes=sum(res.succeeded for res in results),
                    meta={"protocol": spec.key, "M": float(m), "phi": float(phi)},
                )
                cells.append(CampaignCell(
                    protocol=spec.key, M=float(m), phi=float(phi),
                    summary=summary, results=tuple(results),
                ))
    return cells


def cells_table(cells: Sequence[CampaignCell]) -> str:
    """Render campaign cells as an ASCII table (CLI/report helper)."""
    from ..experiments import report

    rows = [
        [c.protocol, c.M, c.phi,
         c.mean_waste if np.isfinite(c.mean_waste) else float("nan"),
         c.success_rate]
        for c in cells
    ]
    return report.ascii_table(
        ["protocol", "M", "phi", "mean waste", "success rate"], rows,
        title="=== campaign results ===",
    )
