"""Simulation campaigns: protocol × parameter sweeps with persistence.

A *campaign* runs a grid of DES configurations — protocols × MTBFs ×
overheads × replicas — collects per-cell summaries, and (optionally)
persists every raw run as JSON Lines via :mod:`repro.io` so expensive
sweeps survive interruption and can be re-analysed offline.

This module defines the campaign *grid* (:class:`CampaignConfig`,
:class:`CampaignCell`, validation).  A grid plus an
:class:`~repro.sim.spec.ExecutionPolicy` forms a
:class:`~repro.sim.spec.CampaignSpec` — the one serializable campaign
description — and :class:`~repro.sim.spec.Campaign` is the public entry
point that runs/resumes/reports it (execution mechanism:
:mod:`repro.sim.executor`; live streaming/polling:
:meth:`~repro.sim.spec.Campaign.session` over the typed event pipeline
in :mod:`repro.sim.events`).  :func:`run_campaign` is the pre-spec legacy
API, kept as a deprecation shim that builds a spec.

Common-random-numbers support: with ``share_traces=True`` each
(M, replica) cell pre-generates one failure trace and replays it for
*every protocol*, so protocol differences are not drowned in sampling
noise — the standard variance-reduction technique for simulation
comparisons.
"""

from __future__ import annotations

import math
import numbers
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..errors import ParameterError
from .distributions import FailureDistribution
from .results import DesResult, MonteCarloSummary

__all__ = [
    "CampaignConfig",
    "CampaignCell",
    "run_campaign",
    "validate_campaign",
    "cells_table",
]


@dataclass(frozen=True)
class CampaignConfig:
    """A protocol × M × φ sweep of event simulations."""

    protocols: tuple[ProtocolSpec | str, ...]
    base_params: Parameters
    m_values: tuple[float, ...]
    phi_values: tuple[float, ...]
    work_target: float
    replicas: int = 5
    seed: int = 777
    #: Replay one failure trace per (M, replica) across all protocols.
    share_traces: bool = False
    #: Optional JSON Lines sink for every raw run.
    results_path: str | pathlib.Path | None = None
    max_time: float | None = None
    #: Node failure law; ``None`` = exponential at the node MTBF ``n·M``.
    distribution: FailureDistribution | None = None

    def __post_init__(self) -> None:
        validate_campaign(self)


def _check_axis(name: str, values: Sequence[float], *, positive: bool) -> None:
    if not values:
        raise ParameterError(f"need at least one {name} value")
    seen: set[float] = set()
    for v in values:
        v = float(v)
        if not math.isfinite(v) or v < 0 or (positive and v == 0):
            bound = "> 0" if positive else ">= 0"
            raise ParameterError(
                f"{name} values must be finite and {bound}, got {v!r}"
            )
        if v in seen:
            raise ParameterError(
                f"duplicate {name} value {v!r}: grid axes must be unique "
                "(duplicates would silently reuse one shared trace and "
                "waste replicas)"
            )
        seen.add(v)


def validate_campaign(config: CampaignConfig) -> None:
    """Reject ill-formed campaign grids with actionable messages.

    Called by :class:`CampaignConfig` on construction *and* by every
    execution entry point, so configs built through other paths (e.g.
    deserialised or duck-typed) fail loudly instead of producing an empty
    or half-meaningless sweep.
    """
    if not config.protocols:
        raise ParameterError("need at least one protocol")
    keys = [get_protocol(spec).key for spec in config.protocols]
    if len(set(keys)) != len(keys):
        raise ParameterError(f"duplicate protocols in campaign: {keys}")
    _check_axis("M", config.m_values, positive=True)
    _check_axis("phi", config.phi_values, positive=False)
    if (not isinstance(config.replicas, numbers.Integral)
            or isinstance(config.replicas, bool) or config.replicas < 1):
        raise ParameterError(
            f"replicas must be an integer >= 1, got {config.replicas!r} "
            "(a campaign with no replicas has no cells to run)"
        )
    if not math.isfinite(config.work_target) or config.work_target <= 0:
        raise ParameterError(
            f"work_target must be finite and > 0, got {config.work_target!r}"
        )
    if (not isinstance(config.seed, numbers.Integral)
            or isinstance(config.seed, bool) or config.seed < 0):
        raise ParameterError(
            f"seed must be a non-negative integer, got {config.seed!r}"
        )
    if config.max_time is not None and (
        not math.isfinite(config.max_time) or config.max_time <= 0
    ):
        raise ParameterError(
            f"max_time must be finite and > 0, got {config.max_time!r}"
        )


@dataclass(frozen=True)
class CampaignCell:
    """Aggregated outcome of one (protocol, M, φ) grid cell."""

    protocol: str
    M: float
    phi: float
    summary: MonteCarloSummary
    results: tuple[DesResult, ...] = field(repr=False, default=())

    @property
    def mean_waste(self) -> float:
        return self.summary.mean

    @property
    def success_rate(self) -> float:
        return self.summary.success_rate


def run_campaign(config: CampaignConfig, **kwargs) -> list[CampaignCell]:
    """Deprecated: execute the sweep serially, one cell per grid cell.

    .. deprecated::
        Build a :class:`~repro.sim.spec.CampaignSpec` and use
        :meth:`~repro.sim.spec.Campaign.run` instead::

            Campaign(CampaignSpec(grid=config)).run(results_path)

        Output is unchanged (cells are evaluated protocol-major, shared
        traces generated once per (M, replica)); the spec object is what
        serialises, fingerprints and scales to pools and queues.

    ``kwargs`` accepts the historical executor keywords (``workers``,
    ``sink``, ``controller``, ...) so pre-spec call sites keep working;
    they are folded into the spec's
    :class:`~repro.sim.spec.ExecutionPolicy`.
    """
    import warnings

    warnings.warn(
        "run_campaign is deprecated: build a CampaignSpec and use "
        "Campaign(spec).run(results_path)",
        DeprecationWarning, stacklevel=2,
    )
    from .executor import execute_spec
    from .spec import CampaignSpec

    resume = bool(kwargs.pop("resume", False))
    spec = CampaignSpec.from_legacy_kwargs(config, **kwargs)
    return list(execute_spec(
        spec, results_path=config.results_path, resume=resume,
    ).cells)


def cells_table(cells: Sequence[CampaignCell]) -> str:
    """Render campaign cells as an ASCII table (CLI/report helper)."""
    from ..experiments import report

    rows = [
        [c.protocol, c.M, c.phi,
         c.mean_waste if np.isfinite(c.mean_waste) else float("nan"),
         c.success_rate]
        for c in cells
    ]
    return report.ascii_table(
        ["protocol", "M", "phi", "mean waste", "success rate"], rows,
        title="=== campaign results ===",
    )
