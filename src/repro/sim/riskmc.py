"""Vectorised Monte Carlo of fatal group failures (validates Eqs. 11/16).

Buddy groups are independent and identically distributed, so instead of
simulating ``n`` nodes we simulate *many replicas of one group* and raise
the estimated per-group survival to the power ``n/g``.  That makes the
10⁶-node Exa scenario (Fig. 9) tractable on a laptop — the cost depends
only on the replica count, not on ``n``.

Chain semantics (matching the paper's §III-C/§V-C counting):

* Each node fails as a Poisson process with rate ``λ = 1/(nM)``.
* A failure opens a risk window of length ``Risk`` on its group.
* A failure of a *different* member inside the window escalates: for
  doubles it is immediately fatal; for triples it re-opens the window at
  depth 2, and a third distinct member inside *that* window is fatal.
* A repeated failure of an already-recovering node restarts the window
  (its replacement's recovery starts over) without escalating.

The state machine is evaluated simultaneously for all replicas with numpy
(one pass over the padded, time-sorted event matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import Parameters
from ..core.protocols import ProtocolSpec, get_protocol
from ..errors import ParameterError
from .results import wilson_interval
from .rng import RngFactory

__all__ = ["RiskMcConfig", "RiskMcResult", "run_risk_mc", "simulate_group_fatal"]


@dataclass(frozen=True)
class RiskMcConfig:
    """Configuration of a risk Monte Carlo estimate."""

    protocol: ProtocolSpec | str
    params: Parameters
    T: float  #: execution / platform-exploitation duration [s]
    phi: float = 0.0
    replicas: int = 200_000  #: simulated group-histories
    seed: int | None = 99
    confidence: float = 0.95
    #: Safety cap on events per group (λT is small in every paper regime).
    max_events: int = 4096

    def __post_init__(self) -> None:
        if self.T <= 0:
            raise ParameterError("T must be > 0")
        if self.replicas < 1:
            raise ParameterError("replicas must be >= 1")
        if not 0 < self.confidence < 1:
            raise ParameterError("confidence must lie in (0, 1)")


@dataclass(frozen=True)
class RiskMcResult:
    """Risk Monte Carlo outcome with model comparison hooks."""

    protocol: str
    T: float
    risk_window: float
    lam: float
    replicas: int
    group_fatal_rate: float
    group_fatal_ci: tuple[float, float]
    #: Application-level success probability ``(1 − p̂)^(n/g)``.
    success_probability: float
    #: Application success bounds induced by the group CI.
    success_ci: tuple[float, float]
    meta: dict = field(default_factory=dict)


def simulate_group_fatal(
    rng: np.random.Generator,
    *,
    group_size: int,
    lam: float,
    risk: float,
    T: float,
    replicas: int,
    max_events: int = 4096,
) -> np.ndarray:
    """Boolean fatal-flag per replica for one group configuration.

    Fully vectorised: a column-by-column sweep of the time-sorted event
    matrix updates (depth, window-end, recovering-set) for every replica
    at once.
    """
    if group_size not in (2, 3):
        raise ParameterError("group_size must be 2 or 3")
    if lam <= 0 or risk < 0 or T <= 0:
        raise ParameterError("need lam > 0, risk >= 0, T > 0")

    counts = rng.poisson(lam * T, size=(replicas, group_size))
    width = int(counts.sum(axis=1).max(initial=0))
    if width == 0:
        return np.zeros(replicas, dtype=bool)
    if width > max_events:
        raise ParameterError(
            f"λT so large that a group sees {width} events (> {max_events}); "
            "the first-order regime has long been left — raise max_events "
            "to force the computation"
        )

    times = np.full((replicas, width), np.inf)
    labels = np.full((replicas, width), -1, dtype=np.int8)
    col = np.zeros(replicas, dtype=np.int64)
    for member in range(group_size):
        k_member = counts[:, member]
        kmax = int(k_member.max(initial=0))
        if kmax == 0:
            continue
        draws = rng.uniform(0.0, T, size=(replicas, kmax))
        for j in range(kmax):
            active = k_member > j
            times[active, col[active]] = draws[active, j]
            labels[active, col[active]] = member
            col[active] += 1
    order = np.argsort(times, axis=1, kind="stable")
    times = np.take_along_axis(times, order, axis=1)
    labels = np.take_along_axis(labels, order, axis=1)

    fatal = np.zeros(replicas, dtype=bool)
    depth = np.zeros(replicas, dtype=np.int8)  # 0 safe, 1, or 2 (triples)
    window_end = np.full(replicas, -np.inf)
    rec_a = np.full(replicas, -1, dtype=np.int8)  # first recovering member
    rec_b = np.full(replicas, -1, dtype=np.int8)  # second (depth 2 only)

    for j in range(width):
        t = times[:, j]
        x = labels[:, j]
        live = np.isfinite(t) & ~fatal
        if not live.any():
            break
        inside = live & (t <= window_end)
        outside = live & ~inside

        # Outside any window: a fresh depth-1 window opens.
        depth = np.where(outside, 1, depth)
        rec_a = np.where(outside, x, rec_a)
        rec_b = np.where(outside, -1, rec_b)
        window_end = np.where(outside, t + risk, window_end)

        # Inside a window: same node restarts it; a new node escalates.
        same = inside & ((x == rec_a) | ((depth == 2) & (x == rec_b)))
        window_end = np.where(same, t + risk, window_end)

        new_member = inside & ~same
        if group_size == 2:
            fatal = fatal | new_member
        else:
            escalate = new_member & (depth == 1)
            rec_b = np.where(escalate, x, rec_b)
            depth = np.where(escalate, 2, depth)
            window_end = np.where(escalate, t + risk, window_end)
            fatal = fatal | (new_member & (depth == 2) & ~escalate)

    return fatal


def run_risk_mc(config: RiskMcConfig) -> RiskMcResult:
    """Estimate group-fatal probability and application success."""
    spec = get_protocol(config.protocol)
    params = config.params
    risk = float(np.asarray(spec.risk_window(params, config.phi)))
    lam = params.lam
    rng = RngFactory(config.seed).replica(0)
    fatal = simulate_group_fatal(
        rng,
        group_size=spec.group_size,
        lam=lam,
        risk=risk,
        T=config.T,
        replicas=config.replicas,
        max_events=config.max_events,
    )
    k_fatal = int(fatal.sum())
    p_hat = k_fatal / config.replicas
    ci = wilson_interval(k_fatal, config.replicas, config.confidence)
    n_groups = params.n / spec.group_size
    success = float((1.0 - p_hat) ** n_groups)
    success_ci = (
        float((1.0 - ci[1]) ** n_groups),
        float((1.0 - ci[0]) ** n_groups),
    )
    return RiskMcResult(
        protocol=spec.key,
        T=config.T,
        risk_window=risk,
        lam=lam,
        replicas=config.replicas,
        group_fatal_rate=p_hat,
        group_fatal_ci=ci,
        success_probability=success,
        success_ci=success_ci,
        meta={"phi": config.phi, "n": params.n, "M": params.M,
              "seed": config.seed},
    )
