"""Campaign orchestration: plan, recover, execute, stream, summarise.

:mod:`repro.sim.campaign` defines *what* a campaign is (a protocol × M × φ
grid of DES runs); this module wires together the three layers that decide
*how* one executes:

* **Planning** — the grid is flattened into a deterministic, serial-order
  list of :class:`CellPlan` entries (protocol-major, then M, then φ) and
  split into chunks of whole cells.  Every replica seed and shared failure
  trace derives from the campaign seed and the cell's grid coordinates
  alone (:mod:`repro.sim.backends`), never from execution order.
* **Backends** (:mod:`repro.sim.backends`, :mod:`repro.sim.distributed`)
  — a :class:`~repro.sim.backends.CampaignBackend` runs the chunks:
  in-process (:class:`~repro.sim.backends.SerialBackend`), across worker
  processes (:class:`~repro.sim.backends.ProcessPoolBackend`), or across
  *machines* (:class:`~repro.sim.distributed.DistributedBackend`, a
  work-stealing consumer of a shared chunk-queue directory), all
  yielding chunks in completion order.
* **Sinks** (:mod:`repro.sim.sinks`) — finished cells stream to a
  :class:`~repro.sim.sinks.ResultSink`: the in-order JSONL sink (the
  results file stays an exact byte prefix of the serial file) or the
  out-of-order *framed* sink (records land the moment a cell finishes; no
  head-of-line blocking).  Both support ``resume=True``: an existing file
  is scanned, identity-checked against the grid, truncated past the last
  complete cell, and only the remainder executes.  A sidecar manifest
  (``<results>.manifest``) fingerprints the full configuration — including
  the sink mode and any adaptive-replica settings — so resuming under
  drifted settings is refused instead of silently mixing two campaigns.
* **Replica control** (:mod:`repro.sim.adaptive`) — a
  :class:`~repro.sim.adaptive.ReplicaController` decides per cell how
  many replicas actually run.  The default
  :class:`~repro.sim.adaptive.FixedReplicas` preserves bit-identity with
  the historical serial path; :class:`~repro.sim.adaptive.AdaptiveCI`
  stops converged cells early (framed sink required, since the record
  count per cell varies).

Layer diagram (single machine, and the distributed shard-merge flow)::

    plan_cells ──► chunks ──► CampaignBackend ──► ResultSink ──► file
                               Serial/ProcessPool   Ordered/Framed  results.jsonl (+ .manifest)

    queue dir (shared filesystem)              per machine
    ┌──────────────────────────────┐     ┌──────────────────────────┐
    │ manifest.json  (fingerprint) │◄───►│ execute_campaign(queue=) │
    │ pending/  claims/  done/     │     │   DistributedBackend     │
    │   (atomic-rename claims,     │     │   claim → run → append   │
    │    lease-expiry stealing)    │     │   → done marker          │
    │ shards/worker-A.jsonl ◄──────┼─────┤   WorkerShardSink        │
    │ shards/worker-B.jsonl  ...   │     └──────────────────────────┘
    └──────────────┬───────────────┘
                   ▼ merge_shards (scan_frames + dedupe + reorder)
          results.jsonl + .manifest   — resumes/reports like any
                                        single-machine framed run

Entry points
------------
:func:`execute_campaign` runs a :class:`~repro.sim.campaign.CampaignConfig`
and returns a :class:`CampaignExecution` (cells + an
:class:`ExecutionReport` with skip/run/replica counts and timings).
:func:`run_campaign_parallel` is the convenience wrapper returning just the
cells; ``repro.sim.campaign.run_campaign`` delegates here with one
in-process worker, so the serial API is unchanged.

Example
-------
>>> from repro import DOUBLE_NBL, TRIPLE, scenarios
>>> from repro.sim.campaign import CampaignConfig
>>> from repro.sim.executor import run_campaign_parallel
>>> cfg = CampaignConfig(
...     protocols=(DOUBLE_NBL, TRIPLE),
...     base_params=scenarios.BASE.parameters(M=600.0, n=12),
...     m_values=(600.0,), phi_values=(1.0,), work_target=900.0,
...     replicas=2)
>>> cells = run_campaign_parallel(cfg, workers=2)   # doctest: +SKIP
>>> len(cells)                                      # doctest: +SKIP
2
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ParameterError
from .adaptive import FixedReplicas, ReplicaController
from .backends import CampaignBackend, make_backend, run_cell  # noqa: F401 - run_cell re-exported
from .campaign import CampaignCell, CampaignConfig, validate_campaign
from .results import DesResult, MonteCarloSummary
from .sinks import OrderedJsonlSink, ResultSink, make_sink

__all__ = [
    "CellPlan",
    "ExecutionReport",
    "CampaignExecution",
    "plan_cells",
    "execute_campaign",
    "run_campaign_parallel",
]


@dataclass(frozen=True)
class CellPlan:
    """One grid cell in deterministic execution order.

    ``index`` is the cell's position in the serial iteration (protocol-
    major, then M, then φ); all seeds derive from the grid coordinates, so
    a plan can be executed by any worker at any time with identical output.
    ``effective_phi`` is the overhead the protocol actually runs at (e.g.
    DOUBLE-BLOCKING pins φ = θmin) — it is what lands in result metadata
    and is used to validate cells when resuming.
    """

    index: int
    protocol: str
    m_index: int
    M: float
    phi: float
    effective_phi: float


@dataclass(frozen=True)
class ExecutionReport:
    """What one :func:`execute_campaign` call actually did."""

    cells_total: int
    cells_skipped: int
    cells_run: int
    workers: int
    chunk_size: int
    elapsed: float
    #: DES replicas actually executed (adaptive control may run fewer
    #: than ``cells_run × config.replicas``).
    replicas_run: int = 0
    sink: str = "ordered"

    def describe(self) -> str:
        return (
            f"{self.cells_run}/{self.cells_total} cells run "
            f"({self.cells_skipped} resumed), workers={self.workers}, "
            f"chunk={self.chunk_size}, sink={self.sink}, "
            f"replicas={self.replicas_run}, {self.elapsed:.2f}s"
        )


@dataclass(frozen=True)
class CampaignExecution:
    """Cells plus the execution report."""

    cells: tuple[CampaignCell, ...]
    report: ExecutionReport = field(repr=False)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_cells(config: CampaignConfig) -> list[CellPlan]:
    """Flatten the campaign grid into serial-order cell plans."""
    from ..core.protocols import get_protocol

    validate_campaign(config)
    plans: list[CellPlan] = []
    index = 0
    for spec in config.protocols:
        spec = get_protocol(spec)
        if spec.group_size and config.base_params.n % spec.group_size:
            raise ParameterError(
                f"params.n={config.base_params.n} must be a multiple of "
                f"{spec.key}'s group size {spec.group_size} "
                "(fail fast: every grid cell of this protocol would die)"
            )
        for mi, m in enumerate(config.m_values):
            params = config.base_params.with_updates(M=float(m))
            seen_eff: dict[float, float] = {}
            for phi in config.phi_values:
                eff = float(np.asarray(spec.effective_phi(params, float(phi))))
                if eff in seen_eff:
                    raise ParameterError(
                        f"{spec.key} pins phi={phi:g} and "
                        f"phi={seen_eff[eff]:g} to the same effective "
                        f"overhead {eff:g} at M={float(m):g}: the cells "
                        "would be bit-identical duplicates, wasting "
                        "replicas (sweep phi on a non-blocking protocol "
                        "or drop the redundant values)"
                    )
                seen_eff[eff] = float(phi)
                plans.append(CellPlan(
                    index=index, protocol=spec.key, m_index=mi,
                    M=float(m), phi=float(phi), effective_phi=eff,
                ))
                index += 1
    return plans


def _make_cell(plan: CellPlan, results: Sequence[DesResult]) -> CampaignCell:
    summary = MonteCarloSummary.from_samples(
        [res.waste for res in results],
        successes=sum(res.succeeded for res in results),
        meta={"protocol": plan.protocol, "M": plan.M, "phi": plan.phi},
    )
    return CampaignCell(
        protocol=plan.protocol, M=plan.M, phi=plan.phi,
        summary=summary, results=tuple(results),
    )


# ----------------------------------------------------------------------
# Campaign manifest
# ----------------------------------------------------------------------
def _manifest_path(sink: pathlib.Path) -> pathlib.Path:
    return sink.with_name(sink.name + ".manifest")


def _campaign_fingerprint(
    config: CampaignConfig, sink_mode: str, controller: ReplicaController
) -> dict:
    """Everything that determines a campaign's output, as plain JSON.

    Stored next to the results file so resume can refuse a config drift
    that per-record metadata cannot reveal (``work_target``,
    ``share_traces``, the failure law, the sink format, adaptive-replica
    settings, platform parameters...).
    """
    from ..core.protocols import get_protocol

    dist = config.distribution
    dist_fp = dist.fingerprint() if dist is not None else None
    return {
        "format": "repro-campaign-manifest",
        "version": 1,
        "protocols": [get_protocol(s).key for s in config.protocols],
        "params": config.base_params.describe(),
        "m_values": [float(m) for m in config.m_values],
        "phi_values": [float(p) for p in config.phi_values],
        "work_target": config.work_target,
        "replicas": int(config.replicas),
        "seed": int(config.seed),
        "share_traces": config.share_traces,
        "max_time": config.max_time,
        "distribution": dist_fp,
        "sink": sink_mode,
        "adaptive": controller.fingerprint(),
    }


def _write_manifest(
    config: CampaignConfig,
    sink: pathlib.Path,
    sink_mode: str,
    controller: ReplicaController,
) -> None:
    import json

    _manifest_path(sink).write_text(
        json.dumps(
            _campaign_fingerprint(config, sink_mode, controller),
            sort_keys=True,
        ) + "\n"
    )


def _check_manifest(
    config: CampaignConfig,
    sink: pathlib.Path,
    sink_mode: str,
    controller: ReplicaController,
) -> bool:
    """Refuse to resume when the stored fingerprint disagrees.

    Returns whether a matching manifest was found.  A missing or
    unreadable manifest (pre-manifest file, hand-copied results) returns
    False and resume falls back to the per-record checks only.  Manifests
    written before the sink/adaptive keys existed default to the ordered
    fixed-replica configuration those campaigns necessarily ran.
    """
    import json

    path = _manifest_path(sink)
    if not path.exists():
        return False
    try:
        stored = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if isinstance(stored, dict):
        stored.setdefault("sink", "ordered")
        stored.setdefault("adaptive", None)
    current = _campaign_fingerprint(config, sink_mode, controller)
    if stored != current:
        drift = sorted(
            k for k in current
            if not isinstance(stored, dict) or stored.get(k) != current[k]
        ) or sorted(set(stored) ^ set(current))
        raise ParameterError(
            f"{path}: campaign configuration changed since the results "
            f"file was written (differs in: {', '.join(drift)}); refusing "
            "to resume — rerun without resume to start over, or restore "
            "the original configuration"
        )
    return True


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = 1,
    chunk_size: int | None = None,
    resume: bool = False,
    on_cell: Callable[[CampaignCell], None] | None = None,
    sink: str = "ordered",
    controller: ReplicaController | None = None,
    backend: CampaignBackend | None = None,
    queue: str | pathlib.Path | None = None,
    worker_id: str | None = None,
    lease_timeout: float = 60.0,
    poll_interval: float = 0.5,
) -> CampaignExecution:
    """Run (or finish) a campaign; the workhorse behind every campaign API.

    Parameters
    ----------
    workers:
        Process count.  ``1`` executes in-process (no pool — identical to
        the historical serial path); ``None`` or ``0`` uses
        ``os.cpu_count()``.  Ignored when ``backend`` is given; must stay
        ``1`` with ``queue`` (a distributed worker is single-process —
        start more workers for more parallelism).
    chunk_size:
        Cells per worker task.  Default: one (protocol, M) row — i.e.
        ``len(config.phi_values)`` cells — so shared failure traces are
        generated once per chunk.
    resume:
        Recover completed cells from ``config.results_path`` instead of
        truncating it.  Requires a results path.  Not meaningful with
        ``queue`` — a queue directory is always resumable: rejoining it
        *is* the resume.
    on_cell:
        Optional progress callback, invoked per fresh cell in emission
        order: grid order under the ordered sink, completion order under
        the framed sink.
    sink:
        Results-file format: ``"ordered"`` (grid-order records, byte-
        identical to serial — the default) or ``"framed"`` (records land
        as cells complete; no head-of-line blocking).  Distributed
        campaigns are necessarily framed.
    controller:
        Per-cell replica stopping rule; default runs every replica
        (:class:`~repro.sim.adaptive.FixedReplicas`).  Adaptive control
        requires the framed sink when results are persisted.
    backend:
        Explicit :class:`~repro.sim.backends.CampaignBackend`; default is
        built from ``workers``.  Mutually exclusive with ``queue``.
    queue:
        Join a multi-machine campaign as one worker of the shared
        chunk-queue directory (:mod:`repro.sim.distributed`).  The first
        worker to arrive initialises the queue; later workers verify
        their configuration against its manifest and start claiming.
        Results stream to this worker's private framed shard inside the
        queue directory (``config.results_path`` must be ``None``; merge
        the shards afterwards with
        :func:`repro.sim.distributed.merge_shards`).  The returned
        execution holds **only the cells this worker ran** — the full
        grid lives in the merged file.
    worker_id / lease_timeout / poll_interval:
        Distributed-worker identity and queue tuning; see
        :class:`~repro.sim.distributed.DistributedBackend`.
    """
    start = time.perf_counter()
    plans = plan_cells(config)

    # Validate every argument before touching the sink: an invalid
    # workers/chunk_size/sink-mode must not cost an existing results file.
    if resume and config.results_path is None and queue is None:
        raise ParameterError("resume=True requires config.results_path")
    distributed = queue is not None
    if distributed:
        from .distributed import DistributedBackend

        if backend is not None:
            raise ParameterError(
                "queue= and backend= are mutually exclusive: the queue "
                "implies the distributed work-stealing backend"
            )
        if resume:
            raise ParameterError(
                "a queue directory is inherently resumable: rejoin it "
                "with queue=... instead of passing resume=True"
            )
        if sink != "framed":
            raise ParameterError(
                "distributed campaigns require sink='framed': workers "
                "complete chunks in unpredictable order, which the "
                "ordered byte-prefix format cannot represent"
            )
        if config.results_path is not None:
            raise ParameterError(
                "distributed workers write per-worker shards inside the "
                "queue directory; leave config.results_path unset and "
                "merge the shards with repro.sim.distributed.merge_shards "
                "(or `repro-checkpoint campaign merge`)"
            )
        if workers not in (None, 1):
            raise ParameterError(
                f"workers={workers} is meaningless for a distributed "
                "worker (each worker runs cells in-process); start more "
                "workers against the same queue instead"
            )
        backend = DistributedBackend(
            queue, worker_id=worker_id,
            lease_timeout=lease_timeout, poll_interval=poll_interval,
        )
    if backend is None:
        backend = make_backend(workers)
    resolved_workers = getattr(backend, "workers", 1)
    if chunk_size is None:
        chunk_size = len(config.phi_values)
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if controller is None:
        controller = FixedReplicas(config.replicas)
    if controller.max_replicas != config.replicas:
        raise ParameterError(
            f"controller.max_replicas={controller.max_replicas} must equal "
            f"config.replicas={config.replicas}: the campaign's replica "
            "budget is the single source of truth for the per-cell ceiling"
        )
    if distributed:
        from .distributed import ensure_queue, shard_path
        from .sinks import WorkerShardSink

        sink_obj: ResultSink = WorkerShardSink(
            shard_path(queue, backend.worker_id)
        )
    else:
        sink_obj = make_sink(sink, config.results_path)
    if controller.fingerprint() is not None and isinstance(
        sink_obj, OrderedJsonlSink
    ):
        raise ParameterError(
            "adaptive replica control varies the record count per cell, "
            "which the ordered sink's positional resume cannot represent; "
            "persist adaptive campaigns with sink='framed'"
        )

    done_results: dict[int, list[DesResult]] = {}
    if config.results_path is not None:
        path = pathlib.Path(config.results_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if resume and path.exists():
            trusted = _check_manifest(config, path, sink, controller)
            done_results = sink_obj.recover(config, plans, controller, trusted)
        else:
            sink_obj.begin()
        _write_manifest(config, path, sink, controller)

    todo = [p for p in plans if p.index not in done_results]
    chunks = [todo[i:i + chunk_size] for i in range(0, len(todo), chunk_size)]

    if distributed:
        # The chunk layout is a pure function of (config, chunk_size), so
        # every worker that passes the manifest check below computes the
        # identical list and any chunk ticket is executable by anyone.
        ensure_queue(
            pathlib.Path(queue),
            _campaign_fingerprint(config, sink, controller),
            n_chunks=len(chunks), chunk_size=chunk_size, n_cells=len(plans),
        )
        sink_obj.begin()  # rejoin this worker's shard (truncate torn tail)
    fresh: dict[int, CampaignCell] = {}
    replicas_run = 0

    def _emit(plans_chunk: list[CellPlan], chunk_results: list[list[DesResult]]):
        nonlocal replicas_run
        for plan, results in zip(plans_chunk, chunk_results):
            sink_obj.emit(plan, results)
            replicas_run += len(results)
            cell = _make_cell(plan, results)
            fresh[plan.index] = cell
            if on_cell is not None:
                on_cell(cell)

    if chunks:
        if sink_obj.ordered:
            # Re-sequence completion-order chunks so the sink sees strict
            # grid order (the results file stays an exact prefix of the
            # serial file at all times).
            pending: dict[int, list[list[DesResult]]] = {}
            next_expected = 0
            for index, chunk_results in backend.execute(config, chunks, controller):
                pending[index] = chunk_results
                while next_expected in pending:
                    _emit(chunks[next_expected], pending.pop(next_expected))
                    next_expected += 1
        else:
            for index, chunk_results in backend.execute(config, chunks, controller):
                _emit(chunks[index], chunk_results)

    done_cells = {
        index: _make_cell(plans[index], results)
        for index, results in done_results.items()
    }
    if distributed:
        # Other workers' cells live in their shards, not here: report
        # what this worker ran (grid order); merge_shards has the grid.
        cells = tuple(fresh[index] for index in sorted(fresh))
    else:
        cells = tuple(
            (done_cells | fresh)[plan.index] for plan in plans
        )
    report = ExecutionReport(
        cells_total=len(plans),
        cells_skipped=len(plans) - len(fresh) if distributed
        else len(done_cells),
        cells_run=len(fresh),
        workers=resolved_workers,
        chunk_size=chunk_size,
        elapsed=time.perf_counter() - start,
        replicas_run=replicas_run,
        sink=sink,
    )
    return CampaignExecution(cells=cells, report=report)


def run_campaign_parallel(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    resume: bool = False,
    sink: str = "ordered",
    controller: ReplicaController | None = None,
) -> list[CampaignCell]:
    """Like :func:`repro.sim.campaign.run_campaign`, but sharded across
    worker processes (default: all cores).  With the defaults — ordered
    sink, fixed replicas — output is bit-identical to the serial path;
    ``sink="framed"`` changes the results-file format (not the cells) and
    an adaptive ``controller`` may run fewer replicas per cell."""
    execution = execute_campaign(
        config, workers=workers, chunk_size=chunk_size, resume=resume,
        sink=sink, controller=controller,
    )
    return list(execution.cells)
