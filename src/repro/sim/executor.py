"""Parallel, resumable execution engine for simulation campaigns.

:mod:`repro.sim.campaign` defines *what* a campaign is (a protocol × M × φ
grid of DES runs); this module decides *how* to execute one:

* **Sharding** — the grid is flattened into a deterministic, serial-order
  list of :class:`CellPlan` entries (protocol-major, then M, then φ) and
  split into chunks of whole cells.
* **Parallelism** — chunks run across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`, ``workers`` of them).
  Every replica seed and shared failure trace is derived from the campaign
  seed and the cell's grid coordinates alone, never from execution order,
  so the parallel output is **bit-identical** to the serial path.
* **Streaming** — as cells complete, their raw :class:`~repro.sim.results.
  DesResult` replicas are appended to the campaign's JSON Lines sink via
  :mod:`repro.io` in grid order (out-of-order chunks are buffered), which
  keeps the results file an exact prefix of the serial file at all times.
* **Resume** — ``resume=True`` scans an existing results file, keeps every
  complete cell whose identity matches the grid, truncates any partial
  trailing cell, and only executes the remainder.  Interrupting a campaign
  therefore costs at most one chunk of re-execution.  A sidecar manifest
  (``<results>.manifest``) fingerprints the full configuration so resuming
  under drifted settings (different seed, workload, failure law...) is
  refused instead of silently mixing two campaigns; every intact record is
  additionally identity-checked against the grid.

Entry points
------------
:func:`execute_campaign` runs a :class:`~repro.sim.campaign.CampaignConfig`
and returns a :class:`CampaignExecution` (cells + an
:class:`ExecutionReport` with skip/run counts and timings).
:func:`run_campaign_parallel` is the convenience wrapper returning just the
cells; ``repro.sim.campaign.run_campaign`` delegates here with one
in-process worker, so the serial API is unchanged.

Example
-------
>>> from repro import DOUBLE_NBL, TRIPLE, scenarios
>>> from repro.sim.campaign import CampaignConfig
>>> from repro.sim.executor import run_campaign_parallel
>>> cfg = CampaignConfig(
...     protocols=(DOUBLE_NBL, TRIPLE),
...     base_params=scenarios.BASE.parameters(M=600.0, n=12),
...     m_values=(600.0,), phi_values=(1.0,), work_target=900.0,
...     replicas=2)
>>> cells = run_campaign_parallel(cfg, workers=2)   # doctest: +SKIP
>>> len(cells)                                      # doctest: +SKIP
2
"""

from __future__ import annotations

import concurrent.futures
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ParameterError
from .campaign import CampaignCell, CampaignConfig, validate_campaign
from .des import DesConfig, run_des
from .failures import FailureInjector, generate_trace
from .results import DesResult, MonteCarloSummary
from .rng import RngFactory

__all__ = [
    "CellPlan",
    "ExecutionReport",
    "CampaignExecution",
    "plan_cells",
    "execute_campaign",
    "run_campaign_parallel",
]

#: Seed stride between replicas (kept identical to the historical serial
#: path so old campaigns replay bit-for-bit).
_REPLICA_SEED_STRIDE = 1000003
#: Seed offsets of the shared-trace streams: seed + 7919·r + 104729·mi.
_TRACE_REPLICA_STRIDE = 7919
_TRACE_M_STRIDE = 104729


@dataclass(frozen=True)
class CellPlan:
    """One grid cell in deterministic execution order.

    ``index`` is the cell's position in the serial iteration (protocol-
    major, then M, then φ); all seeds derive from the grid coordinates, so
    a plan can be executed by any worker at any time with identical output.
    ``effective_phi`` is the overhead the protocol actually runs at (e.g.
    DOUBLE-BLOCKING pins φ = θmin) — it is what lands in result metadata
    and is used to validate cells when resuming.
    """

    index: int
    protocol: str
    m_index: int
    M: float
    phi: float
    effective_phi: float


@dataclass(frozen=True)
class ExecutionReport:
    """What one :func:`execute_campaign` call actually did."""

    cells_total: int
    cells_skipped: int
    cells_run: int
    workers: int
    chunk_size: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.cells_run}/{self.cells_total} cells run "
            f"({self.cells_skipped} resumed), workers={self.workers}, "
            f"chunk={self.chunk_size}, {self.elapsed:.2f}s"
        )


@dataclass(frozen=True)
class CampaignExecution:
    """Cells plus the execution report."""

    cells: tuple[CampaignCell, ...]
    report: ExecutionReport = field(repr=False)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_cells(config: CampaignConfig) -> list[CellPlan]:
    """Flatten the campaign grid into serial-order cell plans."""
    from ..core.protocols import get_protocol

    validate_campaign(config)
    plans: list[CellPlan] = []
    index = 0
    for spec in config.protocols:
        spec = get_protocol(spec)
        if spec.group_size and config.base_params.n % spec.group_size:
            raise ParameterError(
                f"params.n={config.base_params.n} must be a multiple of "
                f"{spec.key}'s group size {spec.group_size} "
                "(fail fast: every grid cell of this protocol would die)"
            )
        for mi, m in enumerate(config.m_values):
            params = config.base_params.with_updates(M=float(m))
            seen_eff: dict[float, float] = {}
            for phi in config.phi_values:
                eff = float(np.asarray(spec.effective_phi(params, float(phi))))
                if eff in seen_eff:
                    raise ParameterError(
                        f"{spec.key} pins phi={phi:g} and "
                        f"phi={seen_eff[eff]:g} to the same effective "
                        f"overhead {eff:g} at M={float(m):g}: the cells "
                        "would be bit-identical duplicates, wasting "
                        "replicas (sweep phi on a non-blocking protocol "
                        "or drop the redundant values)"
                    )
                seen_eff[eff] = float(phi)
                plans.append(CellPlan(
                    index=index, protocol=spec.key, m_index=mi,
                    M=float(m), phi=float(phi), effective_phi=eff,
                ))
                index += 1
    return plans


def _replica_seed(config: CampaignConfig, replica: int) -> int:
    # int() so numpy-integer campaign seeds work with RngFactory.
    return int(config.seed) + _REPLICA_SEED_STRIDE * replica


def _trace_seed(config: CampaignConfig, m_index: int, replica: int) -> int:
    return (int(config.seed) + _TRACE_REPLICA_STRIDE * replica
            + _TRACE_M_STRIDE * m_index)


def _horizon(config: CampaignConfig) -> float:
    return config.max_time or 200.0 * config.work_target


def _cell_trace(config: CampaignConfig, plan: CellPlan, replica: int):
    """Regenerate the shared failure trace of (m_index, replica).

    The trace is a pure function of the campaign seed and the grid
    coordinates, so workers rebuild it locally instead of shipping
    potentially-huge arrays through the process pool.
    """
    params = config.base_params.with_updates(M=plan.M)
    factory = RngFactory(_trace_seed(config, plan.m_index, replica))
    injector = FailureInjector.from_platform_mtbf(
        params.n, params.M, factory, config.distribution
    )
    return generate_trace(injector, _horizon(config))


def run_cell(
    config: CampaignConfig,
    plan: CellPlan,
    trace_cache: dict | None = None,
) -> list[DesResult]:
    """Execute every replica of one grid cell (any process, any order)."""
    from ..core.protocols import get_protocol

    spec = get_protocol(plan.protocol)
    params = config.base_params.with_updates(M=plan.M)
    results: list[DesResult] = []
    for r in range(config.replicas):
        trace = None
        if config.share_traces:
            key = (plan.m_index, r)
            if trace_cache is not None and key in trace_cache:
                trace = trace_cache[key]
            else:
                trace = _cell_trace(config, plan, r)
                if trace_cache is not None:
                    trace_cache[key] = trace
        cfg = DesConfig(
            protocol=spec,
            params=params,
            phi=plan.phi,
            work_target=config.work_target,
            seed=_replica_seed(config, r),
            trace=trace,
            distribution=config.distribution,
            max_time=config.max_time,
        )
        results.append(run_des(cfg))
    return results


def _make_cell(plan: CellPlan, results: Sequence[DesResult]) -> CampaignCell:
    summary = MonteCarloSummary.from_samples(
        [res.waste for res in results],
        successes=sum(res.succeeded for res in results),
        meta={"protocol": plan.protocol, "M": plan.M, "phi": plan.phi},
    )
    return CampaignCell(
        protocol=plan.protocol, M=plan.M, phi=plan.phi,
        summary=summary, results=tuple(results),
    )


def _execute_chunk(
    config: CampaignConfig, plans: list[CellPlan]
) -> list[list[DesResult]]:
    """Worker entry point: run a chunk of cells, sharing traces within it."""
    trace_cache: dict = {}
    return [run_cell(config, plan, trace_cache) for plan in plans]


# ----------------------------------------------------------------------
# Campaign manifest
# ----------------------------------------------------------------------
def _manifest_path(sink: pathlib.Path) -> pathlib.Path:
    return sink.with_name(sink.name + ".manifest")


def _campaign_fingerprint(config: CampaignConfig) -> dict:
    """Everything that determines a campaign's output, as plain JSON.

    Stored next to the results file so resume can refuse a config drift
    that per-record metadata cannot reveal (``work_target``,
    ``share_traces``, the failure law, platform parameters...).
    """
    from ..core.protocols import get_protocol

    dist = config.distribution
    dist_fp = dist.fingerprint() if dist is not None else None
    return {
        "format": "repro-campaign-manifest",
        "version": 1,
        "protocols": [get_protocol(s).key for s in config.protocols],
        "params": config.base_params.describe(),
        "m_values": [float(m) for m in config.m_values],
        "phi_values": [float(p) for p in config.phi_values],
        "work_target": config.work_target,
        "replicas": int(config.replicas),
        "seed": int(config.seed),
        "share_traces": config.share_traces,
        "max_time": config.max_time,
        "distribution": dist_fp,
    }


def _write_manifest(config: CampaignConfig, sink: pathlib.Path) -> None:
    import json

    _manifest_path(sink).write_text(
        json.dumps(_campaign_fingerprint(config), sort_keys=True) + "\n"
    )


def _check_manifest(config: CampaignConfig, sink: pathlib.Path) -> bool:
    """Refuse to resume when the stored fingerprint disagrees.

    Returns whether a matching manifest was found.  A missing or
    unreadable manifest (pre-manifest file, hand-copied results) returns
    False and resume falls back to the per-record checks only.
    """
    import json

    path = _manifest_path(sink)
    if not path.exists():
        return False
    try:
        stored = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    current = _campaign_fingerprint(config)
    if stored != current:
        drift = sorted(
            k for k in current
            if stored.get(k) != current[k]
        ) or sorted(set(stored) ^ set(current))
        raise ParameterError(
            f"{path}: campaign configuration changed since the results "
            f"file was written (differs in: {', '.join(drift)}); refusing "
            "to resume — rerun without resume to start over, or restore "
            "the original configuration"
        )
    return True


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------
def _resume_scan(
    config: CampaignConfig,
    plans: list[CellPlan],
    sink: pathlib.Path,
    trusted: bool,
) -> tuple[list[CampaignCell], int]:
    """Recover completed cells from a partial results file.

    Returns the recovered cells (a prefix of the grid) and truncates the
    file to the end of the last complete cell, so appends continue cleanly.
    A file whose records do not match the grid (different protocols, M
    values or overheads) raises :class:`ParameterError` rather than
    silently mixing campaigns.
    """
    from .. import io as repro_io

    loaded: list[DesResult] = []
    offsets: list[int] = []
    for result, end in repro_io.scan_results(sink):
        if not isinstance(result, DesResult):
            raise ParameterError(
                f"{sink}: cannot resume: found a "
                f"{type(result).__name__} record where raw DES runs were "
                "expected"
            )
        loaded.append(result)
        offsets.append(end)

    # A non-empty file with no intact records could be *anything* (a
    # pointed-at notes file, a results file corrupted from byte 0).
    # Unless our own manifest vouches for it (``trusted`` — e.g. a
    # campaign interrupted mid-first-record), refuse rather than wipe it.
    if not loaded and not trusted and sink.stat().st_size > 0:
        raise ParameterError(
            f"{sink}: no intact campaign records found; refusing to "
            "resume over a file this campaign cannot have written "
            "(delete it, or rerun without resume to start over)"
        )

    # Every intact record — including a partial trailing cell about to be
    # truncated — must match the grid *and* the campaign seed before this
    # file is touched, so a foreign file is refused rather than destroyed
    # and resuming under changed settings cannot mix two campaigns.
    if len(loaded) > len(plans) * config.replicas:
        raise ParameterError(
            f"{sink}: holds {len(loaded)} records but the campaign grid "
            f"only produces {len(plans) * config.replicas}; refusing to "
            "resume a different campaign's file"
        )
    for pos, res in enumerate(loaded):
        plan = plans[pos // config.replicas]
        meta = res.meta
        expected_seed = _replica_seed(config, pos % config.replicas)
        if (meta.get("protocol") != plan.protocol
                or float(meta.get("M", float("nan"))) != plan.M
                or float(meta.get("phi", float("nan"))) != plan.effective_phi
                or meta.get("seed") != expected_seed
                or meta.get("n") != config.base_params.n
                or res.work_target != config.work_target):
            raise ParameterError(
                f"{sink}: record {pos} holds "
                f"({meta.get('protocol')}, M={meta.get('M')}, "
                f"phi={meta.get('phi')}, seed={meta.get('seed')}, "
                f"n={meta.get('n')}, work_target={res.work_target}) but "
                f"the campaign grid expects ({plan.protocol}, M={plan.M}, "
                f"phi={plan.effective_phi}, seed={expected_seed}, "
                f"n={config.base_params.n}, "
                f"work_target={config.work_target}); "
                "refusing to resume a different campaign's file"
            )

    n_cells = len(loaded) // config.replicas
    cells = [
        _make_cell(
            plans[i],
            loaded[i * config.replicas:(i + 1) * config.replicas],
        )
        for i in range(n_cells)
    ]

    keep = offsets[n_cells * config.replicas - 1] if n_cells else 0
    with sink.open("r+b") as fh:
        fh.truncate(keep)
    return cells, n_cells


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = 1,
    chunk_size: int | None = None,
    resume: bool = False,
    on_cell: Callable[[CampaignCell], None] | None = None,
) -> CampaignExecution:
    """Run (or finish) a campaign; the workhorse behind every campaign API.

    Parameters
    ----------
    workers:
        Process count.  ``1`` executes in-process (no pool — identical to
        the historical serial path); ``None`` or ``0`` uses
        ``os.cpu_count()``.
    chunk_size:
        Cells per worker task.  Default: one (protocol, M) row — i.e.
        ``len(config.phi_values)`` cells — so shared failure traces are
        generated once per chunk.
    resume:
        Recover completed cells from ``config.results_path`` instead of
        truncating it.  Requires a results path.
    on_cell:
        Optional progress callback, invoked in grid order per fresh cell.
    """
    start = time.perf_counter()
    plans = plan_cells(config)

    # Validate every argument before touching the sink: an invalid
    # workers/chunk_size must not cost an existing results file.
    if resume and config.results_path is None:
        raise ParameterError("resume=True requires config.results_path")
    if workers is None or workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    if chunk_size is None:
        chunk_size = len(config.phi_values)
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")

    sink: pathlib.Path | None = None
    if config.results_path is not None:
        sink = pathlib.Path(config.results_path)
        sink.parent.mkdir(parents=True, exist_ok=True)

    done: list[CampaignCell] = []
    n_skipped = 0
    if sink is not None:
        if resume and sink.exists():
            trusted = _check_manifest(config, sink)
            done, n_skipped = _resume_scan(config, plans, sink, trusted)
        else:
            sink.write_text("")  # truncate: a campaign owns its file
        _write_manifest(config, sink)

    todo = plans[n_skipped:]
    chunks = [todo[i:i + chunk_size] for i in range(0, len(todo), chunk_size)]
    fresh: list[CampaignCell] = []

    def _emit(plans_chunk: list[CellPlan], chunk_results: list[list[DesResult]]):
        from .. import io as repro_io

        for plan, results in zip(plans_chunk, chunk_results):
            if sink is not None:
                repro_io.save_results(results, sink, append=True)
            cell = _make_cell(plan, results)
            fresh.append(cell)
            if on_cell is not None:
                on_cell(cell)

    if workers == 1 or not chunks:
        # One cache across all chunks: the in-process path regenerates
        # each shared (m, replica) trace exactly once, like the old
        # serial implementation.
        trace_cache: dict = {}
        for chunk in chunks:
            _emit(chunk, [run_cell(config, plan, trace_cache) for plan in chunk])
    else:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_chunk, config, c) for c in chunks]
            # Consume in submission order so the sink stays an exact
            # prefix of the serial file even while chunks finish OOO.
            for chunk, future in zip(chunks, futures):
                _emit(chunk, future.result())

    report = ExecutionReport(
        cells_total=len(plans),
        cells_skipped=n_skipped,
        cells_run=len(fresh),
        workers=workers,
        chunk_size=chunk_size,
        elapsed=time.perf_counter() - start,
    )
    return CampaignExecution(cells=tuple(done + fresh), report=report)


def run_campaign_parallel(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    resume: bool = False,
) -> list[CampaignCell]:
    """Like :func:`repro.sim.campaign.run_campaign`, but sharded across
    worker processes (default: all cores).  Output is bit-identical to the
    serial path."""
    execution = execute_campaign(
        config, workers=workers, chunk_size=chunk_size, resume=resume
    )
    return list(execution.cells)
