"""Campaign orchestration: plan, recover, produce events, summarise.

A campaign is *described* by one value — the
:class:`~repro.sim.spec.CampaignSpec` (grid ⊕
:class:`~repro.sim.spec.ExecutionPolicy`) — and this module is the
mechanism that executes it.  The execution core is a typed result-event
pipeline (:mod:`repro.sim.events`): a :class:`CampaignSession` opens the
spec, *produces* one event stream
(``CampaignStarted (CellStarted ReplicaBatch CellFinished
CampaignProgress)* CampaignFinished``), and everything that persists or
observes results — the sink writer, the store publisher, controller
replay, progress counters, the ``on_cell`` callback — is an independent
*consumer* on one synchronous :class:`~repro.sim.events.EventBus` with
deterministic fan-out order.  The session wires these replaceable
layers together:

* **Planning** — the grid is flattened into a deterministic, serial-order
  list of :class:`CellPlan` entries (protocol-major, then M, then φ) and
  split into chunks of whole cells.  Every replica seed and shared failure
  trace derives from the campaign seed and the cell's grid coordinates
  alone (:mod:`repro.sim.backends`), never from execution order.
* **Backends — the producers** (:mod:`repro.sim.backends`,
  :mod:`repro.sim.distributed`) — a
  :class:`~repro.sim.backends.CampaignBackend` runs the chunks:
  in-process (:class:`~repro.sim.backends.SerialBackend`), across worker
  processes (:class:`~repro.sim.backends.ProcessPoolBackend`), or across
  *machines* (:class:`~repro.sim.distributed.DistributedBackend`, a
  work-stealing consumer of a shared chunk-queue directory), all
  yielding chunks in completion order.  The policy's ``workers`` /
  ``queue`` fields pick one.  The session turns their raw chunk output
  (plus store hits and resume recoveries) into the typed event stream.
* **Sinks — a consumer** (:mod:`repro.sim.sinks`) — the
  :class:`~repro.sim.events.SinkWriter` consumer appends each finished
  cell to the :class:`~repro.sim.sinks.ResultSink` chosen by
  ``policy.sink``: the in-order JSONL sink (the results file stays an
  exact byte prefix of the serial file; the session buffers
  completion-order events into grid order) or the out-of-order *framed*
  sink (records land the moment a cell finishes; no head-of-line
  blocking).  Both support resume: an existing file is scanned,
  identity-checked against the grid, truncated past the last complete
  cell, and only the remainder executes.
* **Replica control** (:mod:`repro.sim.adaptive`) — ``policy.controller``
  decides per cell how many replicas actually run: every one
  (:class:`~repro.sim.adaptive.FixedReplicas`, the default and the
  bit-identical-to-serial path), or adaptively
  (:class:`~repro.sim.adaptive.AdaptiveCI`,
  :class:`~repro.sim.adaptive.WilsonSuccessRate`; framed sink required).
* **Results store** (:mod:`repro.store`) — with ``policy.store`` (or
  ``execute_spec(..., store=...)``) set, every planned cell is looked up
  in a content-addressed warehouse *before* anything is dispatched to a
  backend, and the :class:`~repro.sim.events.StorePublisher` consumer
  publishes fresh cells right after their sink append (it subscribes
  after the sink writer, so the warehouse can never get ahead of the
  durable results file).  Cache hits flow through the replica
  controller's cursor exactly like live results, so adaptive decisions
  are identical either way, and the store is volatile policy: it cannot
  change output bytes, only skip recomputing them.

A sidecar manifest (``<results>.manifest``) stores the campaign's
**spec fingerprint** (:meth:`~repro.sim.spec.CampaignSpec.fingerprint`)
verbatim, so resuming under drifted settings is detected as *spec
inequality* and refused instead of silently mixing two campaigns.
Pre-spec (version-1) manifests are still read and checked.

Layer diagram (single machine, and the distributed shard-merge flow)::

      HTTP daemon (repro.service — `repro-checkpoint serve`)
      ┌─────────────────────────────────────────────────────────────────┐
      │ POST /campaigns ─► CampaignRegistry ─► worker pool, one         │
      │   (idempotent        CampaignSession per spec identity          │
      │    per identity)                                                │
      │ GET /campaigns/<id>/events ─► NDJSON (event_to_dict per event)  │
      │ GET /reports?spec=… ─► store.coverage ─► warm: store_report     │
      │   (zero simulation)        miss: single-flight coalesced fill   │
      └──────────────────────────────┬──────────────────────────────────┘
                              ▼
                         CampaignSpec  =  grid ⊕ ExecutionPolicy
                              │   (one JSON value: spec.to_dict())
         Campaign(spec).run(path) / CampaignSession(spec, ...) / execute_spec
                              ▼
    plan_cells ─► store lookup ─► chunks ─► CampaignBackend ─┐ producers
                  (per cell, miss ⇒ run)    Serial/ProcessPool│ (+ store hits,
                       ▲                    Distributed/Vec.  │  resume recovery)
                       │                                      ▼
                       │             CampaignStarted (CellStarted ReplicaBatch
                       │               CellFinished CampaignProgress)* CampaignFinished
                       │                                      │
                       │                EventBus (synchronous, subscription-order
                       │                 fan-out — repro.sim.events)
                       │          ┌──────────────┬────────────┴──┬─────────────┐
                       │          ▼              ▼               ▼             ▼
                       │   ControllerReplay  SinkWriter     StorePublisher  ProgressTracker
                       │   (stream must      Ordered/Framed (backend cells, (live counters →
                       │    replay to the    ─► results     after the sink   session.progress(),
                       │    rule's state)       .jsonl         append)       final report)
                       │                      + .manifest      │             … MetricsConsumer
                       │                      (spec            │             (repro.obs: cell/replica
                       │                       fingerprint)    │              series ─► report.metrics,
                       └───────────────────────────────────────┘              GET /metrics),
                                                                             CellCallback, service
                                                                             consumers
              CampaignStore (repro.store)       engine (policy.backend)
              hot-cell cache (in-process     "des": per-event simulation (exact)
                LRU, digest re-check)        "vectorized": cells as numpy batches
              → segments/<id>.seg + .idx      (renewal closed forms; per-cell DES
                (compacted: index probe        fallback for shared traces —
                + one pread)                   see repro.sim.vectorized)
              → objects/<2-hex>/<sha256(replica key)>.json
                (loose: the atomic-rename publish path; `store
                compact` folds loose files into segments)
              — key carries the engine when != "des"

    Store data flows (replica key = protocol ⊕ φ ⊕ workload ⊕ resolved
    platform params ⊕ failure law ⊕ seed-schedule entry — finer than the
    spec fingerprint, so *different* campaigns share overlapping cells):

    * cold  — every lookup misses; every cell simulates, is appended to
      the sink, then published: results file byte-identical to a
      storeless run.
    * warm  — an identical completed spec re-runs with **zero**
      simulations: every cell is served from the store, re-verified
      against its stored bytes, and re-emitted in grid order — the
      results file is byte-identical to the cold run's.
    * partial overlap — a different grid that shares some cells (same
      seed schedule, overlapping axes) simulates only the missing
      cells; hits and fresh results interleave through the same sink
      and replica controller.

    queue dir (shared filesystem)              per machine
    ┌──────────────────────────────┐     ┌──────────────────────────────┐
    │ manifest.json (spec + chunks)│◄───►│ Campaign(spec_with_queue)    │
    │ pending/  claims/  done/     │     │   .run()                     │
    │   (atomic-rename claims,     │     │   DistributedBackend         │
    │    lease-expiry stealing)    │     │   claim → run → append       │
    │ shards/worker-A.jsonl ◄──────┼─────┤   → done marker              │
    │ shards/worker-B.jsonl  ...   │     │   WorkerShardSink            │
    └──────────────┬───────────────┘     └──────────────────────────────┘
                   ▼ Campaign(spec).merge(out) — scan_frames + dedupe + reorder
          results.jsonl + .manifest   — resumes/reports like any
                                        single-machine framed run

Entry points
------------
:meth:`repro.sim.spec.Campaign.run` is the public API;
:class:`CampaignSession` is the engine underneath it — open a spec
(submit), iterate :meth:`CampaignSession.events` (stream), read
:meth:`CampaignSession.progress` from any thread (poll) — and
:func:`execute_spec` is the one-call wrapper that drains a session and
returns its :class:`CampaignExecution` (cells + an
:class:`ExecutionReport` with skip/run/replica counts and timings).
The pre-spec kwarg surface — :func:`execute_campaign`,
:func:`run_campaign_parallel`, ``repro.sim.campaign.run_campaign`` —
survives as thin shims that build a spec and emit a
:class:`DeprecationWarning`.

Example
-------
>>> from repro import DOUBLE_NBL, TRIPLE, scenarios
>>> from repro.sim.campaign import CampaignConfig
>>> from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy
>>> spec = CampaignSpec(
...     grid=CampaignConfig(
...         protocols=(DOUBLE_NBL, TRIPLE),
...         base_params=scenarios.BASE.parameters(M=600.0, n=12),
...         m_values=(600.0,), phi_values=(1.0,), work_target=900.0,
...         replicas=2),
...     policy=ExecutionPolicy(workers=2))
>>> execution = Campaign(spec).run()                # doctest: +SKIP
>>> len(execution.cells)                            # doctest: +SKIP
2
"""

from __future__ import annotations

import pathlib
import threading
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import CampaignCancelled, ParameterError
from ..obs import MetricsConsumer
from ..obs import enabled as obs_enabled
from ..obs.trace import current_tracer
from .adaptive import ReplicaController
from .backends import CampaignBackend, make_backend, run_cell  # noqa: F401 - run_cell re-exported
from .campaign import CampaignCell, CampaignConfig, validate_campaign
from .events import (
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    CellCallback,
    CellFinished,
    CellStarted,
    ControllerReplay,
    EventBus,
    EventConsumer,
    ProgressTracker,
    ReplicaBatch,
    SinkWriter,
    StorePublisher,
    make_cell,
)
from .results import DesResult
from .sinks import OrderedJsonlSink, ResultSink, make_sink
from .spec import SPEC_FORMAT, CampaignSpec
from .vectorized import plan_engine

__all__ = [
    "CellPlan",
    "ExecutionReport",
    "CampaignExecution",
    "CampaignSession",
    "plan_cells",
    "execute_spec",
    "execute_campaign",
    "run_campaign_parallel",
]

_LEGACY_MANIFEST_FORMAT = "repro-campaign-manifest"


@dataclass(frozen=True)
class CellPlan:
    """One grid cell in deterministic execution order.

    ``index`` is the cell's position in the serial iteration (protocol-
    major, then M, then φ); all seeds derive from the grid coordinates, so
    a plan can be executed by any worker at any time with identical output.
    ``effective_phi`` is the overhead the protocol actually runs at (e.g.
    DOUBLE-BLOCKING pins φ = θmin) — it is what lands in result metadata
    and is used to validate cells when resuming.
    """

    index: int
    protocol: str
    m_index: int
    M: float
    phi: float
    effective_phi: float


@dataclass(frozen=True)
class ExecutionReport:
    """What one :func:`execute_spec` call actually did."""

    cells_total: int
    cells_skipped: int
    cells_run: int
    workers: int
    chunk_size: int
    elapsed: float
    #: DES replicas actually executed (adaptive control may run fewer
    #: than ``cells_run × config.replicas``; store hits run none).
    replicas_run: int = 0
    sink: str = "ordered"
    #: Cells served from the results store instead of simulated.
    cells_cached: int = 0
    #: This run's telemetry — a ``repro-metrics`` snapshot from the
    #: session's :class:`~repro.obs.MetricsConsumer` (cell duration
    #: histogram, cell/replica counters by source), or ``None`` when
    #: observability is off.  Excluded from equality and from the event
    #: wire format (``_REPORT_FIELDS``): two runs of the same campaign
    #: are the same execution even if their timings differ.
    metrics: dict | None = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        recovered = f"{self.cells_skipped} resumed"
        if self.cells_cached:
            recovered += f", {self.cells_cached} cached"
        return (
            f"{self.cells_run}/{self.cells_total} cells run "
            f"({recovered}), workers={self.workers}, "
            f"chunk={self.chunk_size}, sink={self.sink}, "
            f"replicas={self.replicas_run}, {self.elapsed:.2f}s"
        )


@dataclass(frozen=True)
class CampaignExecution:
    """Cells plus the execution report."""

    cells: tuple[CampaignCell, ...]
    report: ExecutionReport = field(repr=False)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_cells(config: CampaignConfig) -> list[CellPlan]:
    """Flatten the campaign grid into serial-order cell plans."""
    from ..core.protocols import get_protocol

    validate_campaign(config)
    plans: list[CellPlan] = []
    index = 0
    for spec in config.protocols:
        spec = get_protocol(spec)
        if spec.group_size and config.base_params.n % spec.group_size:
            raise ParameterError(
                f"params.n={config.base_params.n} must be a multiple of "
                f"{spec.key}'s group size {spec.group_size} "
                "(fail fast: every grid cell of this protocol would die)"
            )
        for mi, m in enumerate(config.m_values):
            params = config.base_params.with_updates(M=float(m))
            seen_eff: dict[float, float] = {}
            for phi in config.phi_values:
                eff = float(np.asarray(spec.effective_phi(params, float(phi))))
                if eff in seen_eff:
                    raise ParameterError(
                        f"{spec.key} pins phi={phi:g} and "
                        f"phi={seen_eff[eff]:g} to the same effective "
                        f"overhead {eff:g} at M={float(m):g}: the cells "
                        "would be bit-identical duplicates, wasting "
                        "replicas (sweep phi on a non-blocking protocol "
                        "or drop the redundant values)"
                    )
                seen_eff[eff] = float(phi)
                plans.append(CellPlan(
                    index=index, protocol=spec.key, m_index=mi,
                    M=float(m), phi=float(phi), effective_phi=eff,
                ))
                index += 1
    return plans


# The aggregation itself lives in repro.sim.events (make_cell) so the
# wire decoder can rebuild cells without importing the executor; this
# alias keeps the historical internal name for existing callers.
_make_cell = make_cell


# ----------------------------------------------------------------------
# Campaign manifest
# ----------------------------------------------------------------------
def _manifest_path(sink: pathlib.Path) -> pathlib.Path:
    return sink.with_name(sink.name + ".manifest")


def _campaign_fingerprint(
    config: CampaignConfig, sink_mode: str, controller: ReplicaController
) -> dict:
    """The spec fingerprint for a (config, sink, controller) triple.

    Kept for callers (and tests) that assemble queue manifests from the
    pre-spec pieces; it is exactly
    ``CampaignSpec.from_legacy_kwargs(...).fingerprint()``.
    """
    spec = CampaignSpec.from_legacy_kwargs(
        config, sink=sink_mode, controller=controller
    )
    return spec.fingerprint()


def _legacy_fingerprint(spec: CampaignSpec) -> dict:
    """The version-1 manifest dict this spec would have produced.

    Pre-spec campaigns wrote hand-built fingerprint dicts; reproducing
    that exact shape lets their results files keep resuming under the
    spec-based engine.
    """
    from ..core.protocols import get_protocol

    grid = spec.grid
    dist = grid.distribution
    controller = spec.controller()
    return {
        "format": _LEGACY_MANIFEST_FORMAT,
        "version": 1,
        "protocols": [get_protocol(s).key for s in grid.protocols],
        "params": grid.base_params.describe(),
        "m_values": [float(m) for m in grid.m_values],
        "phi_values": [float(p) for p in grid.phi_values],
        "work_target": grid.work_target,
        "replicas": int(grid.replicas),
        "seed": int(grid.seed),
        "share_traces": grid.share_traces,
        "max_time": grid.max_time,
        "distribution": dist.fingerprint() if dist is not None else None,
        "sink": spec.policy.sink,
        "adaptive": controller.fingerprint(),
    }


def _write_manifest(spec: CampaignSpec, sink: pathlib.Path) -> None:
    import json

    _manifest_path(sink).write_text(
        json.dumps(spec.fingerprint(), sort_keys=True) + "\n"
    )


def _spec_drift(stored: dict, current: dict) -> list[str]:
    """Grid/policy field names on which two spec dicts disagree."""
    drift: list[str] = []
    for section in ("grid", "policy"):
        a, b = stored.get(section) or {}, current.get(section) or {}
        drift.extend(sorted(
            k for k in set(a) | set(b) if a.get(k) != b.get(k)
        ))
    drift.extend(sorted(
        k for k in (set(stored) | set(current)) - {"grid", "policy"}
        if stored.get(k) != current.get(k)
    ))
    return drift


def _check_manifest(spec: CampaignSpec, sink: pathlib.Path) -> bool:
    """Refuse to resume when the stored spec disagrees with this one.

    Returns whether a matching manifest was found.  A missing or
    unreadable manifest (pre-manifest file, hand-copied results) returns
    False and resume falls back to the per-record checks only.  Drift is
    decided by **spec inequality**: the stored fingerprint is parsed back
    into a :class:`~repro.sim.spec.CampaignSpec` and compared against
    this spec's :meth:`~repro.sim.spec.CampaignSpec.identity`.  Version-1
    manifests (pre-spec hand-built dicts) are compared against the shape
    this spec would have written then.
    """
    import json

    path = _manifest_path(sink)
    if not path.exists():
        return False
    try:
        stored = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if isinstance(stored, dict) and stored.get("format") == SPEC_FORMAT:
        try:
            stored_spec = CampaignSpec.from_dict(stored)
        except ParameterError as exc:
            raise ParameterError(
                f"{path}: manifest does not hold a loadable campaign "
                f"spec ({exc}); refusing to resume — delete the results "
                "file and its manifest to start over"
            ) from exc
        if stored_spec != spec.identity():
            drift = _spec_drift(stored_spec.to_dict(), spec.fingerprint())
            raise ParameterError(
                f"{path}: campaign configuration changed since the "
                f"results file was written (spec differs in: "
                f"{', '.join(drift)}); refusing to resume — rerun "
                "without resume to start over, or restore the original "
                "configuration"
            )
        return True
    # Version-1 manifest: compare against the dict this spec would have
    # written under the old scheme (pre-sink/adaptive manifests default
    # to the ordered fixed-replica configuration they necessarily ran).
    if isinstance(stored, dict):
        stored.setdefault("sink", "ordered")
        stored.setdefault("adaptive", None)
    current = _legacy_fingerprint(spec)
    if stored != current:
        drift = sorted(
            k for k in current
            if not isinstance(stored, dict) or stored.get(k) != current[k]
        ) or sorted(set(stored) ^ set(current))
        raise ParameterError(
            f"{path}: campaign configuration changed since the results "
            f"file was written (differs in: {', '.join(drift)}); refusing "
            "to resume — rerun without resume to start over, or restore "
            "the original configuration"
        )
    return True


# ----------------------------------------------------------------------
# Execution: the session produces the event stream
# ----------------------------------------------------------------------
class CampaignSession:
    """One campaign execution as an event stream: submit, stream, poll.

    Opening a session *is* the submit step: the spec is validated, the
    results file recovered or truncated (and its manifest written), the
    store consulted, the backend and chunk layout fixed, and the
    consumer set subscribed — exactly the work :func:`execute_spec`
    always did before its first cell, so an invalid configuration fails
    before costing anything.  After that the session exposes the three
    service-shaped operations, all in-process:

    * **stream** — :meth:`events` produces the typed stream of
      :mod:`repro.sim.events`, *lazily*: iterating it is what executes
      the campaign, and each event is fanned out to every subscribed
      consumer (sink writer, store publisher, controller replay,
      progress tracker, callbacks) before it is yielded to the caller.
    * **poll** — :meth:`progress` returns a consistent
      :class:`~repro.sim.events.CampaignProgress` snapshot from any
      thread, at any moment; :meth:`cache_stats` reports the store's
      :class:`~repro.store.cache.HotCellCache` counters the same way.
    * **collect** — :meth:`run` drains the stream and returns the
      :class:`CampaignExecution`; :meth:`result` re-reads it afterwards.

    Extra consumers (a metrics exporter, the campaign service's
    streaming endpoint) subscribe via ``consumers=`` or
    :meth:`subscribe` before iteration begins; the built-in subscription
    order (controller replay, sink writer, store publisher, progress
    tracker, ``on_cell`` callback, then extras) is part of the
    durability contract documented in :mod:`repro.sim.events`.

    The stream may be consumed once; parameters match
    :func:`execute_spec`.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        results_path: str | pathlib.Path | None = None,
        resume: bool = False,
        on_cell: Callable[[CampaignCell], None] | None = None,
        backend: CampaignBackend | None = None,
        store=None,
        consumers: Sequence[EventConsumer] = (),
    ):
        self._start = time.perf_counter()
        if not isinstance(spec, CampaignSpec):
            raise ParameterError(
                f"CampaignSession takes a CampaignSpec, got "
                f"{type(spec).__name__} (legacy CampaignConfig callers: "
                "use execute_campaign, or better, build a spec)"
            )
        self.spec = spec
        policy = spec.policy
        config = spec.config(results_path)
        plans = plan_cells(config)

        # Resolve the results store (volatile: cannot change output
        # bytes).
        store_mode = policy.store_mode
        if store is None:
            store = policy.store
        if store is not None and store_mode != "off":
            from ..store import CampaignStore

            if not isinstance(store, CampaignStore):
                # Read-only mode can never populate a store, so a
                # missing directory there is a mistyped path, not a
                # fresh cache — fail loudly instead of consulting a
                # silently-empty store.
                store = CampaignStore(
                    store, create=store_mode == "read-write"
                )
        else:
            store = None
        store_writes = store is not None and store_mode == "read-write"

        if resume and results_path is None and policy.queue is None:
            raise ParameterError(
                "resume=True requires a results_path (the file to "
                "recover completed cells from)"
            )
        distributed = policy.queue is not None
        if distributed:
            from .distributed import DistributedBackend

            if backend is not None:
                raise ParameterError(
                    "queue= and backend= are mutually exclusive: the "
                    "queue implies the distributed work-stealing backend"
                )
            if resume:
                raise ParameterError(
                    "a queue directory is inherently resumable: rejoin "
                    "it with queue=... instead of passing resume=True"
                )
            if results_path is not None:
                raise ParameterError(
                    "distributed workers write per-worker shards inside "
                    "the queue directory; leave the results path unset "
                    "and merge the shards with Campaign.merge (or "
                    "`repro-checkpoint campaign merge`)"
                )
            backend = DistributedBackend(
                policy.queue, worker_id=policy.worker_id,
                lease_timeout=policy.lease_timeout,
                poll_interval=policy.poll_interval,
                processes=policy.worker_processes,
                # A queue's chunk layout must stay a pure function of
                # the spec, so store lookups cannot prune the plan here;
                # the worker instead consults the store per claimed cell.
                store=store,
                engine=policy.backend,
            )
        if backend is None:
            backend = make_backend(policy.workers, policy.backend)
        chunk_size = policy.chunk_size
        if chunk_size is None:
            chunk_size = len(config.phi_values)
        controller = spec.controller()
        if distributed:
            from .distributed import ensure_queue, shard_path
            from .sinks import WorkerShardSink

            sink_obj: ResultSink = WorkerShardSink(
                shard_path(policy.queue, backend.worker_id)
            )
        else:
            sink_obj = make_sink(policy.sink, config.results_path)
        if controller.fingerprint() is not None and isinstance(
            sink_obj, OrderedJsonlSink
        ):
            raise ParameterError(
                "adaptive replica control varies the record count per "
                "cell, which the ordered sink's positional resume cannot "
                "represent; persist adaptive campaigns with sink='framed'"
            )

        done_results: dict[int, list[DesResult]] = {}
        if config.results_path is not None:
            path = pathlib.Path(config.results_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            if resume and path.exists():
                trusted = _check_manifest(spec, path)
                done_results = sink_obj.recover(
                    config, plans, controller, trusted
                )
            else:
                sink_obj.begin()
            _write_manifest(spec, path)

        todo = [p for p in plans if p.index not in done_results]

        # Consult the store before anything is dispatched to a backend:
        # a cell whose replica prefix is already warehoused is emitted
        # without simulating.  (Not under a queue policy — the queue's
        # chunk layout is a pure function of the spec, so the
        # distributed backend consults the store per claimed cell
        # instead.)
        cached_results: dict[int, list[DesResult]] = {}
        if store is not None and not distributed:
            from ..store import replica_key

            # Bulk-stage the whole footprint first: segment-resident
            # entries stream in with a few sequential reads per segment,
            # so the per-cell loads below are cache hits instead of one
            # pread per replica.
            store.preload(
                replica_key(
                    config, plan, replica,
                    engine=plan_engine(policy.backend, config, plan),
                )
                for plan in todo
                for replica in range(controller.max_replicas)
            )
            for plan in todo:
                hit = store.load_cell(
                    config, plan, controller,
                    engine=plan_engine(policy.backend, config, plan),
                )
                if hit is not None:
                    cached_results[plan.index] = hit

        run_plans = [p for p in todo if p.index not in cached_results]
        chunks = [
            run_plans[i:i + chunk_size]
            for i in range(0, len(run_plans), chunk_size)
        ]

        if distributed:
            # The chunk layout is a pure function of (spec, chunk_size),
            # so every worker that passes the manifest check computes
            # the identical list and any chunk ticket is executable by
            # anyone.
            ensure_queue(
                pathlib.Path(policy.queue), spec.fingerprint(),
                n_chunks=len(chunks), chunk_size=chunk_size,
                n_cells=len(plans),
            )
            sink_obj.begin()  # rejoin this worker's shard (truncate torn tail)

        self._policy = policy
        self._config = config
        self._plans = plans
        self._todo = todo
        self._done_results = done_results
        self._cached_results = cached_results
        self._chunks = chunks
        self._chunk_size = chunk_size
        self._backend = backend
        self._controller = controller
        self._sink = sink_obj
        self._store = store
        self._distributed = distributed
        self._fresh: dict[int, CampaignCell] = {}
        self._done_cells: dict[int, CampaignCell] = {}
        self._execution: CampaignExecution | None = None
        self._state = "open"
        self._cancel = threading.Event()

        #: The session's bus; subscription order is the fan-out order.
        self.bus = EventBus()
        self._tracker = ProgressTracker(cells_total=len(plans))
        self.bus.subscribe(ControllerReplay(controller))
        self.bus.subscribe(SinkWriter(sink_obj))
        if store_writes:
            self.bus.subscribe(
                StorePublisher(store, config, policy.backend)
            )
        self.bus.subscribe(self._tracker)
        # Telemetry rides the same stream as everything else; a pure
        # observer, so REPRO_OBS=off changes no behaviour, only whether
        # ExecutionReport.metrics and the process registry get fed.
        self._metrics = MetricsConsumer() if obs_enabled() else None
        if self._metrics is not None:
            self.bus.subscribe(self._metrics)
        if on_cell is not None:
            self.bus.subscribe(CellCallback(on_cell))
        for consumer in consumers:
            self.bus.subscribe(consumer)

    # ------------------------------------------------------------------
    @property
    def store(self):
        """The resolved :class:`~repro.store.CampaignStore` (or None)."""
        return self._store

    def subscribe(self, consumer: EventConsumer) -> EventConsumer:
        """Add a consumer (before iteration begins); returns it."""
        return self.bus.subscribe(consumer)

    def progress(self) -> CampaignProgress:
        """A consistent counter snapshot; callable from any thread."""
        return self._tracker.snapshot()

    @property
    def state(self) -> str:
        """Lifecycle phase: ``"open"`` → ``"running"`` → ``"finished"`` /
        ``"failed"`` / ``"cancelled"``.  Readable from any thread."""
        return self._state

    def cancel(self) -> None:
        """Request cancellation; callable from any thread, idempotent.

        Cooperative and cell-aligned: the producing loop checks the flag
        between cells and raises
        :class:`~repro.errors.CampaignCancelled` out of :meth:`events`,
        which closes every consumer through the normal error path — the
        results file is left a valid resumable prefix (whole cells
        only), the manifest intact, and a later session can
        ``resume=True`` the remainder.  A session that already finished
        is unaffected.
        """
        self._cancel.set()

    def _check_cancel(self) -> None:
        if self._cancel.is_set():
            raise CampaignCancelled(
                "campaign cancelled: the event stream stopped at a cell "
                "boundary; resume the results file to finish the "
                "remaining cells"
            )

    def cache_stats(self):
        """The store's hot-cell cache counters
        (:class:`~repro.store.cache.CacheStats`), or ``None`` when the
        session runs without a store."""
        if self._store is None:
            return None
        return self._store.cache_stats()

    def result(self) -> CampaignExecution:
        """The finished execution (raises until the stream completes)."""
        if self._execution is None:
            raise ParameterError(
                "the campaign has not finished: drain session.events() "
                "(or call session.run()) before asking for the result"
            )
        return self._execution

    # ------------------------------------------------------------------
    def events(self):
        """Produce (and thereby execute) the campaign's event stream.

        Lazy and single-shot: each ``next()`` advances the campaign, and
        every yielded event has already been delivered to all subscribed
        consumers.  On termination — clean, consumer error, or the
        caller abandoning the iterator — every consumer is closed
        exactly once (:meth:`~repro.sim.events.EventConsumer.close`).
        """
        if self._state != "open":
            raise ParameterError(
                "a session's event stream can be consumed once: open a "
                "new CampaignSession to run the campaign again"
            )
        self._state = "running"
        error: BaseException | None = None
        try:
            yield from self._produce()
            self._state = "finished"
        except BaseException as exc:
            error = exc
            self._state = (
                "cancelled" if isinstance(exc, CampaignCancelled)
                else "failed"
            )
            raise
        finally:
            self.bus.close(error)

    def run(self) -> CampaignExecution:
        """Drain the event stream and return the execution."""
        for _ in self.events():
            pass
        return self.result()

    # ------------------------------------------------------------------
    def _cell_events(self, plan, results, source):
        """One cell's triple (plus a progress snapshot), published then
        yielded."""
        self._check_cancel()
        tracer = current_tracer()
        cell_span = nullcontext() if tracer is None else tracer.span(
            "cell", "executor", index=plan.index, protocol=plan.protocol,
            M=plan.M, phi=plan.phi, source=source,
        )
        with cell_span:
            yield from self._emit_cell(plan, results, source, tracer)

    def _emit_cell(self, plan, results, source, tracer):
        emit = self.bus.publish
        results = tuple(results)
        yield emit(CellStarted(plan=plan, source=source))
        if tracer is None:
            event = emit(
                ReplicaBatch(plan=plan, results=results, source=source))
        else:
            # The batch span covers the synchronous consumer fan-out
            # (sink append, store publish) — closed before the yield so
            # it never absorbs the caller's time between events.
            with tracer.span("replica-batch", "executor",
                             replicas=len(results)):
                event = emit(ReplicaBatch(
                    plan=plan, results=results, source=source))
        yield event
        cell = make_cell(plan, results)
        if source == "resume":
            self._done_cells[plan.index] = cell
        else:
            self._fresh[plan.index] = cell
        yield emit(CellFinished(
            plan=plan, cell=cell, results=results, source=source,
        ))
        yield emit(self._tracker.snapshot())

    def _produce(self):
        tracer = current_tracer()
        campaign_span = nullcontext() if tracer is None else tracer.span(
            "campaign", "executor", cells=len(self._plans),
            sink=self._policy.sink, backend=self._policy.backend,
        )
        with campaign_span:
            yield from self._produce_events()

    def _produce_events(self):
        emit = self.bus.publish
        yield emit(CampaignStarted(
            spec=self.spec, plans=tuple(self._plans),
            resumed=tuple(sorted(self._done_results)),
        ))
        # Recovered cells replay first, in grid order: consumers see a
        # stream that reaches the campaign's full final state (the sink
        # writer skips them — their bytes are already in the file).
        for index in sorted(self._done_results):
            yield from self._cell_events(
                self._plans[index], self._done_results[index], "resume"
            )
        cached = self._cached_results
        if self._sink.ordered:
            # Emit strictly in grid order, interleaving store hits with
            # completion-order backend chunks (the results file stays an
            # exact prefix of the serial file at all times).
            ready: dict[int, list[DesResult]] = {}
            emit_pos = 0

            def _flush_ordered():
                nonlocal emit_pos
                while emit_pos < len(self._todo):
                    plan = self._todo[emit_pos]
                    if plan.index in cached:
                        yield from self._cell_events(
                            plan, cached.pop(plan.index), "store"
                        )
                    elif plan.index in ready:
                        yield from self._cell_events(
                            plan, ready.pop(plan.index), "backend"
                        )
                    else:
                        return
                    emit_pos += 1

            yield from _flush_ordered()
            if self._chunks:
                for index, chunk_results in self._backend.execute(
                    self._config, self._chunks, self._controller
                ):
                    self._check_cancel()
                    for plan, results in zip(
                        self._chunks[index], chunk_results
                    ):
                        ready[plan.index] = results
                    yield from _flush_ordered()
        else:
            # Out-of-order sink: store hits land first (in grid order —
            # the deterministic choice, and what makes a fully-warm
            # serial run byte-identical to its cold twin), fresh cells
            # the moment their chunk completes.
            for plan in self._todo:
                if plan.index in cached:
                    yield from self._cell_events(
                        plan, cached.pop(plan.index), "store"
                    )
            if self._chunks:
                for index, chunk_results in self._backend.execute(
                    self._config, self._chunks, self._controller
                ):
                    for plan, results in zip(
                        self._chunks[index], chunk_results
                    ):
                        yield from self._cell_events(
                            plan, results, "backend"
                        )

        if self._distributed:
            # The worker resolved its store hits inside claimed chunks,
            # so the emission loop above saw them as backend cells; the
            # backend counted what it served — reclassify.
            self._tracker.reconcile(
                cells_from_store=getattr(
                    self._backend, "cells_from_store", 0
                ),
                replicas_from_store=getattr(
                    self._backend, "replicas_from_store", 0
                ),
            )

        progress = self._tracker.snapshot()
        if self._distributed:
            # Other workers' cells live in their shards, not here:
            # report what this worker ran (grid order); merge_shards has
            # the grid.
            cells = tuple(
                self._fresh[index] for index in sorted(self._fresh)
            )
        else:
            cells = tuple(
                (self._done_cells | self._fresh)[plan.index]
                for plan in self._plans
            )
        # The final report is assembled from the progress consumer's
        # totals — the metrics path observes exactly what was executed.
        elapsed = time.perf_counter() - self._start
        if self._metrics is not None:
            self._metrics.finalize(
                elapsed=elapsed, replicas_run=progress.replicas_run)
        report = ExecutionReport(
            cells_total=len(self._plans),
            cells_skipped=(
                len(self._plans)
                - progress.cells_cached - progress.cells_run
            ),
            cells_run=progress.cells_run,
            workers=getattr(self._backend, "workers", 1),
            chunk_size=self._chunk_size,
            elapsed=elapsed,
            replicas_run=progress.replicas_run,
            sink=self._policy.sink,
            cells_cached=progress.cells_cached,
            metrics=(None if self._metrics is None
                     else self._metrics.snapshot()),
        )
        self._execution = CampaignExecution(cells=cells, report=report)
        yield emit(CampaignFinished(report=report))


def execute_spec(
    spec: CampaignSpec,
    *,
    results_path: str | pathlib.Path | None = None,
    resume: bool = False,
    on_cell: Callable[[CampaignCell], None] | None = None,
    backend: CampaignBackend | None = None,
    store=None,
) -> CampaignExecution:
    """Run (or finish) a campaign spec; the engine behind every campaign API.

    A thin wrapper over :class:`CampaignSession`: opens the session,
    drains its event stream, returns the execution.  Callers that want
    to observe the run — stream events, poll progress, attach consumers
    — open the session themselves.

    Parameters
    ----------
    spec:
        The campaign: grid ⊕ execution policy.  All policy validation
        (worker counts, sink/queue compatibility, controller budget)
        already happened when the spec was built — by the time execution
        starts, an invalid combination cannot cost an existing results
        file.
    results_path:
        JSON Lines sink for every raw run (``None`` = no persistence).
        This is per-execution state, deliberately not part of the spec.
        Must be ``None`` for queue workers (they stream to per-worker
        shards inside the queue directory; merge afterwards with
        :meth:`~repro.sim.spec.Campaign.merge`).
    resume:
        Recover completed cells from ``results_path`` instead of
        truncating it.  Not meaningful with a queue policy — a queue
        directory is always resumable: rejoining it *is* the resume.
    on_cell:
        Optional progress callback, invoked per fresh cell in emission
        order: grid order under the ordered sink, completion order under
        the framed sink.
    backend:
        Explicit :class:`~repro.sim.backends.CampaignBackend` (tests,
        experiments); default is built from the policy.  Mutually
        exclusive with a queue policy.
    store:
        A :class:`~repro.store.CampaignStore` (or a store directory
        path) overriding ``policy.store``.  With an active store in a
        read mode, every planned cell is resolved from the store before
        anything reaches the backend; in ``"read-write"`` mode fresh
        cells are published right after their sink append.  Like the
        policy fields it mirrors, this argument is volatile per-execution
        state — it cannot change output bytes.
    """
    if not isinstance(spec, CampaignSpec):
        raise ParameterError(
            f"execute_spec takes a CampaignSpec, got {type(spec).__name__} "
            "(legacy CampaignConfig callers: use execute_campaign, or "
            "better, build a spec)"
        )
    session = CampaignSession(
        spec, results_path=results_path, resume=resume, on_cell=on_cell,
        backend=backend, store=store,
    )
    return session.run()


# ----------------------------------------------------------------------
# Legacy kwarg shims
# ----------------------------------------------------------------------
def execute_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = 1,
    chunk_size: int | None = None,
    resume: bool = False,
    on_cell: Callable[[CampaignCell], None] | None = None,
    sink: str = "ordered",
    controller: ReplicaController | None = None,
    backend: CampaignBackend | None = None,
    queue: str | pathlib.Path | None = None,
    worker_id: str | None = None,
    lease_timeout: float = 60.0,
    poll_interval: float = 0.5,
) -> CampaignExecution:
    """Deprecated kwarg surface: builds a spec and runs it.

    .. deprecated::
        Build a :class:`~repro.sim.spec.CampaignSpec` and call
        :meth:`~repro.sim.spec.Campaign.run` (or :func:`execute_spec`)
        instead — one object instead of eleven keyword arguments, and
        the same object serialises, fingerprints and drives queues.
    """
    warnings.warn(
        "execute_campaign(config, **kwargs) is deprecated: build a "
        "CampaignSpec (grid + ExecutionPolicy) and use "
        "Campaign(spec).run(results_path) or execute_spec(spec, ...)",
        DeprecationWarning, stacklevel=2,
    )
    spec = CampaignSpec.from_legacy_kwargs(
        config, workers=workers, chunk_size=chunk_size, sink=sink,
        controller=controller, queue=queue, worker_id=worker_id,
        lease_timeout=lease_timeout, poll_interval=poll_interval,
    )
    return execute_spec(
        spec, results_path=config.results_path, resume=resume,
        on_cell=on_cell, backend=backend,
    )


def run_campaign_parallel(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    resume: bool = False,
    sink: str = "ordered",
    controller: ReplicaController | None = None,
) -> list[CampaignCell]:
    """Deprecated: like ``run_campaign`` but sharded across processes.

    .. deprecated::
        Use ``Campaign(CampaignSpec(grid=config,
        policy=ExecutionPolicy(workers=...))).run(path)`` — with the
        default policy fields (ordered sink, fixed replicas) output is
        bit-identical to the serial path, exactly as before.
    """
    warnings.warn(
        "run_campaign_parallel is deprecated: build a CampaignSpec with "
        "ExecutionPolicy(workers=...) and use Campaign(spec).run(path)",
        DeprecationWarning, stacklevel=2,
    )
    spec = CampaignSpec.from_legacy_kwargs(
        config, workers=workers, chunk_size=chunk_size, sink=sink,
        controller=controller,
    )
    execution = execute_spec(
        spec, results_path=config.results_path, resume=resume,
    )
    return list(execution.cells)
