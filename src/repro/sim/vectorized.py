"""Vectorized cell execution: whole cells as numpy batches.

The DES pays ~45 µs of interpreter overhead per *event*
(``benchmarks/PROFILE_high_churn.md``); a high-churn cell is hundreds of
thousands of events.  This module replaces the per-event loop with the
protocols' renewal closed forms — the same mathematics
:func:`repro.sim.renewal.run_renewal` already vectorizes for one replica
— generalized to execute every replica of a campaign cell as one batch
of array operations: sample all failure times, bin all pattern offsets
into phases with one ``searchsorted``, evaluate each phase's ``RE``
formula once over all its strikes across all replicas, and reduce block
sums per replica with one ``bincount``.  Cost becomes O(failures) array
math instead of O(events) Python dispatch.

Identity / equivalence contract
-------------------------------
The vectorized engine is **deterministic** but **not byte-identical**
to the DES:

* Each replica draws from its *own* stream seeded with the cell's
  :func:`~repro.sim.backends.replica_seed` — results are pure functions
  of the replica key (protocol, M, φ, workload, failure law, seed)
  alone, never of batch shape, worker identity or execution order.
  Re-running a cell anywhere reproduces its bytes exactly, which is
  what the content-addressed store's convergent publish requires; the
  store keys vectorized replicas separately from DES replicas (the
  ``engine`` key field), so the two engines can never serve each
  other's results.
* Against the DES the contract is *distribution-level*: completed-
  replica waste agrees to the first order at which the paper's formulas
  operate — the renewal estimator thins failures arriving during
  recovery blocks, a relative bias of order ``(F/M)²``
  (:mod:`repro.sim.renewal`), and the tests gate
  ``|mean_vec − mean_des|`` by the summed confidence intervals plus
  that bias allowance (``tests/test_vectorized.py``,
  mirroring ``experiments/validation.py``).
* Fatality is sampled from the paper's success-probability model
  (Eq. 11/16 via the exact-exponential variant of
  :func:`repro.core.risk.success_probability`) rather than from event
  interleavings; ``status``/``waste`` are the contract-bearing fields,
  while the event counters (``failures``, ``rollbacks``, ``work_lost``,
  ``commits``, ``risk_time``) are first-order renewal estimates.
  Success-*rate* agreement with the DES is claimed only for the
  exponential platform: the model's rate ``λ = 1/(nM)`` understates
  group chains under bursty heavy-tailed laws (Weibull ``k<1``,
  mixtures), where the DES sees clustered strikes.  Waste equivalence
  holds for every law — it is conditioned on completion.
* Cells the closed forms cannot express — shared failure traces
  (common random numbers require replaying one concrete event
  interleaving) — **fall back to the scalar DES per cell**
  (:func:`cell_engine`), and those cells are byte-identical to
  :class:`~repro.sim.backends.SerialBackend` output, sharing its store
  keys.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.period import optimal_period
from ..core.protocols import get_protocol
from ..core.risk import risk_window, success_probability
from ..errors import InfeasibleModelError, ParameterError
from .adaptive import ReplicaController
from .backends import CampaignBackend, SerialBackend, replica_seed
from .campaign import CampaignConfig
from .results import DesResult
from .rng import RngFactory

__all__ = [
    "VectorizedBackend",
    "cell_engine",
    "plan_engine",
    "run_cell_vectorized",
]

#: Safety valve for pathological failure laws whose draws never advance
#: the renewal clock (e.g. an empirical law containing zeros).
_MAX_SAMPLING_ROUNDS = 10_000


def cell_engine(config: CampaignConfig, plan) -> str:
    """Which engine actually simulates this cell under ``backend="vectorized"``.

    Pure in ``(config, plan)`` — every worker, the executor and the
    store key the same decision.  Shared failure traces force the DES:
    common random numbers mean replaying one concrete interleaving of
    per-node events, which the renewal closed forms cannot express.  A
    protocol lacking the renewal interface (phase lengths / RE times)
    would too, though every registered protocol provides it.
    """
    if config.share_traces:
        return "des"
    spec = get_protocol(plan.protocol)
    needed = ("phase_lengths", "work_per_period", "recovery_constant",
              "re_time", "effective_phi")
    if not all(hasattr(spec, a) for a in needed):
        return "des"
    return "vectorized"


def plan_engine(backend: str, config: CampaignConfig, plan) -> str:
    """Resolve a policy-level backend selector to this cell's engine."""
    if backend == "des":
        return "des"
    return cell_engine(config, plan)


def _sample_failure_times(
    rng: np.random.Generator, config: CampaignConfig, M: float,
    n_nodes: int, horizon: float,
) -> np.ndarray:
    """All failure instants in ``[0, horizon)`` of productive time.

    Exponential platform (``distribution is None``): the platform
    superposition is Poisson with rate ``1/M``, so draw the count and
    place it uniformly — exactly :func:`repro.sim.renewal.run_renewal`.

    General laws: per-node renewal processes with inter-arrivals from
    ``distribution.rescale(n·M)`` (the same construction as
    :func:`repro.sim.failures.FailureInjector.from_platform_mtbf`),
    sampled as batched matrices via ``sample(rng, size)`` and advanced
    with ``cumsum`` until every node's clock passes the horizon.  This
    captures the law's dispersion (a Weibull platform is burstier than
    Poisson); it is distribution-equal, not stream-equal, to the DES's
    per-node streams.
    """
    if config.distribution is None:
        n_fail = int(rng.poisson(horizon / M))
        return rng.uniform(0.0, horizon, size=n_fail)
    node_dist = config.distribution.rescale(M * n_nodes)
    lam = horizon / (M * n_nodes)  # expected failures per node
    batch = max(4, int(np.ceil(lam + 6.0 * np.sqrt(max(lam, 1.0)) + 4.0)))
    clocks = np.zeros(n_nodes)
    active = np.arange(n_nodes)
    collected: list[np.ndarray] = []
    for _ in range(_MAX_SAMPLING_ROUNDS):
        if active.size == 0:
            break
        draws = np.asarray(
            node_dist.sample(rng, size=(active.size, batch)), dtype=float
        )
        if not np.all(draws >= 0.0) or float(draws.max(initial=0.0)) <= 0.0:
            raise ParameterError(
                "failure distribution produced non-advancing inter-arrival "
                "times; cannot sample a renewal process from it"
            )
        times = clocks[active, None] + np.cumsum(draws, axis=1)
        collected.append(times[times < horizon])
        clocks[active] = times[:, -1]
        active = active[times[:, -1] < horizon]
    else:
        raise ParameterError(
            "failure sampling did not converge; distribution inter-arrivals "
            "are too small relative to the horizon"
        )
    if not collected:
        return np.empty(0)
    return np.concatenate(collected)


def run_cell_vectorized(
    config: CampaignConfig,
    plan,
    controller: ReplicaController,
    heartbeat: Callable[[], None] | None = None,
) -> list[DesResult]:
    """Execute one grid cell's replicas as a numpy batch.

    The control flow mirrors :func:`repro.sim.backends.run_cell`
    observably: replicas exist in seed order, the controller's
    :class:`~repro.sim.adaptive.StopCursor` is replayed over their waste
    samples and the first stop truncates the cell — so adaptive
    controllers, resume scans and store cursor replays see exactly the
    sequence a scalar run would produce.  Replicas past the stop are
    computed speculatively (array work is cheap) and discarded.
    """
    spec = get_protocol(plan.protocol)
    params = config.base_params.with_updates(M=plan.M)
    phi = plan.phi

    period = optimal_period(spec, params, phi)
    if not np.isfinite(period):
        # Same failure surface (type and guidance) as the DES path.
        raise InfeasibleModelError(
            f"{spec.key}: no feasible period at M={params.M:g}s; "
            "pass an explicit period to simulate a saturated regime"
        )
    period = float(period)
    eff_phi = float(np.asarray(spec.effective_phi(params, phi)))
    lengths = [float(np.asarray(x))
               for x in spec.phase_lengths(params, phi, period)]
    bounds = np.cumsum([0.0] + lengths)
    work_per_period = float(np.asarray(spec.work_per_period(params, phi, period)))
    stall = float(np.asarray(spec.recovery_constant(params, phi)))
    risk_win = float(np.asarray(risk_window(spec, params, phi)))
    horizon_wall = (config.max_time if config.max_time is not None
                    else 200.0 * config.work_target)
    # Productive time needed for the target work: the pattern delivers
    # work_per_period seconds of work every `period` seconds it runs.
    productive = period * config.work_target / work_per_period

    n_replicas = controller.max_replicas
    # Per-replica sampling from per-replica streams (store purity); the
    # draw order inside a stream is fixed — count/offsets, then the two
    # fatality uniforms — so outcomes never perturb downstream draws.
    times_per_replica: list[np.ndarray] = []
    u_fatal = np.empty(n_replicas)
    u_when = np.empty(n_replicas)
    for r in range(n_replicas):
        rng = RngFactory(replica_seed(config, r)).replica(0)
        times_per_replica.append(_sample_failure_times(
            rng, config, params.M, params.n, productive
        ))
        u_fatal[r] = rng.uniform()
        u_when[r] = rng.uniform()

    counts = np.array([t.size for t in times_per_replica], dtype=int)
    all_times = (np.concatenate(times_per_replica) if counts.sum()
                 else np.empty(0))
    rep_ids = np.repeat(np.arange(n_replicas), counts)

    # One batch over every failure of every replica: pattern offset →
    # phase bin → that phase's RE formula over all its strikes at once.
    offsets = all_times % period
    phase_of = np.clip(
        np.searchsorted(bounds, offsets, side="right") - 1,
        0, len(lengths) - 1,
    )
    blocks = np.empty_like(offsets)
    for phase in range(len(lengths)):
        hit = phase_of == phase
        if not np.any(hit):
            continue
        local = offsets[hit] - bounds[phase]
        re = np.asarray(
            spec.re_time(params, phi, period, phase, local), dtype=float
        )
        blocks[hit] = stall + re

    block_sum = np.bincount(rep_ids, weights=blocks, minlength=n_replicas)
    total_time = productive + block_sum
    # Fatality from the success-probability model (exact-exponential
    # variant: stays a probability in saturated regimes, agrees with the
    # paper's Eq. 11/16 to first order).
    p_succ = np.array([
        success_probability(spec, params, phi, float(t), method="exponential")
        for t in total_time
    ])
    is_fatal = u_fatal >= p_succ
    fatal_at = u_when * total_time

    results: list[DesResult] = []
    cursor = controller.cursor()
    for r in range(n_replicas):
        t_total = float(total_time[r])
        times = times_per_replica[r]
        n_fail = int(counts[r])
        # Wall-clock position of each failure, to first order (blocks
        # assumed spread uniformly over the run).
        dilation = t_total / productive if productive > 0 else 1.0
        meta = {
            "protocol": spec.key,
            "period": period,
            "phi": eff_phi,
            "seed": replica_seed(config, r),
            "n": params.n,
            "M": params.M,
            "engine": "vectorized",
        }
        if is_fatal[r] and fatal_at[r] <= horizon_wall:
            t_fatal = float(fatal_at[r])
            seen = int(np.count_nonzero(times * dilation <= t_fatal)) + 1
            frac = t_fatal / t_total if t_total > 0 else 0.0
            result = _assemble(
                status="fatal", makespan=t_fatal, config=config,
                work_done=config.work_target * frac,
                failures=seen, work_per_period=work_per_period,
                period=period, offsets=offsets[rep_ids == r],
                frac=frac, risk_win=risk_win,
                fatal_time=t_fatal, meta=meta,
            )
        elif t_total > horizon_wall:
            frac = horizon_wall / t_total
            result = _assemble(
                status="timeout", makespan=horizon_wall, config=config,
                work_done=config.work_target * frac,
                failures=int(np.count_nonzero(
                    times * dilation <= horizon_wall
                )),
                work_per_period=work_per_period, period=period,
                offsets=offsets[rep_ids == r], frac=frac,
                risk_win=risk_win, fatal_time=float("nan"), meta=meta,
            )
        else:
            result = _assemble(
                status="completed", makespan=t_total, config=config,
                work_done=config.work_target, failures=n_fail,
                work_per_period=work_per_period, period=period,
                offsets=offsets[rep_ids == r], frac=1.0,
                risk_win=risk_win, fatal_time=float("nan"), meta=meta,
            )
        results.append(result)
        if heartbeat is not None:
            heartbeat()
        if cursor.push(result.waste):
            break
    return results


def _assemble(
    *, status: str, makespan: float, config: CampaignConfig,
    work_done: float, failures: int, work_per_period: float, period: float,
    offsets: np.ndarray, frac: float, risk_win: float, fatal_time: float,
    meta: dict,
) -> DesResult:
    """Fill a :class:`DesResult` with first-order renewal estimates.

    ``failures`` is exact for completed runs; ``rollbacks`` equals it
    (every strike rolls back once in these protocols); ``work_lost``
    charges each strike the work accrued since its period began;
    ``commits`` counts completed patterns; ``risk_time`` opens one risk
    window per strike.  Only ``status``/``makespan`` (hence ``waste``)
    are covered by the equivalence contract.
    """
    work_lost = float((offsets / period).sum() * work_per_period * frac)
    commits = int(work_done // work_per_period)
    return DesResult(
        status=status,
        makespan=float(makespan),
        work_target=config.work_target,
        work_done=float(work_done),
        failures=int(failures),
        rollbacks=int(failures),
        work_lost=work_lost,
        commits=commits,
        risk_time=float(failures) * risk_win,
        fatal_time=fatal_time,
        fatal_group=(),
        meta=meta,
    )


class VectorizedBackend(SerialBackend):
    """In-process backend running each cell as one numpy batch.

    A :class:`~repro.sim.backends.SerialBackend` whose engine is
    ``"vectorized"``: chunks execute in submission order, but each
    vectorizable cell runs through :func:`run_cell_vectorized`; cells
    needing event interleaving (:func:`cell_engine`) use the scalar DES
    path with the inherited shared-trace cache, byte-identical to a
    plain serial run.
    """

    def __init__(self) -> None:
        super().__init__(engine="vectorized")
