"""Adapter: run a :class:`~repro.core.protocols.ProtocolSpec` on the DES.

Turns the analytical spec (double/triple, blocking/NBL/BOF) into the
:class:`~repro.sim.protocols.base.SimProtocol` the platform machine
executes.  This is the *only* bridge between the model and the simulator,
so their agreement (checked by the validation experiments) genuinely tests
the formulas' derivations — phase structure, overlap slowdown, commit
points, recovery stalls and risk windows are all resolved here from the
spec, at scalar values of ``(φ, P)``.
"""

from __future__ import annotations

import numpy as np

from ...core.parameters import Parameters
from ...core.protocols import PhaseKind, ProtocolSpec, get_protocol
from ...errors import ParameterError
from .base import PhasePlan, SimProtocol

__all__ = ["BuddySimProtocol"]


class BuddySimProtocol(SimProtocol):
    """One (spec, params, φ, P) configuration ready for event simulation."""

    def __init__(
        self,
        spec: ProtocolSpec | str,
        params: Parameters,
        phi: float,
        period: float,
    ):
        spec = get_protocol(spec)
        self.spec = spec
        self.params = params
        self.key = spec.key
        self.group_size = spec.group_size
        self.phi = float(np.asarray(spec.effective_phi(params, phi)))
        self.period = float(period)
        p_min = float(np.asarray(spec.min_period(params, phi)))
        if self.period < p_min - 1e-9:
            raise ParameterError(
                f"period {period} below minimum {p_min} for {spec.key}"
            )
        self.theta = float(np.asarray(spec.theta(params, phi)))
        lengths = spec.phase_lengths(params, phi, self.period)
        self._lengths = tuple(float(np.asarray(x)) for x in lengths)
        self._plan = tuple(
            PhasePlan(kind.value, length, self._rate_for(kind))
            for kind, length in zip(spec.phase_kinds(), self._lengths)
        )

    def _rate_for(self, kind: PhaseKind) -> float:
        if kind is PhaseKind.LOCAL_CHECKPOINT:
            return 0.0
        if kind is PhaseKind.EXCHANGE:
            return (self.theta - self.phi) / self.theta
        return 1.0

    # ------------------------------------------------------------------
    def phase_plan(self) -> tuple[PhasePlan, ...]:
        return self._plan

    def commit_phase(self) -> int | None:
        return self.spec.commit_phase()

    def recovery_stall(self) -> float:
        return float(np.asarray(self.spec.recovery_constant(self.params, self.phi)))

    def risk_duration(self) -> float | None:
        return float(np.asarray(self.spec.risk_window(self.params, self.phi)))

    def re_exec_time(self, phase: int, offset: float, lost_work: float) -> float:
        return float(
            np.asarray(
                self.spec.re_time(self.params, self.phi, self.period, phase, offset)
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BuddySimProtocol({self.key}, phi={self.phi:g}, "
            f"P={self.period:g}, theta={self.theta:g})"
        )
