"""Centralised coordinated checkpointing baseline (Young/Daly, §III-B/§VII).

Every period the whole application image is dumped to reliable stable
storage, blocking, for ``C`` seconds.  Stable storage survives failures,
so there is **no risk window**: a failure costs downtime ``D`` + recovery
``R`` + re-execution of everything since the last completed dump, but is
never fatal.  This is the comparator that motivates buddy checkpointing:
``C`` (global, shared storage bandwidth) is orders of magnitude larger
than the buddy protocols' per-node ``δ``.
"""

from __future__ import annotations

from ...errors import ParameterError
from .base import PhasePlan, SimProtocol

__all__ = ["CoordinatedSimProtocol"]


class CoordinatedSimProtocol(SimProtocol):
    """Blocking centralised checkpointing at period ``P``.

    Parameters
    ----------
    checkpoint_time:
        Global dump duration ``C``.
    downtime, recovery:
        ``D`` and ``R_g`` of the centralised model.
    period:
        Checkpointing period ``P >= C``.
    """

    group_size = 0  # no buddy groups, failures never fatal
    key = "coordinated"

    def __init__(
        self,
        checkpoint_time: float,
        downtime: float,
        recovery: float,
        period: float,
    ):
        if checkpoint_time <= 0:
            raise ParameterError("checkpoint_time must be > 0")
        if downtime < 0 or recovery < 0:
            raise ParameterError("downtime and recovery must be >= 0")
        if period < checkpoint_time:
            raise ParameterError("period must be >= checkpoint_time")
        self.C = float(checkpoint_time)
        self.D = float(downtime)
        self.R = float(recovery)
        self.period = float(period)

    def phase_plan(self) -> tuple[PhasePlan, ...]:
        return (
            PhasePlan("global-checkpoint", self.C, 0.0),
            PhasePlan("compute", self.period - self.C, 1.0),
        )

    def commit_phase(self) -> int | None:
        return 0

    def recovery_stall(self) -> float:
        return self.D + self.R

    def risk_duration(self) -> float | None:
        return None

    def re_exec_time(self, phase: int, offset: float, lost_work: float) -> float:
        # Work is redone at full speed; wall time burnt inside a failed
        # (uncommitted) checkpoint phase must be re-spent as well.
        burnt = offset if phase == 0 else 0.0
        return lost_work + burnt
