"""No-checkpointing baseline (Eq. 12's ``P_base`` regime).

The application simply runs; any failure restarts it from scratch after
the downtime ``D``.  Used to reproduce the paper's introduction argument
(a 1M-node platform almost surely loses a long run) and as the trivial
lower bound on fault-free overhead / upper bound on failure damage.
"""

from __future__ import annotations

import math

from ...errors import ParameterError
from .base import PhasePlan, SimProtocol

__all__ = ["NoCheckpointSimProtocol"]


class NoCheckpointSimProtocol(SimProtocol):
    """Run at full speed, restart on every failure."""

    group_size = 0
    key = "no-checkpoint"

    def __init__(self, downtime: float = 0.0):
        if downtime < 0:
            raise ParameterError("downtime must be >= 0")
        self.D = float(downtime)

    def phase_plan(self) -> tuple[PhasePlan, ...]:
        # One endless compute phase; the completion event is the only exit.
        return (PhasePlan("compute", math.inf, 1.0),)

    def commit_phase(self) -> int | None:
        return None

    def recovery_stall(self) -> float:
        return self.D

    def risk_duration(self) -> float | None:
        return None

    def re_exec_time(self, phase: int, offset: float, lost_work: float) -> float:
        return lost_work
