"""The coordinated-platform state machine driving every protocol.

All protocols in the paper are *coordinated*: nodes move through period
phases in lockstep, and a failure anywhere stops the whole application
until the faulty node recovered (§II).  The timeline therefore alternates:

``RUNNING``
    Periodic phases (3 per period).  Work advances at a phase-specific
    rate: 0 during blocking checkpoints, ``(θ−φ)/θ`` during overlapped
    exchanges, 1 during pure computation.
``BLOCK`` (failure handling)
    Rollback to the last committed snapshot, then a recovery block of
    ``recovery_stall + re_exec`` seconds: dead time (downtime ``D`` +
    blocking restore ``R`` + any blocking-on-failure resends) followed by
    the re-execution segment whose duration is the protocol's
    offset-resolved ``RE`` (§III-A).  When the block ends the platform is
    *exactly* where it was at the failure instant (same work, same period
    offset) — the block-insertion semantics that make the simulator
    directly comparable with the analytical ``F = A + P/2``.

Failures arriving during a block roll the work back again (uncommitted
re-execution is lost) and restart the block from the new failure time.
Risk windows are independent of blocks: each failure opens a window of the
protocol's risk duration on its group; a *different* member of a group
failing inside the window is **fatal** (§III-C).  Windows can outlast the
block (e.g. TRIPLE's ``2θ`` resend vs a short phase-1 re-execution) — the
platform may be RUNNING with groups still at risk.

The same machine runs the centralised baseline (no risk windows) and the
no-checkpointing baseline (rollback to zero), so cross-protocol
comparisons share one execution engine.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ...errors import SimulationError
from ..application import Application
from ..cluster import Cluster
from ..engine import Engine, Event
from ..failures import FailureInjector

__all__ = ["PhasePlan", "SimProtocol", "PlatformSim"]


@dataclass(frozen=True)
class PhasePlan:
    """One period phase as executed by the platform machine."""

    name: str
    length: float  #: seconds (may be ``inf`` for the no-checkpoint baseline)
    rate: float  #: application progress per second in [0, 1]

    def __post_init__(self) -> None:
        if self.length < 0:
            raise SimulationError(f"phase length must be >= 0: {self}")
        if not 0.0 <= self.rate <= 1.0 + 1e-12:
            raise SimulationError(f"phase rate must lie in [0, 1]: {self}")


class SimProtocol(ABC):
    """What the platform machine needs to know about a protocol."""

    key: str = "abstract"
    #: Buddy-group size, or 0 when the protocol has no buddy groups
    #: (centralised / no checkpointing — failures are never fatal).
    group_size: int = 0

    @abstractmethod
    def phase_plan(self) -> tuple[PhasePlan, ...]:
        """The period's phases, in order."""

    @abstractmethod
    def commit_phase(self) -> int | None:
        """Index of the phase whose *end* commits the period's snapshot.

        ``None`` = the protocol never commits (no checkpointing).
        """

    @abstractmethod
    def recovery_stall(self) -> float:
        """Dead time per failure before re-execution starts (D + R + ...)."""

    @abstractmethod
    def risk_duration(self) -> float | None:
        """Risk-window length per failure; ``None`` = failures never fatal."""

    @abstractmethod
    def re_exec_time(self, phase: int, offset: float, lost_work: float) -> float:
        """Re-execution segment duration for a failure at this position."""


class PlatformSim:
    """Executes one application run under a :class:`SimProtocol`.

    Parameters
    ----------
    protocol:
        Protocol adapter.
    injector:
        Per-node failure processes.
    application:
        Work target and progress tracking.
    engine:
        Event engine (owned by the caller so several platforms could share
        a timeline in future extensions).
    cluster:
        Buddy groups and risk bookkeeping; required iff
        ``protocol.group_size > 0``.
    """

    _RUNNING = "running"
    _BLOCK = "block"

    def __init__(
        self,
        protocol: SimProtocol,
        injector: FailureInjector,
        application: Application,
        engine: Engine,
        cluster: Cluster | None = None,
    ):
        if protocol.group_size > 0 and cluster is None:
            raise SimulationError(f"{protocol.key} needs a cluster (buddy groups)")
        self.protocol = protocol
        self.injector = injector
        self.app = application
        self.engine = engine
        self.cluster = cluster
        self.phases = protocol.phase_plan()
        if not self.phases:
            raise SimulationError("protocol has no phases")

        self.mode = self._RUNNING
        self.status: str | None = None  # "completed" | "fatal" after stop
        self.phase_idx = 0
        self.phase_start = 0.0
        #: Offset at which the current phase was (re-)entered; work before
        #: it was already credited (restored by the recovery block).
        self._phase_entry_offset = 0.0
        self.period_start_work = 0.0
        #: (phase_idx, offset, lost_work) while in a BLOCK.
        self._resume: tuple[int, float, float] | None = None
        self._pending: Event | None = None  # PHASE_END or COMPLETE
        self._block_event: Event | None = None
        self._node_gen = [0] * injector.n_nodes
        self.fatal_time = float("nan")
        self.fatal_group: tuple[int, ...] = ()
        self.failures_seen = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule initial failures and enter the first phase at t=0."""
        for node in range(self.injector.n_nodes):
            delay = self.injector.next_failure_delay(node)
            self.engine.schedule(delay, self._on_failure, payload=node, kind="failure")
        self._enter_phase(0)

    # ------------------------------------------------------------------
    # RUNNING mode
    # ------------------------------------------------------------------
    def _enter_phase(self, idx: int, offset: float = 0.0) -> None:
        """Enter phase ``idx`` at ``offset`` seconds into it (0 normally;
        >0 when resuming after a recovery block)."""
        plan = self.phases[idx]
        now = self.engine.now
        self.mode = self._RUNNING
        self.phase_idx = idx
        self.phase_start = now - offset
        self._phase_entry_offset = offset
        if idx == 0 and offset == 0.0:
            self.period_start_work = self.app.work_done
        remaining_phase = plan.length - offset
        if remaining_phase < -1e-9:
            raise SimulationError("resume offset beyond phase length")
        if self.app.complete:
            # Recovery restored exactly the target amount of work (a
            # failure struck at the completion instant): finish now.
            self._pending = self.engine.schedule(
                now, self._on_complete, kind="complete"
            )
            return
        # Completion may land inside this phase.
        if plan.rate > 0 and self.app.remaining > 0:
            t_complete = now + self.app.remaining / plan.rate
        else:
            t_complete = math.inf
        t_phase_end = now + max(remaining_phase, 0.0)
        if t_complete <= t_phase_end + 1e-12:
            self._pending = self.engine.schedule(
                t_complete, self._on_complete, kind="complete"
            )
        elif math.isfinite(t_phase_end):
            self._pending = self.engine.schedule(
                t_phase_end, self._on_phase_end, kind="phase-end"
            )
        else:
            self._pending = None  # infinite compute phase; completion is the exit

    def _advance_partial(self) -> float:
        """Credit work executed since the phase was (re-)entered.

        Work before ``_phase_entry_offset`` was already restored by the
        recovery block, so only the stretch since entry counts.  Returns
        the absolute offset into the current phase.
        """
        plan = self.phases[self.phase_idx]
        offset = self.engine.now - self.phase_start
        if offset < -1e-9:  # pragma: no cover - defensive
            raise SimulationError("time went backwards within a phase")
        offset = max(offset, 0.0)
        executed = min(offset, plan.length) - self._phase_entry_offset
        if plan.rate > 0 and executed > 0:
            self.app.advance(executed * plan.rate)
        return offset

    def _on_phase_end(self, engine: Engine, event: Event) -> None:
        plan = self.phases[self.phase_idx]
        executed = plan.length - self._phase_entry_offset
        if plan.rate > 0 and executed > 0:
            self.app.advance(executed * plan.rate)
        if self.protocol.commit_phase() == self.phase_idx:
            self.app.commit_snapshot(engine.now, self.period_start_work)
        next_idx = (self.phase_idx + 1) % len(self.phases)
        self._enter_phase(next_idx)

    def _on_complete(self, engine: Engine, event: Event) -> None:
        self.app.advance(self.app.remaining)
        self.status = "completed"
        engine.stop()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_failure(self, engine: Engine, event: Event) -> None:
        node = event.payload
        # Renewal process: the (replacement) node's next failure.
        delay = self.injector.next_failure_delay(node)
        engine.schedule(engine.now + delay, self._on_failure, payload=node,
                        kind="failure")
        if self.status is not None:
            return
        self.failures_seen += 1
        self._node_gen[node] += 1

        risk = self.protocol.risk_duration()
        if self.cluster is not None and risk is not None:
            fatal = self.cluster.on_failure(node, engine.now, risk)
            if fatal:
                self.status = "fatal"
                self.fatal_time = engine.now
                self.fatal_group = self.cluster.group_of(node).members
                engine.stop()
                return
            self.engine.schedule(
                engine.now + risk,
                self._on_risk_end,
                payload=(node, self._node_gen[node]),
                kind="risk-end",
            )

        if self.mode == self._RUNNING:
            offset = self._advance_partial()
            if self._pending is not None:
                Engine.cancel(self._pending)
                self._pending = None
            lost = self.app.rollback()
            self._resume = (self.phase_idx, offset, lost)
        else:
            # Failure during a recovery block: discard re-execution
            # progress (none was committed) and restart the block; the
            # resume target is unchanged.
            if self._block_event is not None:
                Engine.cancel(self._block_event)
                self._block_event = None
            self.app.rollback()  # no-op on work (already at snapshot), counts it

        phase_idx, offset, lost = self._resume
        duration = self.protocol.recovery_stall() + self.protocol.re_exec_time(
            phase_idx, offset, lost
        )
        self.mode = self._BLOCK
        self._block_event = self.engine.schedule(
            engine.now + duration, self._on_block_end, kind="block-end"
        )

    def _on_block_end(self, engine: Engine, event: Event) -> None:
        phase_idx, offset, lost = self._resume
        self._resume = None
        self._block_event = None
        # Re-execution restored exactly the lost progress.
        self.app.advance(lost)
        self._enter_phase(phase_idx, offset=offset)

    def _on_risk_end(self, engine: Engine, event: Event) -> None:
        node, gen = event.payload
        if self.cluster is None:
            return
        if self._node_gen[node] != gen:
            return  # superseded by a newer failure of the same node
        group = self.cluster.group_of(node)
        if group.recovering == node:
            self.cluster.on_risk_end(node, engine.now)

    # ------------------------------------------------------------------
    def finalize(self) -> str:
        """Resolve the run status after the engine stopped."""
        if self.status is None:
            self.status = "timeout"
        if self.cluster is not None:
            self.cluster.abort_risk_windows(self.engine.now)
        return self.status
