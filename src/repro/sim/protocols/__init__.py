"""Event-level protocol implementations.

``base``
    The :class:`~repro.sim.protocols.base.SimProtocol` interface and the
    generic coordinated-platform state machine
    (:class:`~repro.sim.protocols.base.PlatformSim`).
``buddy``
    Adapter running any :class:`~repro.core.protocols.ProtocolSpec`
    (double/triple, blocking/NBL/BOF) on the platform machine.
``coordinated``
    Classical centralised checkpointing to stable storage (Young/Daly
    baseline — no risk window, failures are never fatal).
``none``
    No checkpointing: every failure restarts the application.
"""

from .base import PhasePlan, PlatformSim, SimProtocol
from .buddy import BuddySimProtocol
from .coordinated import CoordinatedSimProtocol
from .none import NoCheckpointSimProtocol

__all__ = [
    "PhasePlan",
    "PlatformSim",
    "SimProtocol",
    "BuddySimProtocol",
    "CoordinatedSimProtocol",
    "NoCheckpointSimProtocol",
]
