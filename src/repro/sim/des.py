"""Top-level discrete-event simulation runner.

Wires a protocol configuration into the platform machine
(:mod:`repro.sim.protocols.base`) with failure injection, buddy groups and
an application, runs it, and returns a :class:`~repro.sim.results.DesResult`.

Example
-------
>>> from repro import DOUBLE_NBL, scenarios
>>> from repro.sim import DesConfig, run_des
>>> params = scenarios.BASE.parameters(M=120, n=64)
>>> cfg = DesConfig(protocol=DOUBLE_NBL, params=params, phi=2.0,
...                 work_target=3600.0, seed=7)
>>> result = run_des(cfg)
>>> result.status in ("completed", "fatal")
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..core.parameters import Parameters
from ..core.period import optimal_period
from ..core.protocols import ProtocolSpec, get_protocol
from ..errors import InfeasibleModelError, ParameterError
from .application import Application
from .cluster import Cluster
from .distributions import FailureDistribution
from .engine import Engine
from .failures import FailureInjector, TraceInjector
from .protocols.base import PlatformSim, SimProtocol
from .protocols.buddy import BuddySimProtocol
from .results import DesResult, MonteCarloSummary
from .rng import RngFactory
from .topology import GroupAssignment, contiguous_groups, random_groups, strided_groups

__all__ = ["DesConfig", "run_des", "run_des_batch", "summarize_waste"]

_GROUPINGS = ("contiguous", "strided", "random")


@dataclass(frozen=True)
class DesConfig:
    """Configuration of one event-simulation run.

    Parameters
    ----------
    protocol:
        A :class:`~repro.core.protocols.ProtocolSpec` (or key) to run via
        the buddy adapter, or a ready-made
        :class:`~repro.sim.protocols.base.SimProtocol` (e.g. the
        centralised or no-checkpoint baselines).
    params:
        Platform parameters.  ``params.n`` is the simulated node count —
        event simulation is practical up to ~10⁴ nodes; use the risk Monte
        Carlo for the 10⁶-node Exa risk studies.
    phi:
        Overhead choice (ignored for non-buddy protocols).
    period:
        Checkpointing period; ``None`` = the model-optimal period.
    work_target:
        Application work (T_base) in seconds of compute.
    distribution:
        Node failure law; ``None`` = exponential at the node MTBF ``n·M``.
    trace:
        Optional recorded failure trace (``failures.generate_trace``
        output or ``(time, node)`` pairs).  Replayed verbatim —
        ``distribution`` is then ignored; two protocols run on the same
        trace see the identical failure history (common random numbers).
    grouping:
        ``"contiguous"`` | ``"strided"`` | ``"random"`` or an explicit
        :class:`~repro.sim.topology.GroupAssignment`.
    max_time:
        Wall-clock simulation horizon; ``None`` = ``200 × work_target``.
    """

    protocol: ProtocolSpec | SimProtocol | str
    params: Parameters
    work_target: float
    phi: float = 0.0
    period: float | None = None
    distribution: FailureDistribution | None = None
    trace: object | None = None
    grouping: str | GroupAssignment = "contiguous"
    seed: int | None = 12345
    max_time: float | None = None
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.work_target <= 0:
            raise ParameterError("work_target must be > 0")
        if isinstance(self.grouping, str) and self.grouping not in _GROUPINGS:
            raise ParameterError(
                f"grouping must be one of {_GROUPINGS} or a GroupAssignment"
            )


def _build_sim_protocol(config: DesConfig) -> SimProtocol:
    if isinstance(config.protocol, SimProtocol):
        return config.protocol
    spec = get_protocol(config.protocol)
    period = config.period
    if period is None:
        period = optimal_period(spec, config.params, config.phi)
        if not np.isfinite(period):
            raise InfeasibleModelError(
                f"{spec.key}: no feasible period at M={config.params.M:g}s; "
                "pass an explicit period to simulate a saturated regime"
            )
    return BuddySimProtocol(spec, config.params, config.phi, float(period))


def _build_cluster(
    sim_protocol: SimProtocol, config: DesConfig, rng_factory: RngFactory
) -> Cluster | None:
    g = sim_protocol.group_size
    if g == 0:
        return None
    n = config.params.n
    if n % g != 0:
        raise ParameterError(
            f"params.n={n} must be a multiple of the group size {g}"
        )
    if isinstance(config.grouping, GroupAssignment):
        assignment = config.grouping
        if assignment.n_nodes != n or assignment.group_size != g:
            raise ParameterError("GroupAssignment does not match (n, group size)")
    elif config.grouping == "contiguous":
        assignment = contiguous_groups(n, g)
    elif config.grouping == "strided":
        assignment = strided_groups(n, g)
    else:
        assignment = random_groups(n, g, rng_factory.component(0))
    return Cluster(assignment)


def run_des(config: DesConfig) -> DesResult:
    """Run one event simulation to completion / fatal failure / timeout."""
    rng_factory = RngFactory(config.seed)
    sim_protocol = _build_sim_protocol(config)
    cluster = _build_cluster(sim_protocol, config, rng_factory)
    if config.trace is not None:
        injector = TraceInjector(config.params.n, config.trace)
    else:
        injector = FailureInjector.from_platform_mtbf(
            config.params.n, config.params.M, rng_factory, config.distribution
        )
    app = Application(work_target=config.work_target)
    engine = Engine()
    platform = PlatformSim(sim_protocol, injector, app, engine, cluster)
    platform.start()
    horizon = (
        config.max_time if config.max_time is not None else 200.0 * config.work_target
    )
    engine.run(until=horizon, max_events=config.max_events)
    status = platform.finalize()
    return DesResult(
        status=status,
        makespan=engine.now,
        work_target=config.work_target,
        work_done=app.work_done,
        failures=platform.failures_seen,
        rollbacks=app.rollbacks,
        work_lost=app.work_lost,
        commits=len(app.commits),
        risk_time=sum(g.risk_time for g in cluster.groups) if cluster else 0.0,
        fatal_time=platform.fatal_time,
        fatal_group=platform.fatal_group,
        meta={
            "protocol": sim_protocol.key,
            "period": getattr(sim_protocol, "period", None),
            "phi": getattr(sim_protocol, "phi", None),
            "seed": config.seed,
            "n": config.params.n,
            "M": config.params.M,
        },
    )


def run_des_batch(config: DesConfig, replicas: int) -> list[DesResult]:
    """Run independent replicas (seeds derived from ``config.seed``)."""
    if replicas < 1:
        raise ParameterError("replicas must be >= 1")
    base_seed = config.seed if config.seed is not None else 0
    out = []
    for r in range(replicas):
        out.append(run_des(replace(config, seed=base_seed + 1000003 * r)))
    return out


def summarize_waste(
    results: Sequence[DesResult], confidence: float = 0.95
) -> MonteCarloSummary:
    """Aggregate measured waste over completed replicas (CI included)."""
    wastes = [r.waste for r in results]
    successes = sum(1 for r in results if r.succeeded)
    return MonteCarloSummary.from_samples(
        wastes,
        successes=successes,
        confidence=confidence,
        meta={"protocol": results[0].meta.get("protocol") if results else None},
    )
