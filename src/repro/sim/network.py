"""Network model: derive the paper's transfer parameters from hardware.

The analytical model needs only two network-derived numbers — the blocking
transfer time ``R = θmin`` and the overlap factor ``α``.  This module
computes them from physical characteristics so scenarios can be built from
hardware sheets instead of magic constants (that is how Table I's values
arise: 512 MB over the Base network ⇒ R ≈ 4 s; 64 TB/node over 1 TB/s with
overlap provisioning ⇒ R = 60 s on Exa).

:class:`Link` models a full-duplex point-to-point connection with a fixed
latency and bandwidth shared equally among concurrent transfers
(progressive-filling, the standard fluid model).  The buddy exchange of the
double algorithms is a *simultaneous bidirectional* transfer; on a
full-duplex link both directions proceed at full rate, on a half-duplex
link they halve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["Link", "blocking_transfer_time", "effective_alpha"]


@dataclass(frozen=True)
class Link:
    """A point-to-point link.

    Parameters
    ----------
    bandwidth:
        Bytes per second available to checkpoint traffic.
    latency:
        Per-transfer startup latency in seconds.
    full_duplex:
        Whether both directions carry full bandwidth simultaneously.
    """

    bandwidth: float
    latency: float = 0.0
    full_duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ParameterError("bandwidth must be > 0")
        if self.latency < 0:
            raise ParameterError("latency must be >= 0")

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: float, concurrent: int = 1) -> float:
        """Time to move ``nbytes`` with ``concurrent`` equal sharers."""
        if nbytes < 0:
            raise ParameterError("nbytes must be >= 0")
        if concurrent < 1:
            raise ParameterError("concurrent must be >= 1")
        return self.latency + nbytes * concurrent / self.bandwidth

    def exchange_time(self, nbytes: float) -> float:
        """Duration of a simultaneous buddy exchange (both send ``nbytes``)."""
        sharers = 1 if self.full_duplex else 2
        return self.transfer_time(nbytes, concurrent=sharers)


def blocking_transfer_time(checkpoint_bytes: float, link: Link) -> float:
    """The paper's ``R = θmin``: one image at full network speed."""
    return link.exchange_time(checkpoint_bytes)


def effective_alpha(
    link: Link,
    compute_memory_bandwidth: float,
    checkpoint_bytes: float,
    *,
    max_alpha: float = 100.0,
) -> float:
    """Estimate the overlap factor ``α`` from bandwidth headroom.

    Heuristic: the transfer can be slowed until its bandwidth demand drops
    below the share of memory bandwidth the application can spare.  If the
    network needs ``b_net = size/R`` when blocking, and hiding it requires
    its rate to fall to ``b_hidden`` (the spare bandwidth), then
    ``θmax/θmin = b_net/b_hidden`` and ``α = θmax/θmin − 1``.

    The paper treats ``α = 10`` as conservative; this helper exists so the
    examples can derive scenario variants from hardware sheets, not to
    claim precision.
    """
    if compute_memory_bandwidth <= 0:
        raise ParameterError("compute_memory_bandwidth must be > 0")
    if checkpoint_bytes <= 0:
        raise ParameterError("checkpoint_bytes must be > 0")
    r = blocking_transfer_time(checkpoint_bytes, link)
    b_net = checkpoint_bytes / r
    ratio = b_net / compute_memory_bandwidth
    # Spare-bandwidth fraction shrinks as the app saturates memory: assume
    # the app can spare ~1/(1+ratio) of the bus without visible slowdown.
    alpha = min(max_alpha, max(0.0, (1.0 + ratio) / max(ratio, 1e-12) - 1.0))
    return float(alpha)
