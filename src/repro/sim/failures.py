"""Failure injection: per-node failure processes and trace utilities.

A :class:`FailureInjector` owns one renewal process per node: node ``i``
draws inter-arrival times from a :class:`~repro.sim.distributions.
FailureDistribution` using its private RNG stream.  After a failure, the
replacement node starts a fresh clock (renewal semantics — exact for
exponential laws; for ageing laws this models "replacement hardware is
new").

Scale conventions: the paper parameterises by the *platform* MTBF ``M``;
individual nodes then have ``M_ind = n·M`` (§VII).  Constructors accept
either scale.

The module also provides trace generation/statistics so experiments can
record and replay failure schedules (:func:`generate_trace`,
:func:`trace_statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .distributions import Exponential, FailureDistribution
from .rng import RngFactory

__all__ = [
    "FailureInjector",
    "TraceInjector",
    "generate_trace",
    "trace_statistics",
    "TraceStats",
]


class FailureInjector:
    """Per-node renewal failure processes.

    Parameters
    ----------
    n_nodes:
        Number of platform nodes.
    node_distribution:
        Inter-arrival law of a *single node* (mean = node MTBF).
    rng_factory:
        Stream factory; node ``i`` uses ``rng_factory.node(i)``.
    """

    def __init__(
        self,
        n_nodes: int,
        node_distribution: FailureDistribution,
        rng_factory: RngFactory,
    ):
        if n_nodes < 1:
            raise ParameterError("n_nodes must be >= 1")
        self.n_nodes = int(n_nodes)
        self.distribution = node_distribution
        self._rngs = [rng_factory.node(i) for i in range(self.n_nodes)]

    @classmethod
    def from_platform_mtbf(
        cls,
        n_nodes: int,
        platform_mtbf: float,
        rng_factory: RngFactory,
        distribution: FailureDistribution | None = None,
    ) -> "FailureInjector":
        """Build from the paper's platform-level ``M``.

        ``distribution`` (if given) is rescaled to the node MTBF
        ``n·M``; default is exponential.
        """
        if platform_mtbf <= 0:
            raise ParameterError("platform MTBF must be > 0")
        node_mtbf = platform_mtbf * n_nodes
        dist = (
            Exponential(node_mtbf)
            if distribution is None
            else distribution.rescale(node_mtbf)
        )
        return cls(n_nodes, dist, rng_factory)

    # ------------------------------------------------------------------
    def next_failure_delay(self, node_id: int) -> float:
        """Draw the next inter-arrival time of ``node_id``'s process."""
        if not 0 <= node_id < self.n_nodes:
            raise ParameterError(f"node_id {node_id} out of range")
        return float(self.distribution.sample(self._rngs[node_id]))

    def initial_failure_times(self) -> np.ndarray:
        """First failure time of every node (t=0 start, fresh clocks)."""
        return np.array(
            [self.next_failure_delay(i) for i in range(self.n_nodes)], dtype=float
        )

    @property
    def node_mtbf(self) -> float:
        return self.distribution.mean()

    @property
    def platform_mtbf(self) -> float:
        return self.distribution.mean() / self.n_nodes


class TraceInjector:
    """Replay a recorded failure trace instead of sampling one.

    Accepts the structured array produced by :func:`generate_trace`
    (fields ``time``/``node``) or any ``(time, node)`` pair sequence.
    Nodes whose schedule is exhausted never fail again (their next delay
    is ``+inf`` past the horizon).  Replaying the same trace under two
    protocols gives a *common-random-numbers* comparison: both face the
    identical failure history.
    """

    #: Far-future sentinel returned once a node's schedule is exhausted.
    NEVER = 1e300

    def __init__(self, n_nodes: int, trace):
        if n_nodes < 1:
            raise ParameterError("n_nodes must be >= 1")
        self.n_nodes = int(n_nodes)
        if hasattr(trace, "dtype") and trace.dtype.names:
            pairs = [(float(t), int(v)) for t, v in zip(trace["time"], trace["node"])]
        else:
            pairs = [(float(t), int(v)) for t, v in trace]
        schedules: dict[int, list[float]] = {}
        last_time = 0.0
        for time, node in pairs:
            if not 0 <= node < self.n_nodes:
                raise ParameterError(f"trace node {node} out of range")
            if time < last_time:
                raise ParameterError("trace must be sorted by time")
            last_time = time
            schedules.setdefault(node, []).append(time)
        # Absolute times -> successive inter-arrival delays per node.
        self._delays: dict[int, list[float]] = {}
        for node, times in schedules.items():
            prev, delays = 0.0, []
            for t in times:
                delays.append(t - prev)
                prev = t
            self._delays[node] = delays
        self.total_events = len(pairs)

    def next_failure_delay(self, node: int) -> float:
        if not 0 <= node < self.n_nodes:
            raise ParameterError(f"node_id {node} out of range")
        queue = self._delays.get(node)
        return queue.pop(0) if queue else self.NEVER


# ----------------------------------------------------------------------
# Trace utilities
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a failure trace."""

    count: int
    horizon: float
    platform_mtbf: float
    node_mtbf_estimate: float
    interarrival_mean: float
    interarrival_cv: float  #: coefficient of variation (1.0 ⇔ Poisson-like)


def generate_trace(
    injector: FailureInjector, horizon: float
) -> np.ndarray:
    """All (time, node) failures up to ``horizon``, sorted by time.

    Returns a structured array with fields ``time`` (f8) and ``node`` (i8).
    Renewal semantics: each node's clock restarts at its own failures.
    """
    if horizon <= 0:
        raise ParameterError("horizon must be > 0")
    times: list[float] = []
    nodes: list[int] = []
    for node in range(injector.n_nodes):
        t = injector.next_failure_delay(node)
        while t <= horizon:
            times.append(t)
            nodes.append(node)
            t += injector.next_failure_delay(node)
    order = np.argsort(times, kind="stable")
    out = np.empty(len(times), dtype=[("time", "f8"), ("node", "i8")])
    out["time"] = np.asarray(times, dtype=float)[order]
    out["node"] = np.asarray(nodes, dtype=np.int64)[order]
    return out


def trace_statistics(trace: np.ndarray, horizon: float, n_nodes: int) -> TraceStats:
    """MTBF and dispersion estimates from a trace (validates injectors)."""
    if horizon <= 0 or n_nodes < 1:
        raise ParameterError("horizon must be > 0 and n_nodes >= 1")
    count = int(trace.shape[0])
    if count == 0:
        return TraceStats(0, horizon, np.inf, np.inf, np.inf, np.nan)
    platform_mtbf = horizon / count
    inter = np.diff(np.concatenate(([0.0], np.asarray(trace["time"], dtype=float))))
    mean = float(inter.mean())
    cv = float(inter.std(ddof=1) / mean) if count > 1 and mean > 0 else np.nan
    return TraceStats(
        count=count,
        horizon=horizon,
        platform_mtbf=platform_mtbf,
        node_mtbf_estimate=platform_mtbf * n_nodes,
        interarrival_mean=mean,
        interarrival_cv=cv,
    )
