"""Reproducible random-number streams for the simulators.

Every stochastic component (each node's failure process, each Monte Carlo
replica) draws from its own :class:`numpy.random.Generator`, spawned from a
single root seed via :class:`numpy.random.SeedSequence`.  This gives:

* bit-reproducible simulations from one integer seed,
* statistically independent streams (no accidental correlation between a
  node's failures and its buddy's),
* stable stream assignment: stream ``k`` is the same whether or not other
  streams were instantiated (important when comparing protocol variants on
  *common random numbers*).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ParameterError

__all__ = ["RngFactory"]


class RngFactory:
    """Spawns named/indexed child generators from one root seed.

    Examples
    --------
    >>> factory = RngFactory(1234)
    >>> node_rng = factory.node(17)       # failure stream of node 17
    >>> replica = factory.replica(3)      # Monte Carlo replica 3
    >>> same = RngFactory(1234).node(17)  # identical stream
    >>> bool(node_rng.integers(1 << 30) == same.integers(1 << 30))
    True
    """

    #: Fixed stream domains so different purposes can never collide.
    _NODE_DOMAIN = 0
    _REPLICA_DOMAIN = 1
    _COMPONENT_DOMAIN = 2

    def __init__(self, seed: int | None = None):
        if seed is not None and (not isinstance(seed, int) or seed < 0):
            raise ParameterError(f"seed must be a non-negative int, got {seed!r}")
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> int | None:
        """The root seed (``None`` = OS entropy; then runs are not replayable)."""
        return self._seed

    # ------------------------------------------------------------------
    def _spawn(self, domain: int, index: int) -> np.random.Generator:
        if index < 0:
            raise ParameterError(f"stream index must be >= 0, got {index}")
        # Extend the root's spawn key so nested factories stay independent.
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key) + (domain, index),
        )
        return np.random.default_rng(child)

    def node(self, node_id: int) -> np.random.Generator:
        """Failure stream of one platform node."""
        return self._spawn(self._NODE_DOMAIN, node_id)

    def replica(self, replica_id: int) -> np.random.Generator:
        """Stream of one Monte Carlo replica (renewal / risk MC)."""
        return self._spawn(self._REPLICA_DOMAIN, replica_id)

    def component(self, component_id: int) -> np.random.Generator:
        """Stream for auxiliary components (topology shuffles, workloads)."""
        return self._spawn(self._COMPONENT_DOMAIN, component_id)

    def replicas(self, count: int) -> Iterator[np.random.Generator]:
        """Iterate ``count`` independent replica streams."""
        if count < 0:
            raise ParameterError("count must be >= 0")
        return (self.replica(i) for i in range(count))

    # ------------------------------------------------------------------
    def child_factory(self, index: int) -> "RngFactory":
        """A nested factory (e.g. one per batch job), still reproducible."""
        child_seq = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(self._COMPONENT_DOMAIN, 1 << 20, index)
        )
        factory = RngFactory.__new__(RngFactory)
        factory._seed = self._seed
        factory._root = child_seq
        return factory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed!r})"
