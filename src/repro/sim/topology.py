"""Buddy-group assignment strategies.

The paper partitions nodes into pairs (doubles) or rotating triples
(§II, §IV) but does not prescribe *which* nodes are grouped.  On a real
machine the choice matters: buddies should be close (cheap transfers) yet
failure-independent (not share a power supply / blade — correlated
failures inside a group defeat the replication).  This module provides:

* :func:`contiguous_groups` — nodes ``(0,1)``, ``(2,3)``, … ; the simplest
  layout and the paper's implicit default.
* :func:`strided_groups` — node ``i`` grouped with ``i + n/g``: buddies
  land in distant racks, decorrelating group failures.
* :func:`random_groups` — uniformly random partition (seeded).
* :func:`topology_aware_groups` — greedy grouping on a ``networkx`` graph
  that minimises intra-group distance subject to an anti-affinity
  predicate (e.g. "different racks").

All return a :class:`GroupAssignment`, validated to be a partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..errors import ParameterError

__all__ = [
    "GroupAssignment",
    "contiguous_groups",
    "strided_groups",
    "random_groups",
    "topology_aware_groups",
    "ring_of_racks",
]


@dataclass(frozen=True)
class GroupAssignment:
    """A partition of ``n`` nodes into groups of equal size ``g``."""

    n_nodes: int
    group_size: int
    #: tuple of groups; each group is a tuple of node ids.
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.n_nodes % self.group_size != 0:
            raise ParameterError(
                f"n={self.n_nodes} not divisible by group size {self.group_size}"
            )
        seen: set[int] = set()
        for group in self.groups:
            if len(group) != self.group_size:
                raise ParameterError(f"group {group} has wrong size")
            seen.update(group)
        if seen != set(range(self.n_nodes)):
            raise ParameterError("groups do not partition the node set")

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def group_of(self, node: int) -> int:
        """Index of the group containing ``node``."""
        return self._node_to_group()[node]

    def members(self, node: int) -> tuple[int, ...]:
        """All members of ``node``'s group (including itself)."""
        return self.groups[self.group_of(node)]

    def buddies(self, node: int) -> tuple[int, ...]:
        """The other members of ``node``'s group.

        For triples the order encodes the paper's rotation: the first
        entry is the *preferred* buddy, the second the *secondary* buddy
        (§IV: p → p′ → p″ → p).
        """
        group = self.members(node)
        idx = group.index(node)
        return tuple(group[(idx + k) % len(group)] for k in range(1, len(group)))

    def _node_to_group(self) -> np.ndarray:
        cache = getattr(self, "_n2g_cache", None)
        if cache is None:
            cache = np.empty(self.n_nodes, dtype=np.int64)
            for gi, group in enumerate(self.groups):
                for node in group:
                    cache[node] = gi
            object.__setattr__(self, "_n2g_cache", cache)
        return cache


def _check(n_nodes: int, group_size: int) -> None:
    if group_size < 2:
        raise ParameterError("group_size must be >= 2")
    if n_nodes < group_size or n_nodes % group_size != 0:
        raise ParameterError(
            f"n_nodes={n_nodes} must be a positive multiple of {group_size}"
        )


def contiguous_groups(n_nodes: int, group_size: int) -> GroupAssignment:
    """Adjacent node ids share a group: ``(0..g-1), (g..2g-1), ...``."""
    _check(n_nodes, group_size)
    groups = tuple(
        tuple(range(i, i + group_size)) for i in range(0, n_nodes, group_size)
    )
    return GroupAssignment(n_nodes, group_size, groups)


def strided_groups(n_nodes: int, group_size: int) -> GroupAssignment:
    """Group ``i`` = ``(i, i + n/g, i + 2n/g, ...)`` — maximally spread ids."""
    _check(n_nodes, group_size)
    stride = n_nodes // group_size
    groups = tuple(
        tuple(i + k * stride for k in range(group_size)) for i in range(stride)
    )
    return GroupAssignment(n_nodes, group_size, groups)


def random_groups(
    n_nodes: int, group_size: int, rng: np.random.Generator
) -> GroupAssignment:
    """Uniformly random partition into groups of size ``group_size``."""
    _check(n_nodes, group_size)
    perm = rng.permutation(n_nodes)
    groups = tuple(
        tuple(int(x) for x in perm[i : i + group_size])
        for i in range(0, n_nodes, group_size)
    )
    return GroupAssignment(n_nodes, group_size, groups)


def ring_of_racks(n_racks: int, nodes_per_rack: int) -> nx.Graph:
    """A simple machine topology: racks on a ring, full mesh inside a rack.

    Node ids are ``rack * nodes_per_rack + slot``; every node carries a
    ``rack`` attribute and edges carry ``distance`` (1 intra-rack, 2 + ring
    distance inter-rack via the rack heads).  This is the stand-in for real
    machine topologies used by the topology-aware example.
    """
    if n_racks < 1 or nodes_per_rack < 1:
        raise ParameterError("need at least one rack and one node per rack")
    graph = nx.Graph()
    for rack in range(n_racks):
        base = rack * nodes_per_rack
        for slot in range(nodes_per_rack):
            graph.add_node(base + slot, rack=rack)
        for a in range(nodes_per_rack):
            for b in range(a + 1, nodes_per_rack):
                graph.add_edge(base + a, base + b, distance=1.0)
    for rack in range(n_racks):
        nxt = (rack + 1) % n_racks
        if n_racks > 1:
            graph.add_edge(
                rack * nodes_per_rack, nxt * nodes_per_rack, distance=2.0
            )
    return graph


def topology_aware_groups(
    graph: nx.Graph,
    group_size: int,
    *,
    anti_affinity: str | None = None,
) -> GroupAssignment:
    """Greedy distance-minimising grouping on a machine graph.

    Repeatedly seeds a group with the lowest-id ungrouped node and adds its
    nearest ungrouped peers (shortest-path ``distance``), skipping peers
    that share the seed's ``anti_affinity`` attribute (e.g. ``"rack"``) so
    a group never lies entirely inside one failure domain.  Falls back to
    same-domain peers when nothing else remains.
    """
    n_nodes = graph.number_of_nodes()
    _check(n_nodes, group_size)
    if set(graph.nodes) != set(range(n_nodes)):
        raise ParameterError("graph nodes must be exactly 0..n-1")

    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="distance"))
    ungrouped: set[int] = set(range(n_nodes))
    groups: list[tuple[int, ...]] = []
    while ungrouped:
        seed = min(ungrouped)
        ungrouped.remove(seed)
        candidates = sorted(ungrouped, key=lambda v: (lengths[seed].get(v, np.inf), v))
        chosen: list[int] = [seed]
        if anti_affinity is not None:
            seed_domain = graph.nodes[seed].get(anti_affinity)
            preferred = [
                v for v in candidates
                if graph.nodes[v].get(anti_affinity) != seed_domain
            ]
            others = [v for v in candidates if v not in set(preferred)]
            candidates = preferred + others
        for v in candidates:
            if len(chosen) == group_size:
                break
            chosen.append(v)
        if len(chosen) != group_size:
            raise ParameterError("graph too small to complete groups")
        ungrouped.difference_update(chosen[1:])
        groups.append(tuple(chosen))
    return GroupAssignment(n_nodes, group_size, tuple(groups))
