"""Result containers and statistics for the simulators.

:class:`DesResult` captures one event-simulation run;
:class:`MonteCarloSummary` aggregates replicas with confidence intervals
(Student-t for means, Wilson for proportions) so model-vs-simulation
comparisons can assert statistically, not by eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import stats as sps

from ..errors import ParameterError

__all__ = ["DesResult", "MonteCarloSummary", "wilson_interval", "ci_half_width"]


@dataclass(frozen=True)
class DesResult:
    """Outcome of one discrete-event simulation run."""

    #: "completed", "fatal" or "timeout".
    status: str
    #: Wall-clock simulated time at termination [s].
    makespan: float
    #: Target amount of work (T_base) [s of compute].
    work_target: float
    #: Work completed at termination.
    work_done: float
    #: Number of (non-fatal + fatal) failures injected.
    failures: int
    #: Number of rollbacks performed.
    rollbacks: int
    #: Work units destroyed by rollbacks.
    work_lost: float
    #: Snapshot commits performed.
    commits: int
    #: Total time any group spent inside a risk window.
    risk_time: float
    #: Time of the fatal failure (nan unless status == "fatal").
    fatal_time: float = float("nan")
    #: Group that suffered the fatal failure (empty unless fatal).
    fatal_group: tuple[int, ...] = ()
    #: Free-form extras (protocol key, period, seed...).
    meta: dict = field(default_factory=dict)

    @property
    def waste(self) -> float:
        """Measured waste ``1 − T_base/T`` (nan when the run didn't finish)."""
        if self.status != "completed" or self.makespan <= 0:
            return float("nan")
        return 1.0 - self.work_target / self.makespan

    @property
    def succeeded(self) -> bool:
        return self.status == "completed"


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ParameterError("trials must be > 0")
    if not 0 <= successes <= trials:
        raise ParameterError("successes must lie in [0, trials]")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    phat = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (phat + z**2 / (2 * trials)) / denom
    half = z * np.sqrt(phat * (1 - phat) / trials + z**2 / (4 * trials**2)) / denom
    # Degenerate counts have exact one-sided bounds; avoid fp residue.
    lo = 0.0 if successes == 0 else max(0.0, centre - half)
    hi = 1.0 if successes == trials else min(1.0, centre + half)
    return (float(lo), float(hi))


def ci_half_width(samples: Sequence[float], confidence: float = 0.95) -> float:
    """Student-t CI half-width of the mean over the finite samples.

    NaNs (unfinished runs) are excluded, exactly as
    :meth:`MonteCarloSummary.from_samples` excludes them from the mean —
    this is the single definition both the summaries and the adaptive
    replica controller (:mod:`repro.sim.adaptive`) rely on.  Returns
    ``inf`` until two finite samples exist: an undetermined interval must
    never satisfy a tolerance check.
    """
    arr = np.asarray(list(samples), dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size < 2:
        return float("inf")
    std = float(finite.std(ddof=1))
    if std == 0.0:
        return 0.0
    return float(
        sps.t.ppf(0.5 + confidence / 2.0, df=finite.size - 1)
        * std / np.sqrt(finite.size)
    )


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregate of many replicas of one configuration."""

    n_replicas: int
    #: Mean of the per-replica estimate (waste, lost time, ...).
    mean: float
    #: Sample standard deviation.
    std: float
    #: Student-t confidence interval on the mean.
    ci_low: float
    ci_high: float
    confidence: float
    #: Fraction of replicas that completed without fatal failure.
    success_rate: float
    #: Wilson interval on the success rate.
    success_ci: tuple[float, float]
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        *,
        successes: int | None = None,
        confidence: float = 0.95,
        meta: dict | None = None,
    ) -> "MonteCarloSummary":
        """Summarise per-replica values; NaNs (unfinished runs) are dropped
        from the mean but still count as failures for the success rate."""
        if not 0 < confidence < 1:
            raise ParameterError("confidence must lie in (0, 1)")
        arr = np.asarray(list(samples), dtype=float)
        n_total = arr.size
        if n_total == 0:
            raise ParameterError("need at least one sample")
        finite = arr[np.isfinite(arr)]
        n_ok = finite.size
        n_success = n_ok if successes is None else successes
        mean = float(finite.mean()) if n_ok else float("nan")
        std = float(finite.std(ddof=1)) if n_ok > 1 else 0.0
        half = ci_half_width(arr, confidence)
        if not np.isfinite(half):
            half = 0.0  # < 2 finite samples: degenerate point interval
        rate = n_success / n_total
        return cls(
            n_replicas=n_total,
            mean=mean,
            std=std,
            ci_low=mean - half,
            ci_high=mean + half,
            confidence=confidence,
            success_rate=rate,
            success_ci=wilson_interval(n_success, n_total, confidence),
            meta=meta or {},
        )

    @classmethod
    def from_moments(
        cls,
        *,
        n_total: int,
        n_finite: int,
        mean: float,
        m2: float,
        successes: int,
        confidence: float = 0.95,
        meta: dict | None = None,
    ) -> "MonteCarloSummary":
        """Summarise from running (Welford) moments instead of samples.

        The constant-memory twin of :meth:`from_samples` for streaming
        aggregation (``report --from-campaign`` over million-record
        files): ``n_finite``, ``mean`` and ``m2`` (the sum of squared
        deviations, Welford's M₂) describe the finite samples; NaN
        samples are counted only in ``n_total``.  The degenerate cases
        mirror :meth:`from_samples` exactly — NaN mean with no finite
        sample, zero std below two, a point interval until the CI is
        determined.
        """
        if not 0 < confidence < 1:
            raise ParameterError("confidence must lie in (0, 1)")
        if n_total <= 0:
            raise ParameterError("need at least one sample")
        if not 0 <= n_finite <= n_total:
            raise ParameterError("n_finite must lie in [0, n_total]")
        mean = float(mean) if n_finite else float("nan")
        std = float(np.sqrt(m2 / (n_finite - 1))) if n_finite > 1 else 0.0
        if n_finite < 2 or std == 0.0:
            half = 0.0
        else:
            half = float(
                sps.t.ppf(0.5 + confidence / 2.0, df=n_finite - 1)
                * std / np.sqrt(n_finite)
            )
        return cls(
            n_replicas=n_total,
            mean=mean,
            std=std,
            ci_low=mean - half,
            ci_high=mean + half,
            confidence=confidence,
            success_rate=successes / n_total,
            success_ci=wilson_interval(successes, n_total, confidence),
            meta=meta or {},
        )

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the CI? (model-vs-simulation assertions)"""
        return self.ci_low <= value <= self.ci_high
