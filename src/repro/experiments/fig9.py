"""Experiment E6 — Figure 9: success-probability ratios, Exa scenario.

Surfaces over ``M ∈ (0, 60] min`` × platform life ``T ∈ (0, 60]`` weeks.
Expected shape: same panels as Figure 6 with stronger separation — on an
exascale machine DOUBLE-NBL's long risk window costs orders of magnitude
of success probability, while TRIPLE stays ≈ 1.
"""

from __future__ import annotations

from ._figcommon import RiskRatioFigure, risk_ratio_figure

__all__ = ["generate"]


def generate(num_m: int = 31, num_t: int = 30, method: str = "paper") -> RiskRatioFigure:
    return risk_ratio_figure("fig9", "exa", num_m=num_m, num_t=num_t,
                             method=method)
