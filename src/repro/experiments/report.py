"""Report rendering: ASCII tables, ASCII heat maps and CSV export.

The paper's evaluation figures are gnuplot 3-D surfaces; in a library
context the same information is delivered as (a) machine-readable grids
(CSV) and (b) terminal-friendly ASCII renderings used by the CLI and the
benchmark harnesses, so "regenerate Figure 7b" prints something a human
can compare against the paper at a glance.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from ..units import format_time

__all__ = [
    "ascii_table",
    "ascii_heatmap",
    "series_csv",
    "grid_csv",
    "gnuplot_surface_script",
    "format_m_axis",
]

#: Shade ramp for heat maps, light to dark.
_SHADES = " .:-=+*#%@"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table (monospace-aligned)."""
    rows = [list(map(_fmt_cell, row)) for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ParameterError("row length does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "+".join("-" * (w + 2) for w in widths)
    out.write(sep + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep + "\n")
    for row in rows:
        out.write(" | ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    out.write(sep + "\n")
    return out.getvalue()


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    title: str = "",
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Shade a 2-D grid with a 10-level character ramp.

    Rows are printed top-down in the given order; NaNs render as ``?``.
    A legend maps the ramp back to values.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ParameterError("grid must be 2-D")
    if grid.shape[0] != len(row_labels) or grid.shape[1] != len(col_labels):
        raise ParameterError("labels do not match grid shape")
    finite = grid[np.isfinite(grid)]
    lo = vmin if vmin is not None else (finite.min() if finite.size else 0.0)
    hi = vmax if vmax is not None else (finite.max() if finite.size else 1.0)
    span = hi - lo if hi > lo else 1.0
    label_w = max((len(s) for s in row_labels), default=0)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for i, label in enumerate(row_labels):
        chars = []
        for v in grid[i]:
            if not np.isfinite(v):
                chars.append("?")
            else:
                idx = int(np.clip((v - lo) / span * (len(_SHADES) - 1), 0,
                                  len(_SHADES) - 1))
                chars.append(_SHADES[idx])
        out.write(f"{label.rjust(label_w)} |{''.join(chars)}|\n")
    out.write(f"{' ' * label_w}  cols: {col_labels[0]} .. {col_labels[-1]}\n")
    out.write(
        f"{' ' * label_w}  scale: '{_SHADES[0]}'={lo:.3g} .. '{_SHADES[-1]}'={hi:.3g}"
        "  ('?' = undefined)\n"
    )
    return out.getvalue()


def series_csv(columns: dict[str, np.ndarray]) -> str:
    """CSV of aligned 1-D series (column name -> values)."""
    if not columns:
        raise ParameterError("need at least one column")
    arrays = {k: np.asarray(v).ravel() for k, v in columns.items()}
    lengths = {a.size for a in arrays.values()}
    if len(lengths) != 1:
        raise ParameterError(f"columns have mismatched lengths: {lengths}")
    out = io.StringIO()
    out.write(",".join(arrays.keys()) + "\n")
    for i in range(lengths.pop()):
        out.write(",".join(_fmt_cell(float(a[i])) for a in arrays.values()) + "\n")
    return out.getvalue()


def grid_csv(
    grid: np.ndarray,
    row_values: np.ndarray,
    col_values: np.ndarray,
    *,
    row_name: str = "row",
    col_name: str = "col",
    value_name: str = "value",
) -> str:
    """Long-format CSV (row, col, value) of a 2-D grid."""
    grid = np.asarray(grid, dtype=float)
    if grid.shape != (len(row_values), len(col_values)):
        raise ParameterError("grid shape does not match axis values")
    out = io.StringIO()
    out.write(f"{row_name},{col_name},{value_name}\n")
    for i, r in enumerate(row_values):
        for j, c in enumerate(col_values):
            out.write(f"{_fmt_cell(float(r))},{_fmt_cell(float(c))},"
                      f"{_fmt_cell(float(grid[i, j]))}\n")
    return out.getvalue()


def gnuplot_surface_script(
    grid: np.ndarray,
    row_values: np.ndarray,
    col_values: np.ndarray,
    *,
    title: str,
    xlabel: str,
    ylabel: str,
    zlabel: str,
    data_file: str,
    output_file: str = "surface.png",
    log_x: bool = False,
) -> str:
    """A gnuplot script rendering a grid as the paper's 3-D surfaces.

    The paper's Figures 4/6/7/9 are gnuplot ``splot`` surfaces; emitting
    the same script next to the CSV lets anyone regenerate a
    visually comparable plot with stock gnuplot.  ``data_file`` must hold
    the long-format CSV from :func:`grid_csv`.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.shape != (len(row_values), len(col_values)):
        raise ParameterError("grid shape does not match axis values")
    lines = [
        "# gnuplot script generated by repro (matches the paper's splot style)",
        f"set terminal pngcairo size 900,700",
        f"set output '{output_file}'",
        f"set title '{title}'",
        f"set xlabel '{xlabel}'",
        f"set ylabel '{ylabel}'",
        f"set zlabel '{zlabel}' rotate",
        "set datafile separator ','",
        "set dgrid3d "
        f"{len(row_values)},{len(col_values)}",
        "set hidden3d",
        "set zrange [0:1]",
    ]
    if log_x:
        lines.append("set logscale x")
    lines += [
        f"splot '{data_file}' every ::1 using 1:2:3 with lines notitle",
        "unset output",
    ]
    return "\n".join(lines) + "\n"


def format_m_axis(m_values: np.ndarray) -> list[str]:
    """Human labels for an MTBF axis (``60 -> '1min'``)."""
    return [format_time(float(m)) for m in np.asarray(m_values).ravel()]
