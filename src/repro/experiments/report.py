"""Report rendering: ASCII tables, ASCII heat maps and CSV export.

The paper's evaluation figures are gnuplot 3-D surfaces; in a library
context the same information is delivered as (a) machine-readable grids
(CSV) and (b) terminal-friendly ASCII renderings used by the CLI and the
benchmark harnesses, so "regenerate Figure 7b" prints something a human
can compare against the paper at a glance.

Campaign reports (:func:`campaign_report`) render the same artefacts —
waste tables, waste surfaces, protocol-ratio tables — straight from a
campaign's persisted JSON Lines results (either sink format), so an
expensive sweep is analysed offline with **zero re-simulation**:
``repro-checkpoint report --from-campaign results.jsonl``.
"""

from __future__ import annotations

import io
import pathlib
from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from ..units import format_time

__all__ = [
    "ascii_table",
    "ascii_heatmap",
    "series_csv",
    "grid_csv",
    "gnuplot_surface_script",
    "format_m_axis",
    "campaign_cells_from_file",
    "campaign_report",
    "store_report",
]

#: Shade ramp for heat maps, light to dark.
_SHADES = " .:-=+*#%@"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table (monospace-aligned)."""
    rows = [list(map(_fmt_cell, row)) for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ParameterError("row length does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "+".join("-" * (w + 2) for w in widths)
    out.write(sep + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep + "\n")
    for row in rows:
        out.write(" | ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    out.write(sep + "\n")
    return out.getvalue()


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    title: str = "",
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Shade a 2-D grid with a 10-level character ramp.

    Rows are printed top-down in the given order; NaNs render as ``?``.
    A legend maps the ramp back to values.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ParameterError("grid must be 2-D")
    if grid.shape[0] != len(row_labels) or grid.shape[1] != len(col_labels):
        raise ParameterError("labels do not match grid shape")
    if not row_labels or not col_labels:
        raise ParameterError(
            f"heatmap grid must have at least one row and one column, "
            f"got {len(row_labels)}x{len(col_labels)}"
        )
    finite = grid[np.isfinite(grid)]
    lo = vmin if vmin is not None else (finite.min() if finite.size else 0.0)
    hi = vmax if vmax is not None else (finite.max() if finite.size else 1.0)
    span = hi - lo if hi > lo else 1.0
    label_w = max((len(s) for s in row_labels), default=0)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for i, label in enumerate(row_labels):
        chars = []
        for v in grid[i]:
            if not np.isfinite(v):
                chars.append("?")
            else:
                idx = int(np.clip((v - lo) / span * (len(_SHADES) - 1), 0,
                                  len(_SHADES) - 1))
                chars.append(_SHADES[idx])
        out.write(f"{label.rjust(label_w)} |{''.join(chars)}|\n")
    out.write(f"{' ' * label_w}  cols: {col_labels[0]} .. {col_labels[-1]}\n")
    out.write(
        f"{' ' * label_w}  scale: '{_SHADES[0]}'={lo:.3g} .. '{_SHADES[-1]}'={hi:.3g}"
        "  ('?' = undefined)\n"
    )
    return out.getvalue()


def series_csv(columns: dict[str, np.ndarray]) -> str:
    """CSV of aligned 1-D series (column name -> values)."""
    if not columns:
        raise ParameterError("need at least one column")
    arrays = {k: np.asarray(v).ravel() for k, v in columns.items()}
    lengths = {a.size for a in arrays.values()}
    if len(lengths) != 1:
        raise ParameterError(f"columns have mismatched lengths: {lengths}")
    out = io.StringIO()
    out.write(",".join(arrays.keys()) + "\n")
    for i in range(lengths.pop()):
        out.write(",".join(_fmt_cell(float(a[i])) for a in arrays.values()) + "\n")
    return out.getvalue()


def grid_csv(
    grid: np.ndarray,
    row_values: np.ndarray,
    col_values: np.ndarray,
    *,
    row_name: str = "row",
    col_name: str = "col",
    value_name: str = "value",
) -> str:
    """Long-format CSV (row, col, value) of a 2-D grid."""
    grid = np.asarray(grid, dtype=float)
    if grid.shape != (len(row_values), len(col_values)):
        raise ParameterError("grid shape does not match axis values")
    out = io.StringIO()
    out.write(f"{row_name},{col_name},{value_name}\n")
    for i, r in enumerate(row_values):
        for j, c in enumerate(col_values):
            out.write(f"{_fmt_cell(float(r))},{_fmt_cell(float(c))},"
                      f"{_fmt_cell(float(grid[i, j]))}\n")
    return out.getvalue()


def gnuplot_surface_script(
    grid: np.ndarray,
    row_values: np.ndarray,
    col_values: np.ndarray,
    *,
    title: str,
    xlabel: str,
    ylabel: str,
    zlabel: str,
    data_file: str,
    output_file: str = "surface.png",
    log_x: bool = False,
) -> str:
    """A gnuplot script rendering a grid as the paper's 3-D surfaces.

    The paper's Figures 4/6/7/9 are gnuplot ``splot`` surfaces; emitting
    the same script next to the CSV lets anyone regenerate a
    visually comparable plot with stock gnuplot.  ``data_file`` must hold
    the long-format CSV from :func:`grid_csv`.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.shape != (len(row_values), len(col_values)):
        raise ParameterError("grid shape does not match axis values")
    lines = [
        "# gnuplot script generated by repro (matches the paper's splot style)",
        f"set terminal pngcairo size 900,700",
        f"set output '{output_file}'",
        f"set title '{title}'",
        f"set xlabel '{xlabel}'",
        f"set ylabel '{ylabel}'",
        f"set zlabel '{zlabel}' rotate",
        "set datafile separator ','",
        "set dgrid3d "
        f"{len(row_values)},{len(col_values)}",
        "set hidden3d",
        "set zrange [0:1]",
    ]
    if log_x:
        lines.append("set logscale x")
    lines += [
        f"splot '{data_file}' every ::1 using 1:2:3 with lines notitle",
        "unset output",
    ]
    return "\n".join(lines) + "\n"


def format_m_axis(m_values: np.ndarray) -> list[str]:
    """Human labels for an MTBF axis (``60 -> '1min'``)."""
    return [format_time(float(m)) for m in np.asarray(m_values).ravel()]


# ----------------------------------------------------------------------
# Campaign reports (from persisted JSON Lines, zero re-simulation)
# ----------------------------------------------------------------------
class _CellAccumulator:
    """Streaming (Welford) statistics of one grid cell's raw runs.

    Holds five scalars instead of the runs themselves, so reconstructing
    per-cell summaries from a campaign file is O(#cells) memory however
    many replicas each cell recorded.
    """

    __slots__ = ("n", "finite", "mean", "m2", "successes")

    def __init__(self):
        self.n = 0
        self.finite = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.successes = 0

    def push(self, run) -> None:
        self.n += 1
        self.successes += run.succeeded
        waste = run.waste
        if np.isfinite(waste):
            self.finite += 1
            delta = waste - self.mean
            self.mean += delta / self.finite
            self.m2 += delta * (waste - self.mean)


def campaign_cells_from_file(path):
    """Reconstruct per-cell summaries from a campaign results file.

    Accepts both sink formats (plain grid-order records and out-of-order
    frames — :func:`repro.io.scan_campaign_runs` decides per line), groups
    the raw runs by their recorded (protocol, M, φ) identity, and rebuilds
    one :class:`~repro.sim.campaign.CampaignCell` per group, protocol-major
    in first-seen protocol order with M and φ ascending — the campaign
    grid order, whatever order the records landed in.

    The file is **streamed**: each record updates a per-cell running
    (Welford) accumulator and is dropped, so memory is proportional to
    the grid, never to the replica count — a million-record adaptive
    campaign reports in constant space.  The returned cells therefore
    carry summaries only (``cell.results`` is empty).
    """
    from .. import io as repro_io
    from ..sim.campaign import CampaignCell
    from ..sim.results import MonteCarloSummary

    groups: dict[tuple[str, float, float], _CellAccumulator] = {}
    protocol_order: dict[str, int] = {}
    for position, (cell_index, run) in enumerate(
        repro_io.scan_campaign_runs(path)
    ):
        meta = run.meta
        protocol = meta.get("protocol")
        if (not isinstance(protocol, str) or "M" not in meta
                or "phi" not in meta):
            raise ParameterError(
                f"{path}: record without (protocol, M, phi) identity "
                "metadata; not a campaign results file"
            )
        key = (protocol, float(meta["M"]), float(meta["phi"]))
        # Protocols sort by their earliest *grid* position — the frame's
        # cell index when available, else the line position (plain files
        # are written in grid order).  First-seen order would depend on
        # cell completion order for parallel framed campaigns, making two
        # reports of the same campaign disagree.
        rank = position if cell_index is None else cell_index
        protocol_order[protocol] = min(
            protocol_order.get(protocol, rank), rank
        )
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = _CellAccumulator()
        acc.push(run)

    if not groups:
        raise ParameterError(
            f"{path}: no intact campaign records found — the file is "
            "empty, or its only content is a torn first write; nothing "
            "to report (was the campaign interrupted before any cell "
            "completed?)"
        )

    cells = []
    for key in sorted(
        groups, key=lambda k: (protocol_order[k[0]], k[1], k[2])
    ):
        protocol, m, phi = key
        acc = groups[key]
        summary = MonteCarloSummary.from_moments(
            n_total=acc.n, n_finite=acc.finite, mean=acc.mean, m2=acc.m2,
            successes=acc.successes,
            meta={"protocol": protocol, "M": m, "phi": phi},
        )
        cells.append(CampaignCell(
            protocol=protocol, M=m, phi=phi, summary=summary,
        ))
    return cells


def campaign_report(path) -> str:
    """Render a campaign's persisted results as tables and surfaces.

    Sections: a per-cell waste table (with replica counts and CI
    half-widths — adaptive campaigns show their uneven budgets here), a
    waste surface per protocol when the grid spans both axes, and a
    protocol-ratio table against the first protocol in the file (the
    paper's double-vs-triple comparison, from disk).
    """
    path = pathlib.Path(path)
    return _render_campaign_cells(campaign_cells_from_file(path),
                                  source=path.name)


def store_report(store, spec) -> str:
    """The campaign report of a spec, resolved straight from a results
    store (:mod:`repro.store`) — no results file, zero re-simulation.

    Every grid cell must be present in the store (populated by earlier
    ``--store`` campaigns); missing cells raise with grid coordinates
    rather than silently reporting a partial sweep.
    """
    from ..store import CampaignStore, cells_from_store

    if not isinstance(store, CampaignStore):
        store = CampaignStore(store, create=False)
    cells = cells_from_store(store, spec)
    return _render_campaign_cells(cells, source=f"store {store.root.name}")


def _render_campaign_cells(cells, *, source: str) -> str:
    """The shared rendering behind :func:`campaign_report` and
    :func:`store_report`: identical cells produce identical text, so a
    store-resolved report is comparable line-for-line with a results-file
    one."""
    out = io.StringIO()
    rows = []
    for c in cells:
        s = c.summary
        half = (s.ci_high - s.ci_low) / 2.0
        rows.append([
            c.protocol, c.M, c.phi, s.n_replicas,
            c.mean_waste, half, c.success_rate,
        ])
    out.write(ascii_table(
        ["protocol", "M", "phi", "replicas", "mean waste", "ci half-width",
         "success rate"],
        rows,
        title=f"=== campaign results ({source}, "
              f"{sum(c.summary.n_replicas for c in cells)} runs, "
              "no re-simulation) ===",
    ))

    protocols = list(dict.fromkeys(c.protocol for c in cells))
    m_values = sorted({c.M for c in cells})
    phi_values = sorted({c.phi for c in cells})
    by_key = {(c.protocol, c.M, c.phi): c for c in cells}

    if len(m_values) >= 2 and len(phi_values) >= 2:
        col_labels = [f"{p:g}" for p in phi_values]
        for protocol in protocols:
            grid = np.full((len(m_values), len(phi_values)), np.nan)
            for i, m in enumerate(m_values):
                for j, phi in enumerate(phi_values):
                    cell = by_key.get((protocol, m, phi))
                    if cell is not None:
                        grid[i, j] = cell.mean_waste
            out.write("\n")
            out.write(ascii_heatmap(
                grid, format_m_axis(np.asarray(m_values)), col_labels,
                title=f"--- mean waste surface: {protocol} "
                      "(rows M, cols phi) ---",
            ))

    if len(protocols) >= 2:
        base = protocols[0]
        headers = ["M", "phi"] + [f"{p}/{base}" for p in protocols[1:]]
        ratio_rows = []
        for m in m_values:
            for phi in phi_values:
                base_cell = by_key.get((base, m, phi))
                if base_cell is None:
                    continue
                base_waste = base_cell.mean_waste
                row: list[object] = [m, phi]
                for p in protocols[1:]:
                    cell = by_key.get((p, m, phi))
                    if cell is None or not np.isfinite(base_waste) \
                            or base_waste <= 0:
                        row.append(float("nan"))
                    else:
                        row.append(cell.mean_waste / base_waste)
                ratio_rows.append(row)
        if ratio_rows:
            out.write("\n")
            out.write(ascii_table(
                headers, ratio_rows,
                title=f"--- waste ratios vs {base} "
                      "(>1: costlier than baseline) ---",
            ))
    return out.getvalue()
