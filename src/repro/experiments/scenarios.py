"""The paper's evaluation scenarios (Table I) plus derivation helpers.

========  ====  =====  ===========  ====  =====  ========
Scenario  D     δ      φ            R     α      n
========  ====  =====  ===========  ====  =====  ========
Base      0     2 s    0 ≤ φ ≤ 4    4 s   10     324×32
Exa       60 s  30 s   0 ≤ φ ≤ 60   60 s  10     10⁶
========  ====  =====  ===========  ====  =====  ========

*Base* reuses the values of Ni et al. [2]: checkpointing 512 MB to a local
SSD takes ≈2 s, uploading it to the buddy at network speed ≈4 s, and node
allocation time is ignored (D = 0).  *Exa* models the IESP exascale
projection: 10⁶ nodes, 64 GB/core memory, 1 TB/s/node network and
500 Gb/s/node local storage — giving δ = 30 s, R = 60 s, D = 60 s.

A :class:`Scenario` fixes everything except the MTBF ``M`` (which the
figures sweep) and the overhead ``φ`` (a protocol tuning choice), so
``scenario.parameters(M=...)`` is the entry point everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.parameters import Parameters
from ..errors import ParameterError
from ..units import DAY, HOUR, MINUTE, parse_time

__all__ = ["Scenario", "BASE", "EXA", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named, fully specified platform configuration (one Table I row)."""

    key: str
    description: str
    D: float
    delta: float
    R: float
    alpha: float
    n: int
    #: Default M-grid for waste surfaces (Figs. 4/7): log-spaced seconds.
    m_grid_bounds: tuple[float, float] = (15.0, DAY)
    #: The fixed MTBF used by the waste-ratio cuts (Figs. 5/8).
    m_ratio_cut: float = 7 * HOUR
    #: (max M [s], max platform life [s]) for risk surfaces (Figs. 6/9).
    risk_grid_bounds: tuple[float, float] = (30 * MINUTE, 30 * DAY)
    #: Extra context recorded in reports.
    notes: dict[str, Any] = field(default_factory=dict)

    def parameters(self, M: float | str, n: int | None = None) -> Parameters:
        """Instantiate model :class:`~repro.core.parameters.Parameters`.

        ``M`` accepts seconds or a human string (``"7h"``).
        """
        return Parameters(
            D=self.D,
            delta=self.delta,
            R=self.R,
            alpha=self.alpha,
            M=parse_time(M),
            n=self.n if n is None else n,
        )

    # ------------------------------------------------------------------
    # Figure grids
    # ------------------------------------------------------------------
    def phi_grid(self, num: int = 41) -> np.ndarray:
        """Overhead grid ``φ ∈ [0, R]`` (x-axis of the waste figures)."""
        if num < 2:
            raise ParameterError("need at least 2 grid points")
        return np.linspace(0.0, self.R, num)

    def phi_over_r_grid(self, num: int = 41) -> np.ndarray:
        """Normalised ``φ/R ∈ [0, 1]`` grid used by figure axes."""
        return self.phi_grid(num) / self.R

    def m_grid(self, num: int = 49) -> np.ndarray:
        """Log-spaced MTBF grid (seconds) for the waste surfaces."""
        lo, hi = self.m_grid_bounds
        return np.logspace(np.log10(lo), np.log10(hi), num)

    def risk_grids(
        self, num_m: int = 31, num_t: int = 30
    ) -> tuple[np.ndarray, np.ndarray]:
        """(M grid, platform-life grid) in seconds for the risk surfaces.

        The M axis starts strictly above zero (the paper's axes display 0
        but λ diverges there).
        """
        m_max, t_max = self.risk_grid_bounds
        m_grid = np.linspace(m_max / num_m, m_max, num_m)
        t_grid = np.linspace(t_max / num_t, t_max, num_t)
        return m_grid, t_grid

    def table_row(self) -> dict[str, Any]:
        """The scenario as a Table I row (for the table1 experiment)."""
        return {
            "Scenario": self.key,
            "D": self.D,
            "delta": self.delta,
            "phi": f"0 <= phi <= {self.R:g}",
            "R": self.R,
            "alpha": self.alpha,
            "n": self.n,
        }


#: The Base scenario of §VI-A (values from Ni et al. [2]).
BASE = Scenario(
    key="base",
    description=(
        "Cluster scenario of Ni et al. [2]: 512MB checkpoints, SSD local "
        "writes (2s), buddy upload 4s, no allocation downtime"
    ),
    D=0.0,
    delta=2.0,
    R=4.0,
    alpha=10.0,
    n=324 * 32,
    m_grid_bounds=(15.0, DAY),
    m_ratio_cut=7 * HOUR,
    risk_grid_bounds=(30 * MINUTE, 30 * DAY),
    notes={
        "checkpoint_size": "512MB",
        "source": "Ni, Meneses, Kale, Cluster'12",
    },
)

#: The Exa scenario of §VI-B (IESP exascale projection [3,4]).
EXA = Scenario(
    key="exa",
    description=(
        "IESP 'slim' exascale projection: 1e6 nodes, 1000 cores/node, "
        "64GB/core, 1TB/s/node network, 500Gb/s/node local storage"
    ),
    D=60.0,
    delta=30.0,
    R=60.0,
    alpha=10.0,
    n=10**6,
    m_grid_bounds=(15.0, DAY),
    m_ratio_cut=7 * HOUR,
    risk_grid_bounds=(60 * MINUTE, 60 * 7 * DAY),
    notes={"source": "IESP roadmap [3,4]"},
)

#: Registry of the paper's scenarios by key.
SCENARIOS: dict[str, Scenario] = {s.key: s for s in (BASE, EXA)}


def get_scenario(key: str | Scenario) -> Scenario:
    """Look up a scenario by key (idempotent on instances)."""
    if isinstance(key, Scenario):
        return key
    try:
        return SCENARIOS[key]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {key!r}; known: {sorted(SCENARIOS)}"
        ) from None
