"""The paper's evaluation scenarios (Table I) plus derivation helpers.

========  ====  =====  ===========  ====  =====  ========
Scenario  D     δ      φ            R     α      n
========  ====  =====  ===========  ====  =====  ========
Base      0     2 s    0 ≤ φ ≤ 4    4 s   10     324×32
Exa       60 s  30 s   0 ≤ φ ≤ 60   60 s  10     10⁶
========  ====  =====  ===========  ====  =====  ========

*Base* reuses the values of Ni et al. [2]: checkpointing 512 MB to a local
SSD takes ≈2 s, uploading it to the buddy at network speed ≈4 s, and node
allocation time is ignored (D = 0).  *Exa* models the IESP exascale
projection: 10⁶ nodes, 64 GB/core memory, 1 TB/s/node network and
500 Gb/s/node local storage — giving δ = 30 s, R = 60 s, D = 60 s.

A :class:`Scenario` fixes everything except the MTBF ``M`` (which the
figures sweep) and the overhead ``φ`` (a protocol tuning choice), so
``scenario.parameters(M=...)`` is the entry point everywhere.

Beyond the paper's rows, this module also registers **campaign presets**
(:class:`CampaignPreset`, ``CAMPAIGN_PRESETS``): named, fully specified
protocol × M × φ sweeps — exascale-Weibull clustering, minutes-MTBF
churn, slow-storage/large-φ, Weibull wear-out, heterogeneous-MTBF
mixtures — that feed the parallel campaign engine
(``repro.sim.executor``), the ``campaign`` CLI subcommand and the
failure-scenario test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.parameters import Parameters
from ..errors import ParameterError
from ..units import DAY, HOUR, MINUTE, parse_time

__all__ = [
    "Scenario",
    "BASE",
    "EXA",
    "SCENARIOS",
    "get_scenario",
    "CampaignPreset",
    "CAMPAIGN_PRESETS",
    "TRACE_INTERARRIVALS",
    "get_campaign_preset",
]


@dataclass(frozen=True)
class Scenario:
    """A named, fully specified platform configuration (one Table I row)."""

    key: str
    description: str
    D: float
    delta: float
    R: float
    alpha: float
    n: int
    #: Default M-grid for waste surfaces (Figs. 4/7): log-spaced seconds.
    m_grid_bounds: tuple[float, float] = (15.0, DAY)
    #: The fixed MTBF used by the waste-ratio cuts (Figs. 5/8).
    m_ratio_cut: float = 7 * HOUR
    #: (max M [s], max platform life [s]) for risk surfaces (Figs. 6/9).
    risk_grid_bounds: tuple[float, float] = (30 * MINUTE, 30 * DAY)
    #: Extra context recorded in reports.
    notes: dict[str, Any] = field(default_factory=dict)

    def parameters(self, M: float | str, n: int | None = None) -> Parameters:
        """Instantiate model :class:`~repro.core.parameters.Parameters`.

        ``M`` accepts seconds or a human string (``"7h"``).
        """
        return Parameters(
            D=self.D,
            delta=self.delta,
            R=self.R,
            alpha=self.alpha,
            M=parse_time(M),
            n=self.n if n is None else n,
        )

    # ------------------------------------------------------------------
    # Figure grids
    # ------------------------------------------------------------------
    def phi_grid(self, num: int = 41) -> np.ndarray:
        """Overhead grid ``φ ∈ [0, R]`` (x-axis of the waste figures)."""
        if num < 2:
            raise ParameterError("need at least 2 grid points")
        return np.linspace(0.0, self.R, num)

    def phi_over_r_grid(self, num: int = 41) -> np.ndarray:
        """Normalised ``φ/R ∈ [0, 1]`` grid used by figure axes."""
        return self.phi_grid(num) / self.R

    def m_grid(self, num: int = 49) -> np.ndarray:
        """Log-spaced MTBF grid (seconds) for the waste surfaces."""
        lo, hi = self.m_grid_bounds
        return np.logspace(np.log10(lo), np.log10(hi), num)

    def risk_grids(
        self, num_m: int = 31, num_t: int = 30
    ) -> tuple[np.ndarray, np.ndarray]:
        """(M grid, platform-life grid) in seconds for the risk surfaces.

        The M axis starts strictly above zero (the paper's axes display 0
        but λ diverges there).
        """
        m_max, t_max = self.risk_grid_bounds
        m_grid = np.linspace(m_max / num_m, m_max, num_m)
        t_grid = np.linspace(t_max / num_t, t_max, num_t)
        return m_grid, t_grid

    def table_row(self) -> dict[str, Any]:
        """The scenario as a Table I row (for the table1 experiment)."""
        return {
            "Scenario": self.key,
            "D": self.D,
            "delta": self.delta,
            "phi": f"0 <= phi <= {self.R:g}",
            "R": self.R,
            "alpha": self.alpha,
            "n": self.n,
        }


#: The Base scenario of §VI-A (values from Ni et al. [2]).
BASE = Scenario(
    key="base",
    description=(
        "Cluster scenario of Ni et al. [2]: 512MB checkpoints, SSD local "
        "writes (2s), buddy upload 4s, no allocation downtime"
    ),
    D=0.0,
    delta=2.0,
    R=4.0,
    alpha=10.0,
    n=324 * 32,
    m_grid_bounds=(15.0, DAY),
    m_ratio_cut=7 * HOUR,
    risk_grid_bounds=(30 * MINUTE, 30 * DAY),
    notes={
        "checkpoint_size": "512MB",
        "source": "Ni, Meneses, Kale, Cluster'12",
    },
)

#: The Exa scenario of §VI-B (IESP exascale projection [3,4]).
EXA = Scenario(
    key="exa",
    description=(
        "IESP 'slim' exascale projection: 1e6 nodes, 1000 cores/node, "
        "64GB/core, 1TB/s/node network, 500Gb/s/node local storage"
    ),
    D=60.0,
    delta=30.0,
    R=60.0,
    alpha=10.0,
    n=10**6,
    m_grid_bounds=(15.0, DAY),
    m_ratio_cut=7 * HOUR,
    risk_grid_bounds=(60 * MINUTE, 60 * 7 * DAY),
    notes={"source": "IESP roadmap [3,4]"},
)

#: Registry of the paper's scenarios by key.
SCENARIOS: dict[str, Scenario] = {s.key: s for s in (BASE, EXA)}


def get_scenario(key: str | Scenario) -> Scenario:
    """Look up a scenario by key (idempotent on instances)."""
    if isinstance(key, Scenario):
        return key
    try:
        return SCENARIOS[key]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {key!r}; known: {sorted(SCENARIOS)}"
        ) from None


# ======================================================================
# Campaign presets
# ======================================================================
@dataclass(frozen=True)
class CampaignPreset:
    """A named, ready-to-run campaign workload.

    Where a :class:`Scenario` is one of the paper's Table I platform rows,
    a preset is a complete *sweep*: platform parameters (possibly stressed
    away from the paper's values), a protocol set, the M × φ grid, the
    workload size, and optionally a non-exponential failure law.  Presets
    feed the parallel campaign engine (``repro.sim.executor``) via
    :meth:`campaign_config` and the ``campaign`` CLI subcommand, and the
    failure-scenario test suite parametrises over all of them.

    ``distribution`` carries only the *shape* of the failure law — its mean
    is rescaled to each grid cell's node MTBF ``n·M`` by the injector.
    """

    key: str
    description: str
    scenario: str
    protocols: tuple[str, ...]
    m_values: tuple[float, ...]
    phi_values: tuple[float, ...]
    work_target: float
    #: Simulated node count (DES-practical; replaces the scenario's n).
    n: int
    replicas: int = 4
    share_traces: bool = True
    #: Platform parameter overrides applied on top of the scenario.
    param_overrides: dict[str, float] = field(default_factory=dict)
    #: Failure-law shape ("weibull:k" style spec), None = exponential.
    failure_law: str | None = None

    def parameters(self) -> Parameters:
        """Platform parameters at the first grid MTBF."""
        base = get_scenario(self.scenario).parameters(
            M=self.m_values[0], n=self.n
        )
        return base.with_updates(**self.param_overrides) if self.param_overrides else base

    def distribution(self):
        """Instantiate the failure law (None ⇒ exponential default).

        Three spec grammars are understood:

        * ``"<kind>:<shape>"`` — a shaped law (``"weibull:0.7"``,
          ``"lognormal:1.5"``, ``"gamma:2"``);
        * ``"hyperexp:<w>@<m>,<w>@<m>,..."`` — a mixture of exponentials
          with weights ``w`` and *relative* means ``m`` (heterogeneous-
          MTBF platform; the injector rescales the overall mean per cell,
          so only the ratios of the ``m`` matter);
        * ``"empirical:<t>,<t>,..."`` — bootstrap resampling of recorded
          inter-arrival times ``t`` (trace bootstrap; again only the
          *relative* spacings matter, since the injector rescales the
          mean to each grid cell's node MTBF).
        """
        if self.failure_law is None:
            return None
        from ..sim.distributions import (
            Empirical, Exponential, Gamma, LogNormal, Mixture, Weibull,
        )

        kind, _, arg = self.failure_law.partition(":")
        if kind == "empirical":
            try:
                times = [float(tok) for tok in arg.split(",") if tok.strip()]
            except ValueError:
                raise ParameterError(
                    f"failure_law {self.failure_law!r}: expected "
                    "'empirical:<t>,<t>,...' with numeric inter-arrival "
                    "times"
                ) from None
            # Empirical validates count/positivity; rescaled per cell.
            return Empirical(times)
        if kind == "hyperexp":
            pairs: list[tuple[float, float]] = []
            for token in arg.split(","):
                weight, sep, rel_mean = token.partition("@")
                try:
                    if not sep:
                        raise ValueError
                    pairs.append((float(weight), float(rel_mean)))
                except ValueError:
                    raise ParameterError(
                        f"failure_law {self.failure_law!r}: expected "
                        "'hyperexp:<weight>@<mean>,<weight>@<mean>,...' "
                        f"with numeric entries, got {token!r}"
                    ) from None
            # Mixture validates counts/positivity; rescaled to n·M per cell.
            return Mixture(
                [Exponential(mean) for _, mean in pairs],
                [weight for weight, _ in pairs],
            )
        laws = {"weibull": Weibull, "lognormal": LogNormal, "gamma": Gamma}
        if kind not in laws:
            raise ParameterError(
                f"unknown failure law {kind!r}; known: "
                f"{sorted(laws) + ['empirical', 'hyperexp']}"
            )
        try:
            shape = float(arg)
        except ValueError:
            raise ParameterError(
                f"failure_law {self.failure_law!r}: expected "
                f"'{kind}:<shape>' with a numeric shape, got {arg!r}"
            ) from None
        # Mean 1.0 is a placeholder: the injector rescales to n·M per cell.
        return laws[kind](1.0, shape)

    def campaign_config(self, **overrides: Any):
        """Build the :class:`repro.sim.campaign.CampaignConfig`.

        Keyword overrides replace any config field (``replicas=2``,
        ``results_path=...``, a trimmed ``m_values`` for quick tests...).
        """
        from ..sim.campaign import CampaignConfig

        fields: dict[str, Any] = dict(
            protocols=self.protocols,
            base_params=self.parameters(),
            m_values=self.m_values,
            phi_values=self.phi_values,
            work_target=self.work_target,
            replicas=self.replicas,
            share_traces=self.share_traces,
            distribution=self.distribution(),
        )
        fields.update(overrides)
        return CampaignConfig(**fields)

    def spec(self, *, policy=None, **overrides: Any):
        """The preset as a :class:`~repro.sim.spec.CampaignSpec`.

        This is how presets are *named specs*: ``Campaign("smoke")``
        resolves here, and ``preset.spec().save(path)`` freezes the
        workload into a JSON file loadable by ``campaign --spec FILE``.
        ``policy`` supplies a non-default
        :class:`~repro.sim.spec.ExecutionPolicy`; grid ``overrides`` pass
        through to :meth:`campaign_config` (``results_path`` is refused —
        a spec describes the campaign, not one execution of it).
        """
        from ..sim.spec import CampaignSpec, ExecutionPolicy

        return CampaignSpec(
            grid=self.campaign_config(**overrides),
            policy=policy or ExecutionPolicy(),
        )


#: Exascale platform under a Weibull infant-mortality law (shape 0.7):
#: failures cluster, stressing the risk-window logic the paper's
#: exponential analysis cannot see.  DES-practical 240-node scale
#: (divisible by both buddy-group sizes).
EXA_WEIBULL = CampaignPreset(
    key="exa-weibull",
    description=(
        "Exa platform parameters at 240-node DES scale with Weibull "
        "k=0.7 (infant-mortality) failures - clustered-failure stress"
    ),
    scenario="exa",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(1800.0, 3600.0, 7200.0),
    phi_values=(15.0, 30.0, 60.0),
    work_target=3600.0,
    n=240,
    failure_law="weibull:0.7",
)

#: Small MTBF relative to the workload: every run sees many failures and
#: rollbacks, exercising recovery paths and fatal-failure accounting.
HIGH_CHURN = CampaignPreset(
    key="high-churn",
    description=(
        "Base platform at MTBFs of minutes: failure-dominated regime "
        "with frequent rollbacks and non-trivial fatal-failure rates"
    ),
    scenario="base",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(120.0, 300.0, 600.0),
    phi_values=(0.5, 2.0),
    work_target=1800.0,
    n=24,
)

#: Slow remote storage: δ and R inflated 4-7x over Base, swept up to the
#: largest sensible overhead φ = R (the large-φ corner of Figs. 4/5).
SLOW_STORAGE = CampaignPreset(
    key="slow-storage",
    description=(
        "Base platform with slow storage (delta=8s, R=30s) swept to "
        "phi=R - the large-overhead corner of the waste surfaces"
    ),
    scenario="base",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(900.0, 1800.0, 3600.0),
    phi_values=(7.5, 15.0, 30.0),
    work_target=3600.0,
    n=36,
    param_overrides={"delta": 8.0, "R": 30.0},
)

#: Weibull wear-out (k>1): an *increasing* hazard — the longer a node has
#: run since its last replacement, the likelier it fails.  Arrivals are
#: more regular than Poisson (CV < 1), the opposite stress to
#: ``exa-weibull``'s clustering, probing whether the paper's
#: exponential-based period tuning stays near-optimal under ageing fleets.
WEIBULL_WEAROUT = CampaignPreset(
    key="weibull-wearout",
    description=(
        "Base platform under Weibull k=2 (wear-out) failures - "
        "regular, ageing-driven arrivals (CV<1) instead of Poisson"
    ),
    scenario="base",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(600.0, 1800.0, 3600.0),
    phi_values=(1.0, 2.0),
    work_target=3600.0,
    n=24,
    failure_law="weibull:2.0",
)

#: Heterogeneous-MTBF platform: 20 % of failure draws come from a fragile
#: sub-population at a quarter of the average node MTBF (hyperexponential
#: mixture, CV > 1).  The platform MTBF the model sees is unchanged, but
#: failures concentrate — the regime where buddy protocols lose multiple
#: replicas of the same group in quick succession.
HETERO_MTBF = CampaignPreset(
    key="hetero-mtbf",
    description=(
        "Base platform with a heterogeneous-MTBF failure law: 20% of "
        "failure draws from a fragile sub-population at 1/4 the average "
        "MTBF (hyperexponential mixture, CV>1)"
    ),
    scenario="base",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(600.0, 1800.0, 3600.0),
    phi_values=(1.0, 2.0),
    work_target=3600.0,
    n=24,
    failure_law="hyperexp:0.2@0.25,0.8@1.1875",
)

#: A recorded failure trace's inter-arrival times, normalised to mean ≈ 1
#: (the injector rescales to each grid cell's node MTBF, so only the
#: relative spacings matter).  The shape is the standard HPC-log picture
#: the Weibull/lognormal fits in [8]–[11] approximate: bursts of short
#: gaps (cascading node failures after a shared-cause event) separated by
#: long quiet stretches — over-dispersed (CV > 1) like ``hetero-mtbf``,
#: but with the lumpy, multi-modal spacing no parametric law reproduces.
#: A literal tuple, not a seeded sample: presets must fingerprint
#: identically on every platform and numpy version.
TRACE_INTERARRIVALS: tuple[float, ...] = (
    0.04, 0.07, 0.05, 0.11, 0.09, 0.06, 0.13, 0.08, 2.9, 0.12, 0.05,
    0.1, 0.07, 0.15, 3.6, 0.09, 0.11, 0.06, 0.14, 0.08, 4.8, 0.1,
    0.05, 0.12, 0.07, 2.2, 0.13, 0.09, 0.06, 0.16, 5.4, 0.11, 0.08,
    0.1, 0.07, 3.1, 0.12, 0.09, 0.14, 0.06, 6.2, 0.1, 0.08, 0.11,
    2.7, 0.13, 0.07, 0.09,
)

#: Trace bootstrap: failures drawn by resampling the recorded
#: inter-arrival times above (``Empirical`` law) instead of any fitted
#: parametric shape — the distribution-free check that the paper's
#: period tuning survives *real* clustering, not just the Weibull/
#: hyperexponential idealisations of it.
TRACE_BOOTSTRAP = CampaignPreset(
    key="trace-bootstrap",
    description=(
        "Base platform replaying a recorded failure trace's shape via "
        "bootstrap resampling (Empirical law, bursty CV>1) - the "
        "distribution-free stress no parametric fit reproduces"
    ),
    scenario="base",
    protocols=("double-nbl", "double-bof", "triple"),
    m_values=(600.0, 1800.0, 3600.0),
    phi_values=(1.0, 2.0),
    work_target=3600.0,
    n=24,
    failure_law="empirical:" + ",".join(f"{t:g}" for t in TRACE_INTERARRIVALS),
)

#: Sub-second end-to-end grid: 2 protocols × 2 MTBFs × 1 φ at 12 nodes.
#: Exists so every execution path — serial, process pools, both sinks,
#: and multi-machine queues — has a named workload cheap enough for CI
#: smoke tests, demos, and "is my queue directory wired up?" checks.
SMOKE = CampaignPreset(
    key="smoke",
    description=(
        "Tiny base-platform grid (2 protocols x 2 MTBFs, 12 nodes, "
        "15min workload) - sub-second end-to-end smoke of the campaign "
        "engine and the distributed queue"
    ),
    scenario="base",
    protocols=("double-nbl", "triple"),
    m_values=(300.0, 600.0),
    phi_values=(1.0,),
    work_target=900.0,
    n=12,
    replicas=2,
)

#: Registry of named campaign workloads by key.
CAMPAIGN_PRESETS: dict[str, CampaignPreset] = {
    p.key: p for p in (
        EXA_WEIBULL, HIGH_CHURN, SLOW_STORAGE, WEIBULL_WEAROUT,
        HETERO_MTBF, TRACE_BOOTSTRAP, SMOKE,
    )
}


def get_campaign_preset(key: str | CampaignPreset) -> CampaignPreset:
    """Look up a campaign preset by key (idempotent on instances)."""
    if isinstance(key, CampaignPreset):
        return key
    try:
        return CAMPAIGN_PRESETS[key]
    except KeyError:
        raise ParameterError(
            f"unknown campaign preset {key!r}; known: "
            f"{sorted(CAMPAIGN_PRESETS)}"
        ) from None
