"""Experiment E1 — Figure 4: waste surfaces, Base scenario.

Three panels — (a) DOUBLE-BOF, (b) DOUBLE-NBL, (c) TRIPLE — showing the
waste at the model-optimal period as a function of ``φ/R ∈ [0, 1]`` and
``M ∈ [15 s, 1 day]`` (log scale).  Expected shape: waste ≈ 1 for
``M ≲ 1 min``, ≈ 0 at one day; TRIPLE benefits most from small ``φ``.
"""

from __future__ import annotations

from ._figcommon import WasteSurfaceFigure, waste_surfaces

__all__ = ["generate"]


def generate(num_phi: int = 41, num_m: int = 49) -> WasteSurfaceFigure:
    return waste_surfaces("fig4", "base", num_phi=num_phi, num_m=num_m)
