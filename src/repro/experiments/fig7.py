"""Experiment E4 — Figure 7: waste surfaces, Exa scenario.

Same axes as Figure 4 with the exascale parameters (Table I).  Expected
shape: same qualitative behaviour as Base, with "waste is important when
failures hit more than once a day" (§VI-B).
"""

from __future__ import annotations

from ._figcommon import WasteSurfaceFigure, waste_surfaces

__all__ = ["generate"]


def generate(num_phi: int = 41, num_m: int = 49) -> WasteSurfaceFigure:
    return waste_surfaces("fig7", "exa", num_phi=num_phi, num_m=num_m)
