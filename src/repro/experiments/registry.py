"""Experiment registry: id → generator, for the CLI and the bench harness.

Each entry renders to text via ``.render()`` and exports CSV via
``.to_csv()`` (a string or a dict of per-panel strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ExperimentError
from . import fig4, fig5, fig6, fig7, fig8, fig9, intro, table1

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered paper artefact."""

    key: str
    title: str
    paper_ref: str
    generate: Callable[..., Any]


EXPERIMENTS: dict[str, Experiment] = {
    exp.key: exp
    for exp in (
        Experiment("intro", "Exascale reliability arithmetic", "Section I",
                   lambda **kw: intro.generate(**kw)),
        Experiment("table1", "Scenario parameters", "Table I",
                   lambda **kw: table1.generate()),
        Experiment("fig4", "Waste surfaces, Base", "Figure 4",
                   lambda **kw: fig4.generate(**kw)),
        Experiment("fig5", "Waste ratios, Base, M=7h", "Figure 5",
                   lambda **kw: fig5.generate(**kw)),
        Experiment("fig6", "Success-probability ratios, Base", "Figure 6",
                   lambda **kw: fig6.generate(**kw)),
        Experiment("fig7", "Waste surfaces, Exa", "Figure 7",
                   lambda **kw: fig7.generate(**kw)),
        Experiment("fig8", "Waste ratios, Exa, M=7h", "Figure 8",
                   lambda **kw: fig8.generate(**kw)),
        Experiment("fig9", "Success-probability ratios, Exa", "Figure 9",
                   lambda **kw: fig9.generate(**kw)),
    )
}


def get_experiment(key: str) -> Experiment:
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(key: str, **kwargs) -> Any:
    """Generate the artefact's data object."""
    return get_experiment(key).generate(**kwargs)
