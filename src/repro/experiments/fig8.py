"""Experiment E5 — Figure 8: waste ratios, Exa scenario, M = 7 h.

Expected shape: TRIPLE's gain over DOUBLE-NBL grows to ≈ 25% at
``φ/R = 1/10``; BOF/NBL stays slightly above 1 until ``φ/R = 1``.
"""

from __future__ import annotations

from ._figcommon import WasteRatioFigure, waste_ratio_figure

__all__ = ["generate"]


def generate(num_phi: int = 101, M=None) -> WasteRatioFigure:
    return waste_ratio_figure("fig8", "exa", M=M, num_phi=num_phi)
