"""Experiment E0 — Table I: scenario parameters.

Regenerates the parameter table of §VI, including the derivation notes
(checkpoint size / device bandwidths) that justify each value.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import report
from .scenarios import SCENARIOS, Scenario

__all__ = ["Table1", "generate"]

_COLUMNS = ("Scenario", "D", "delta", "phi", "R", "alpha", "n")


@dataclass(frozen=True)
class Table1:
    rows: tuple[dict, ...]

    def render(self) -> str:
        body = [[row[c] for c in _COLUMNS] for row in self.rows]
        return report.ascii_table(
            _COLUMNS,
            body,
            title=("=== Table I: parameters for the different scenarios "
                   "(times in seconds) ==="),
        )

    def to_csv(self) -> str:
        import numpy as np

        cols: dict[str, list] = {c: [] for c in _COLUMNS if c not in ("Scenario", "phi")}
        for row in self.rows:
            for c in cols:
                cols[c].append(float(row[c]))
        return report.series_csv({k: np.asarray(v) for k, v in cols.items()})


def generate(scenarios: dict[str, Scenario] | None = None) -> Table1:
    """Build Table I from the scenario registry."""
    scen = scenarios or SCENARIOS
    return Table1(rows=tuple(s.table_row() for s in scen.values()))
