"""Shared builders behind the per-figure experiment modules.

The paper's six evaluation figures come in three families; each family has
one builder here, and the thin ``fig4``–``fig9`` modules bind a scenario
and figure id to a family:

* waste surfaces  — Figs. 4 (Base) and 7 (Exa):   :func:`waste_surfaces`
* waste ratio cuts — Figs. 5 (Base) and 8 (Exa):  :func:`waste_ratio_figure`
* risk ratio surfaces — Figs. 6 (Base) and 9 (Exa): :func:`risk_ratio_figure`
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.ratios import RatioSurface, ratio_surface, waste_ratio_cut
from ..analysis.sweep import WasteSurface, waste_surface
from ..core.protocols import DOUBLE_BOF, DOUBLE_NBL, TRIPLE
from ..experiments.scenarios import Scenario, get_scenario
from ..units import format_time
from . import report

__all__ = [
    "SURFACE_PROTOCOLS",
    "WasteSurfaceFigure",
    "WasteRatioFigure",
    "RiskRatioFigure",
    "waste_surfaces",
    "waste_ratio_figure",
    "risk_ratio_figure",
]

#: Panel order used by Figs. 4 and 7: (a) BOF, (b) NBL, (c) TRIPLE.
SURFACE_PROTOCOLS = (DOUBLE_BOF, DOUBLE_NBL, TRIPLE)


@dataclass(frozen=True)
class WasteSurfaceFigure:
    """Figs. 4/7: one waste surface per protocol panel."""

    figure_id: str
    scenario: str
    panels: tuple[WasteSurface, ...]

    def render(self, max_rows: int = 16, max_cols: int = 64) -> str:
        chunks = [f"=== {self.figure_id}: waste vs (M, phi/R), "
                  f"scenario {self.scenario} ===\n"]
        for surf in self.panels:
            rows = _thin_indices(surf.m_grid.size, max_rows)
            cols = _thin_indices(surf.phi_grid.size, max_cols)
            chunks.append(
                report.ascii_heatmap(
                    surf.waste[np.ix_(rows, cols)],
                    row_labels=[format_time(float(surf.m_grid[i])) for i in rows],
                    col_labels=[f"{surf.phi_over_r[j]:.2f}" for j in cols],
                    title=f"-- {surf.protocol} (waste at optimal period) --",
                    vmin=0.0,
                    vmax=1.0,
                )
            )
        return "\n".join(chunks)

    def to_csv(self) -> dict[str, str]:
        return {
            surf.protocol: report.grid_csv(
                surf.waste, surf.m_grid, surf.phi_over_r,
                row_name="M_seconds", col_name="phi_over_R", value_name="waste",
            )
            for surf in self.panels
        }

    def to_gnuplot(self) -> dict[str, str]:
        """One gnuplot splot script per panel (paper-style surfaces)."""
        return {
            surf.protocol: report.gnuplot_surface_script(
                surf.waste, surf.m_grid, surf.phi_over_r,
                title=f"{self.figure_id} {surf.protocol} ({self.scenario})",
                xlabel="M (s)", ylabel="phi/R", zlabel="Waste",
                data_file=f"{self.figure_id}_{surf.protocol}.csv",
                output_file=f"{self.figure_id}_{surf.protocol}.png",
                log_x=True,
            )
            for surf in self.panels
        }


@dataclass(frozen=True)
class WasteRatioFigure:
    """Figs. 5/8: waste ratios vs φ/R at the scenario's fixed MTBF."""

    figure_id: str
    scenario: str
    M: float
    phi_over_r: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["phi/R"] + list(self.series)
        rows = []
        for i, x in enumerate(self.phi_over_r):
            rows.append([float(x)] + [float(s[i]) for s in self.series.values()])
        title = (f"=== {self.figure_id}: waste ratios, scenario {self.scenario}, "
                 f"M={format_time(self.M)} ===")
        return report.ascii_table(headers, rows, title=title)

    def to_csv(self) -> str:
        cols = {"phi_over_R": self.phi_over_r}
        cols.update(self.series)
        return report.series_csv(cols)


@dataclass(frozen=True)
class RiskRatioFigure:
    """Figs. 6/9: success-probability ratio surfaces over (M, T)."""

    figure_id: str
    scenario: str
    panels: tuple[RatioSurface, ...]
    #: Panel captions as printed in the paper.
    captions: tuple[str, ...]

    def render(self, max_rows: int = 16, max_cols: int = 40) -> str:
        chunks = [f"=== {self.figure_id}: success-probability ratios, "
                  f"scenario {self.scenario} (theta=(alpha+1)R) ===\n"]
        for surf, caption in zip(self.panels, self.captions):
            rows = _thin_indices(surf.m_grid.size, max_rows)
            cols = _thin_indices(surf.t_grid.size, max_cols)
            chunks.append(
                report.ascii_heatmap(
                    surf.ratio[np.ix_(rows, cols)],
                    row_labels=[format_time(float(surf.m_grid[i])) for i in rows],
                    col_labels=[format_time(float(surf.t_grid[j])) for j in cols],
                    title=f"-- {caption} --",
                    vmin=0.0,
                    vmax=1.0,
                )
            )
        return "\n".join(chunks)

    def to_csv(self) -> dict[str, str]:
        return {
            f"{surf.numerator}_over_{surf.denominator}": report.grid_csv(
                surf.ratio, surf.m_grid, surf.t_grid,
                row_name="M_seconds", col_name="T_seconds", value_name="ratio",
            )
            for surf in self.panels
        }

    def to_gnuplot(self) -> dict[str, str]:
        """One gnuplot splot script per panel (paper-style surfaces)."""
        out = {}
        for surf in self.panels:
            name = f"{surf.numerator}_over_{surf.denominator}"
            out[name] = report.gnuplot_surface_script(
                surf.ratio, surf.m_grid, surf.t_grid,
                title=f"{self.figure_id} {name} ({self.scenario})",
                xlabel="M (s)", ylabel="Platform life (s)",
                zlabel="Success probability ratio",
                data_file=f"{self.figure_id}_{name}.csv",
                output_file=f"{self.figure_id}_{name}.png",
            )
        return out


def _thin_indices(size: int, limit: int) -> np.ndarray:
    if size <= limit:
        return np.arange(size)
    return np.unique(np.linspace(0, size - 1, limit).round().astype(int))


# ----------------------------------------------------------------------
def waste_surfaces(
    figure_id: str,
    scenario: Scenario | str,
    *,
    num_phi: int = 41,
    num_m: int = 49,
) -> WasteSurfaceFigure:
    """Build the three panels of Fig. 4 (Base) or Fig. 7 (Exa)."""
    scenario = get_scenario(scenario)
    panels = tuple(
        waste_surface(spec, scenario, num_phi=num_phi, num_m=num_m)
        for spec in SURFACE_PROTOCOLS
    )
    return WasteSurfaceFigure(figure_id=figure_id, scenario=scenario.key,
                              panels=panels)


def waste_ratio_figure(
    figure_id: str,
    scenario: Scenario | str,
    *,
    M: float | str | None = None,
    num_phi: int = 101,
) -> WasteRatioFigure:
    """Build Fig. 5 (Base) or Fig. 8 (Exa): BOF/NBL and TRIPLE/NBL vs φ/R."""
    scenario = get_scenario(scenario)
    m_value = scenario.m_ratio_cut if M is None else M
    x, bof_over_nbl = waste_ratio_cut(DOUBLE_BOF, DOUBLE_NBL, scenario,
                                      M=m_value, num_phi=num_phi)
    _, tri_over_nbl = waste_ratio_cut(TRIPLE, DOUBLE_NBL, scenario,
                                      M=m_value, num_phi=num_phi)
    params = scenario.parameters(M=m_value)
    return WasteRatioFigure(
        figure_id=figure_id,
        scenario=scenario.key,
        M=params.M,
        phi_over_r=x,
        series={
            "DoubleBoF/DoubleNBL": np.asarray(bof_over_nbl),
            "Triple/DoubleNBL": np.asarray(tri_over_nbl),
        },
    )


def risk_ratio_figure(
    figure_id: str,
    scenario: Scenario | str,
    *,
    num_m: int = 31,
    num_t: int = 30,
    method: str = "paper",
) -> RiskRatioFigure:
    """Build Fig. 6 (Base) or Fig. 9 (Exa).

    Panels: (a) NBL/BOF as captioned; (b) BOF/TRIPLE as captioned, plus
    the NBL/TRIPLE panel the body text of §VI-A describes — the paper's
    caption and text disagree, so we emit both (see DESIGN.md, E3).
    """
    scenario = get_scenario(scenario)
    kw = dict(theta_policy="max", num_m=num_m, num_t=num_t, method=method)
    panels = (
        ratio_surface(DOUBLE_NBL, DOUBLE_BOF, scenario, **kw),
        ratio_surface(DOUBLE_BOF, TRIPLE, scenario, **kw),
        ratio_surface(DOUBLE_NBL, TRIPLE, scenario, **kw),
    )
    captions = (
        "(a) DoubleNBL / DoubleBoF success probability",
        "(b) DoubleBoF / Triple success probability (caption)",
        "(b') DoubleNBL / Triple success probability (body text)",
    )
    return RiskRatioFigure(
        figure_id=figure_id, scenario=scenario.key, panels=panels,
        captions=captions,
    )
