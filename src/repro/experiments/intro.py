"""The paper's §I motivation, reproduced as numbers.

Two computations anchor the introduction:

1. With a 50-year node MTBF, a node survives the next hour with
   probability ≈ 0.999998 — but on a 10⁶-node machine the probability
   that *some* node fails within the hour exceeds 0.86.
2. Therefore the platform MTBF is minutes, and long-running applications
   must checkpoint.

This module reproduces both and extends them into the "no checkpointing
is hopeless" baseline (Eq. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.parameters import Parameters
from ..core.risk import success_probability_base
from ..units import HOUR, YEAR, format_time
from . import report

__all__ = ["IntroFacts", "generate"]


@dataclass(frozen=True)
class IntroFacts:
    node_mtbf_years: float
    n_nodes: int
    p_node_survives_hour: float
    p_platform_failure_within_hour: float
    platform_mtbf_seconds: float
    p_one_day_run_no_checkpoint: float

    def render(self) -> str:
        rows = [
            ["node MTBF", f"{self.node_mtbf_years:g} years"],
            ["P(node up for 1 more hour)", f"{self.p_node_survives_hour:.6f}"],
            ["nodes", f"{self.n_nodes}"],
            ["P(some node fails within 1 hour)",
             f"{self.p_platform_failure_within_hour:.4f} (paper: > 0.86)"],
            ["platform MTBF", format_time(round(self.platform_mtbf_seconds))],
            ["P(1-day run survives, no checkpointing)",
             f"{self.p_one_day_run_no_checkpoint:.2e}"],
        ]
        return report.ascii_table(
            ["quantity", "value"], rows,
            title="=== §I motivation: exascale reliability arithmetic ===",
        )

    def to_csv(self) -> str:
        import numpy as np

        return report.series_csv({
            "node_mtbf_years": np.array([self.node_mtbf_years]),
            "n_nodes": np.array([float(self.n_nodes)]),
            "p_node_survives_hour": np.array([self.p_node_survives_hour]),
            "p_platform_failure_within_hour": np.array(
                [self.p_platform_failure_within_hour]),
            "platform_mtbf_seconds": np.array([self.platform_mtbf_seconds]),
            "p_one_day_run_no_checkpoint": np.array(
                [self.p_one_day_run_no_checkpoint]),
        })


def generate(
    node_mtbf_years: float = 50.0, n_nodes: int = 10**6
) -> IntroFacts:
    """Reproduce the §I arithmetic for any (node MTBF, node count)."""
    node_mtbf = node_mtbf_years * YEAR
    # The paper's conservative rounding: P(up for the next hour) with an
    # exponential law at a 50-year MTBF is exp(-1h/50y) ≈ 0.999998.
    p_hour = math.exp(-HOUR / node_mtbf)
    p_platform_fail = 1.0 - p_hour**n_nodes
    platform_mtbf = node_mtbf / n_nodes
    params = Parameters(
        D=0.0, delta=1.0, R=1.0, alpha=0.0, M=platform_mtbf, n=n_nodes
    )
    p_day = success_probability_base(params, 86400.0, method="exponential")
    return IntroFacts(
        node_mtbf_years=node_mtbf_years,
        n_nodes=n_nodes,
        p_node_survives_hour=p_hour,
        p_platform_failure_within_hour=p_platform_fail,
        platform_mtbf_seconds=platform_mtbf,
        p_one_day_run_no_checkpoint=p_day,
    )
