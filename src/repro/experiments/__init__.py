"""Experiment layer: scenarios (Table I) and table/figure generators (§VI).

Each paper artefact has a generator module (``table1``, ``fig4`` … ``fig9``)
returning plain data structures (numpy grids + labels) that render as
ASCII/CSV and that the benchmark harnesses time.  The
:mod:`~repro.experiments.registry` maps experiment ids (``"fig5"``) to
generators for the CLI; :mod:`~repro.experiments.validation` holds the
model-vs-simulation checks (experiment E7 of DESIGN.md).
"""

from . import scenarios
from .scenarios import Scenario, BASE, EXA, SCENARIOS, get_scenario

__all__ = [
    "scenarios",
    "Scenario",
    "BASE",
    "EXA",
    "SCENARIOS",
    "get_scenario",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light; the figure generators pull in
    # the analysis layer which most model users never touch.
    if name in ("intro", "table1", "fig4", "fig5", "fig6", "fig7", "fig8",
                "fig9", "registry", "validation", "report"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
