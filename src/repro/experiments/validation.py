"""Experiment E7 — model-vs-simulation validation.

The paper's "comprehensive simulations" evaluate the analytical model on
parameter grids; this library additionally *validates* the model against
independent simulators, protocol by protocol:

1. **Renewal Monte Carlo** (fast): the empirical mean lost time per
   failure ``F̂`` against ``F = A + P/2`` (Eqs. 7/8/14) and the empirical
   waste against Eq. (4)/(5).
2. **Risk Monte Carlo**: the empirical success probability against
   Eqs. (11)/(16).
3. **Event simulation** (exact semantics): measured waste on a small
   cluster against the model.

Each check returns the model value, the estimate with its confidence
interval, and a pass/fail verdict used by the integration tests and the
``repro-checkpoint validate`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import Parameters
from ..core.period import optimal_period
from ..core.protocols import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    ProtocolSpec,
    get_protocol,
)
from ..core.risk import success_probability
from ..core.waste import waste
from ..errors import ParameterError
from ..sim.des import DesConfig, run_des_batch, summarize_waste
from ..sim.renewal import RenewalConfig, mean_block_samples, run_renewal_batch
from ..sim.results import MonteCarloSummary
from ..sim.riskmc import RiskMcConfig, run_risk_mc
from . import report

__all__ = ["ValidationCheck", "ValidationReport", "validate_protocol",
           "validate_all", "DEFAULT_PROTOCOLS"]

DEFAULT_PROTOCOLS = (DOUBLE_BLOCKING, DOUBLE_NBL, DOUBLE_BOF, TRIPLE, TRIPLE_BOF)


@dataclass(frozen=True)
class ValidationCheck:
    """One model-vs-estimate comparison."""

    name: str
    protocol: str
    model_value: float
    estimate: float
    ci_low: float
    ci_high: float
    #: Allowed slack beyond the CI, as a fraction of the model value —
    #: covers the documented O((F/M)²) bias of the renewal estimator.
    tolerance: float

    @property
    def passed(self) -> bool:
        slack = self.tolerance * max(abs(self.model_value), 1e-12)
        return (self.ci_low - slack) <= self.model_value <= (self.ci_high + slack)

    def row(self) -> list:
        return [
            self.protocol, self.name, self.model_value, self.estimate,
            self.ci_low, self.ci_high, "PASS" if self.passed else "FAIL",
        ]


@dataclass(frozen=True)
class ValidationReport:
    checks: tuple[ValidationCheck, ...] = field(default_factory=tuple)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        headers = ["protocol", "check", "model", "estimate", "ci_low",
                   "ci_high", "verdict"]
        return report.ascii_table(
            headers,
            [c.row() for c in self.checks],
            title="=== Model-vs-simulation validation ===",
        )


def validate_protocol(
    spec: ProtocolSpec | str,
    params: Parameters,
    phi: float,
    *,
    renewal_replicas: int = 12,
    renewal_periods: int = 40_000,
    risk_T: float | None = None,
    risk_replicas: int = 150_000,
    des_replicas: int = 0,
    des_params: Parameters | None = None,
    des_work: float = 4 * 3600.0,
    seed: int = 20130520,
) -> list[ValidationCheck]:
    """Run the renewal/risk (and optionally DES) checks for one protocol."""
    spec = get_protocol(spec)
    checks: list[ValidationCheck] = []

    # --- renewal: F and waste ------------------------------------------
    period = optimal_period(spec, params, phi)
    if not np.isfinite(period):
        raise ParameterError(f"{spec.key} infeasible at M={params.M:g}")
    results, summary = run_renewal_batch(
        RenewalConfig(protocol=spec, params=params, phi=phi,
                      period=float(period), n_periods=renewal_periods,
                      seed=seed),
        replicas=renewal_replicas,
    )
    f_model = float(np.asarray(spec.expected_lost_time(params, phi, period)))
    f_samples = mean_block_samples(results)
    f_summary = MonteCarloSummary.from_samples(f_samples)
    checks.append(ValidationCheck(
        name="F (lost time per failure)",
        protocol=spec.key,
        model_value=f_model,
        estimate=f_summary.mean,
        ci_low=f_summary.ci_low,
        ci_high=f_summary.ci_high,
        tolerance=0.01,
    ))
    w_model = float(waste(spec, params, phi, period))
    f_over_m = f_model / params.M
    checks.append(ValidationCheck(
        name="waste at optimal period",
        protocol=spec.key,
        model_value=w_model,
        estimate=summary.mean,
        ci_low=summary.ci_low,
        ci_high=summary.ci_high,
        # The renewal estimator's documented bias is O((F/M)^2).
        tolerance=2.0 * f_over_m**2 / max(w_model, 1e-12) + 0.01,
    ))

    # --- risk MC -------------------------------------------------------
    if risk_T is not None:
        mc = run_risk_mc(RiskMcConfig(
            protocol=spec, params=params, T=risk_T, phi=phi,
            replicas=risk_replicas, seed=seed + 1,
        ))
        p_model = float(np.asarray(
            success_probability(spec, params, phi, risk_T)))
        checks.append(ValidationCheck(
            name=f"success probability (T={risk_T:g}s)",
            protocol=spec.key,
            model_value=p_model,
            estimate=mc.success_probability,
            ci_low=mc.success_ci[0],
            ci_high=mc.success_ci[1],
            tolerance=0.02,
        ))

    # --- DES (optional, slower) ----------------------------------------
    if des_replicas > 0:
        dparams = des_params or params
        des_results = run_des_batch(
            DesConfig(protocol=spec, params=dparams, phi=phi,
                      work_target=des_work, seed=seed + 2),
            replicas=des_replicas,
        )
        completed = [r for r in des_results if r.succeeded]
        if completed:
            des_summary = summarize_waste(completed)
            des_period = optimal_period(spec, dparams, phi)
            w_des_model = float(waste(spec, dparams, phi, des_period))
            checks.append(ValidationCheck(
                name="DES measured waste",
                protocol=spec.key,
                model_value=w_des_model,
                estimate=des_summary.mean,
                ci_low=des_summary.ci_low,
                ci_high=des_summary.ci_high,
                # DES has finite-horizon bias (partial periods, startup).
                tolerance=0.10,
            ))
    return checks


def validate_all(
    params: Parameters,
    phi: float,
    *,
    protocols=DEFAULT_PROTOCOLS,
    risk_params: Parameters | None = None,
    risk_T: float | None = None,
    seed: int = 20130520,
    **kwargs,
) -> ValidationReport:
    """Validation sweep over the protocol set (CLI/bench entry point)."""
    checks: list[ValidationCheck] = []
    for spec in protocols:
        checks.extend(validate_protocol(
            spec, params, phi, seed=seed, **kwargs,
        ))
        if risk_params is not None and risk_T is not None:
            checks.extend(validate_protocol(
                spec, risk_params, phi,
                renewal_replicas=2, renewal_periods=2000,
                risk_T=risk_T, seed=seed,
            )[2:])  # keep only the risk check from the second pass
    return ValidationReport(checks=tuple(checks))
