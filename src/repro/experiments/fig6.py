"""Experiment E3 — Figure 6: success-probability ratios, Base scenario.

Surfaces over ``M ∈ (0, 30] min`` × platform life ``T ∈ [1, 30]`` days at
the worst-case window ``θ = (α+1)R``:

* (a) DOUBLE-NBL / DOUBLE-BOF — drops below 1 for small M and long T.
* (b) DOUBLE-BOF / TRIPLE (as captioned in the paper) plus the
  DOUBLE-NBL / TRIPLE panel that §VI-A's body text actually discusses;
  the paper's caption and text disagree, so both are emitted.
"""

from __future__ import annotations

from ._figcommon import RiskRatioFigure, risk_ratio_figure

__all__ = ["generate"]


def generate(num_m: int = 31, num_t: int = 30, method: str = "paper") -> RiskRatioFigure:
    return risk_ratio_figure("fig6", "base", num_m=num_m, num_t=num_t,
                             method=method)
