"""Experiment E2 — Figure 5: waste ratios, Base scenario, M = 7 h.

Series: DOUBLE-BOF/DOUBLE-NBL and TRIPLE/DOUBLE-NBL versus ``φ/R``.
Expected shape: BOF/NBL ≥ 1 converging to 1 at ``φ/R = 1``; TRIPLE/NBL
≈ 0.25 at ``φ/R = 0``, crossing 1 near 0.5–0.6, worst case ≈ 1.15.
"""

from __future__ import annotations

from ._figcommon import WasteRatioFigure, waste_ratio_figure

__all__ = ["generate"]


def generate(num_phi: int = 101, M=None) -> WasteRatioFigure:
    return waste_ratio_figure("fig5", "base", M=M, num_phi=num_phi)
