"""Skew-tolerant age arithmetic for shared-filesystem timestamps.

Both the work-stealing queue (:mod:`repro.sim.distributed`, lease
expiry) and the results store (:mod:`repro.store.store`, ``gc
--max-age``) decide liveness by comparing *their own* wall clock
against ``st_mtime`` stamps written by *other* machines through a
shared filesystem.  Two failure modes follow:

* **Cross-machine skew / NTP steps.**  On NFS, ``st_mtime`` is stamped
  by the *server* clock; ``time.time()`` is the client's.  A client
  running behind the server computes negative ages (a fresh lease looks
  "from the future" — fine), but a client running *ahead* inflates
  every age and can steal a live lease or evict a just-published store
  entry.
* **Backwards local jumps.**  Even single-machine, an NTP step between
  a write and the age check can make ``now − mtime`` negative or
  wildly large.

The cure is to measure *now* with the same clock that stamped the
files: touch a probe file in the directory being judged and read its
``st_mtime`` back (:func:`filesystem_now`).  Probe and judged stamps
then share one clock — the fileserver's — and skew cancels.  Ages are
additionally clamped at zero (:func:`clamped_age`): a negative age
means "stamped after *now* was sampled", i.e. maximally fresh, and
must never wrap into a huge positive age.

Both call sites fail *safe* in the same direction: an unexpectedly
small age keeps a lease un-stolen and a store entry un-evicted; an
expired lease is recovered on the next scan once the shared clock
actually advances past the timeout.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path

__all__ = ["filesystem_now", "clamped_age"]


def filesystem_now(directory: Path | str) -> float:
    """Current time according to ``directory``'s own filesystem clock.

    Touches a uniquely named probe file inside ``directory``, stats it,
    unlinks it, and returns the probe's ``st_mtime`` — the same clock
    that stamps every other file in that directory, regardless of which
    machine (or fileserver) is authoritative for it.  Falls back to
    ``time.time()`` if the directory is missing or unwritable, which
    reproduces the old behaviour exactly.
    """
    base = Path(directory)
    probe = base / f".clock-probe-{uuid.uuid4().hex}.tmp"
    try:
        with open(probe, "w"):
            pass
        return probe.stat().st_mtime
    except OSError:
        return time.time()
    finally:
        try:
            os.unlink(probe)
        except OSError:
            pass


def clamped_age(now: float, mtime: float) -> float:
    """``now − mtime``, clamped at zero.

    A negative raw age means the file was stamped after ``now`` was
    sampled (clock skew, NTP step, or simply a touch racing the scan):
    treat it as brand new.  Callers compare the result against a
    timeout/max-age, so the clamp makes skew strictly conservative —
    nothing is ever stolen or evicted early because a clock jumped.
    """
    return max(0.0, float(now) - float(mtime))
