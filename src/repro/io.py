"""Result persistence: JSON round-trips for simulation outputs.

Long parameter sweeps (hundreds of DES runs) need durable, versioned
results so analyses can be re-run without re-simulating.  This module
serialises the library's result types to a stable JSON envelope::

    {"format": "repro-results", "version": 2,
     "kind": "DesResult", "payload": {...}}

and, for out-of-order campaign sinks, a *framed* variant that wraps the
same payload with the record's provenance — which grid cell produced it,
which replica it is, and a contiguous file-wide sequence number::

    {"format": "repro-frames", "version": 2,
     "cell": 7, "replica": 0, "seq": 21, "payload": {...}}

Frames let records land in any cell order while still supporting exact
resume: :func:`scan_frames` reconstructs per-cell completion from the
framing alone (see :mod:`repro.sim.sinks`).

Guarantees:

* round-trips are lossless for every field, including ``nan``/``inf``
  (encoded as typed sentinels ``{"__float__": "nan"}``, since JSON has no
  literals for them) **and** payload strings that happen to spell
  ``"nan"``/``"inf"``/``"-inf"`` — the envelope version was bumped to 2
  with the sentinels, so the version-1 bare-string float spelling is
  only ever applied to records that declare version 1, and a version-2
  string can never be reinterpreted;
* files written by older library versions either load or fail loudly —
  never silently mis-parse;
* batches are streamed as JSON Lines (one envelope per line), so a
  campaign can append results as runs finish;
* the tolerant scanners (:func:`scan_results`, :func:`scan_frames`)
  forgive exactly one kind of damage — a torn *trailing* write — and
  raise, with the byte offset, on structurally invalid records that sit
  mid-file in front of further data (that is corruption, not an
  interrupted append).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from .errors import ParameterError
from .sim.results import DesResult, MonteCarloSummary

__all__ = [
    "encode_floats",
    "decode_floats",
    "dump_result",
    "load_result",
    "save_results",
    "load_results",
    "scan_results",
    "to_envelope",
    "from_envelope",
    "ResultFrame",
    "dump_frame",
    "load_frame",
    "scan_frames",
    "scan_campaign_runs",
    "iter_campaign_runs",
]

_FORMAT = "repro-results"
_FRAME_FORMAT = "repro-frames"
#: Written version.  1 spelled non-finite floats as bare strings — which
#: silently swallowed legitimate ``"nan"``/``"inf"``/``"-inf"`` *string*
#: payloads on the way back in; 2 uses typed sentinels instead.  Decoding
#: is gated on each record's declared version, so the two spellings can
#: never be confused (a resumed file may legitimately mix both).
_VERSION = 2
_READ_VERSIONS = frozenset({1, 2})
_KINDS = {"DesResult": DesResult, "MonteCarloSummary": MonteCarloSummary}


#: The three float values JSON cannot spell, by their stable spelling.
_FLOAT_STRINGS = {"nan": float("nan"), "inf": float("inf"),
                  "-inf": float("-inf")}
#: Single-key dicts reserved by the version-2 encoding.  ``__float__``
#: carries a non-finite float; ``__dict__`` escapes a *user* dict that
#: happens to look like a marker.
_MARKER_KEYS = frozenset({"__float__", "__dict__"})


def _encode_float(value: Any) -> Any:
    """Encode one scalar; non-finite floats become typed sentinels.

    Strings pass through untouched — under version 2 nothing ever
    reinterprets them, so ``"nan"`` the string and ``nan`` the float are
    distinct on disk by construction.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
    return value


def _decode_float(value: Any) -> Any:
    """Inverse of the *version-1* scalar encoding, applied only to
    records that declare version 1: bare ``"nan"``/``"inf"``/``"-inf"``
    strings are old-format non-finite floats.  (For version-1 files a
    genuine string payload spelling one of these is indistinguishable
    from a float — the historical bug the version bump fixes.)"""
    if isinstance(value, str) and value in _FLOAT_STRINGS:
        return _FLOAT_STRINGS[value]
    return value


def _encode_payload(obj: Any) -> Any:
    if isinstance(obj, dict):
        enc = {k: _encode_payload(v) for k, v in obj.items()}
        if len(enc) == 1 and next(iter(enc)) in _MARKER_KEYS:
            # A user dict indistinguishable from a sentinel: escape it so
            # the decoder cannot mistake it for one.
            return {"__dict__": enc}
        return enc
    if isinstance(obj, (list, tuple)):
        return [_encode_payload(v) for v in obj]
    return _encode_float(obj)


def _decode_payload(obj: Any, legacy: bool) -> Any:
    """Decode one payload tree; ``legacy`` selects the version-1 rules
    (bare-string floats, no sentinels) or the version-2 rules (typed
    sentinels, strings inviolate) — never both, so neither era's
    spelling can be misread as the other's."""
    if isinstance(obj, dict):
        if not legacy and len(obj) == 1:
            (key, value), = obj.items()
            if (key == "__float__" and isinstance(value, str)
                    and value in _FLOAT_STRINGS):
                return _FLOAT_STRINGS[value]
            if key == "__dict__" and isinstance(value, dict):
                # Escaped user dict: decode its values, but never
                # re-interpret the dict itself as a sentinel.
                return {k: _decode_payload(v, legacy)
                        for k, v in value.items()}
        return {k: _decode_payload(v, legacy) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_payload(v, legacy) for v in obj]
    return _decode_float(obj) if legacy else obj


def encode_floats(obj: Any) -> Any:
    """Make an arbitrary JSON-ish tree safe for strict JSON.

    Non-finite floats become the version-2 typed sentinels
    (``{"__float__": "nan"}``); user dicts that happen to look like a
    sentinel are escaped.  This is the same encoding results envelopes
    use, exposed for other wire formats (metrics snapshots, trace spans)
    that must survive ``json.dumps(..., allow_nan=False)``.
    """
    return _encode_payload(obj)


def decode_floats(obj: Any) -> Any:
    """Inverse of :func:`encode_floats` (version-2 rules only)."""
    return _decode_payload(obj, legacy=False)


def to_envelope(result: DesResult | MonteCarloSummary) -> dict:
    """Wrap a result in the versioned JSON envelope (as a plain dict)."""
    kind = type(result).__name__
    if kind not in _KINDS:
        raise ParameterError(f"cannot serialise {kind}")
    payload = dict(result.__dict__)
    # Tuples must survive: mark which fields need re-tupling on load.
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "kind": kind,
        "payload": _encode_payload(payload),
    }


def from_envelope(envelope: dict) -> DesResult | MonteCarloSummary:
    """Reconstruct a result object; validates format and version."""
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise ParameterError("not a repro-results envelope")
    version = envelope.get("version")
    if version not in _READ_VERSIONS:
        raise ParameterError(
            f"unsupported results version {version!r} "
            f"(this library reads versions {sorted(_READ_VERSIONS)})"
        )
    kind = envelope.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise ParameterError(f"unknown result kind {kind!r}")
    payload = _decode_payload(envelope.get("payload", {}), version == 1)
    if not isinstance(payload, dict):
        raise ParameterError(
            f"corrupt {kind} payload: expected an object, "
            f"got {type(payload).__name__}"
        )
    try:
        if kind == "DesResult":
            payload["fatal_group"] = tuple(payload.get("fatal_group", ()))
        if kind == "MonteCarloSummary":
            payload["success_ci"] = tuple(payload.get("success_ci", (0.0, 1.0)))
        return cls(**payload)
    except TypeError as exc:
        raise ParameterError(f"corrupt {kind} payload: {exc}") from exc


def dump_result(result: DesResult | MonteCarloSummary) -> str:
    """One result as a compact JSON string."""
    return json.dumps(to_envelope(result), sort_keys=True)


def load_result(text: str) -> DesResult | MonteCarloSummary:
    """Inverse of :func:`dump_result`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid JSON: {exc}") from exc
    return from_envelope(envelope)


def save_results(
    results: Iterable[DesResult | MonteCarloSummary],
    path: str | pathlib.Path,
    *,
    append: bool = False,
) -> int:
    """Write results as JSON Lines; returns the number written."""
    path = pathlib.Path(path)
    mode = "a" if append else "w"
    count = 0
    with path.open(mode, encoding="utf-8") as fh:
        for result in results:
            fh.write(dump_result(result) + "\n")
            count += 1
    return count


def _scan_envelopes(
    path: pathlib.Path,
    decode: Callable[[dict], Any],
    expected_format: str | None = None,
) -> Iterator[tuple[Any, int]]:
    """Shared tolerant-prefix scanner behind :func:`scan_results` and
    :func:`scan_frames`.

    ``decode`` turns one parsed JSON object into a record (raising
    :class:`ParameterError` on structural corruption).  Three failure
    modes are distinguished:

    * a line that is not even JSON, or the file's **last** line failing to
      decode — a torn trailing write; the scan ends silently and resume
      re-executes from there;
    * an intact record of the *other* known envelope format (a results
      file scanned as frames or vice versa, named by ``expected_format``)
      — a sink-mode mismatch, reported as such wherever it sits, since a
      torn write can never produce a whole foreign-format record;
    * a line that parses as JSON but fails record checks **with further
      data behind it** — mid-file corruption an append can never produce;
      raises with the record's byte offset so the damage can be inspected
      (and is never silently "resumed over").
    """
    offset = 0
    with path.open("rb") as fh:
        for raw in fh:
            end = offset + len(raw)
            if not raw.endswith(b"\n"):
                return  # partial trailing write (interrupted mid-record)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                return
            if line:
                try:
                    envelope = json.loads(line)
                except json.JSONDecodeError:
                    return  # torn/binary garbage: treat as truncation point
                try:
                    record = decode(envelope)
                except ParameterError as exc:
                    fmt = envelope.get("format") \
                        if isinstance(envelope, dict) else None
                    if (expected_format is not None
                            and fmt in (_FORMAT, _FRAME_FORMAT)
                            and fmt != expected_format):
                        raise ParameterError(
                            f"{path}: holds {fmt!r} records where "
                            f"{expected_format!r} records were expected; "
                            "was this file written with the other sink "
                            "mode?"
                        ) from exc
                    if fh.read(1):
                        raise ParameterError(
                            f"{path}: corrupt record at byte offset "
                            f"{offset} with intact data after it ({exc}); "
                            "this is mid-file damage, not an interrupted "
                            "append - refusing to scan past it"
                        ) from exc
                    return  # torn trailing record: normal truncation point
                yield record, end
            offset = end


def scan_results(
    path: str | pathlib.Path,
) -> Iterator[tuple[DesResult | MonteCarloSummary, int]]:
    """Tolerantly stream the valid prefix of a JSON Lines results file.

    Yields ``(result, end_offset)`` pairs, where ``end_offset`` is the byte
    offset just past the record's newline — i.e. the length the file can be
    truncated to while keeping every record seen so far.  Scanning stops
    (without raising) at a torn *trailing* write: a non-JSON line, or a
    final line that parses but fails record checks — exactly the recovery
    behaviour an interrupted campaign needs (:mod:`repro.sim.sinks`
    resumes from the last intact record).  A JSON-parseable record that
    fails those checks *mid-file* — with intact data after it — raises
    instead, surfacing the byte offset: appends cannot produce that shape,
    so it is corruption that must not be silently truncated away.

    Contrast :func:`load_results`, which treats any bad line as an error.
    """
    yield from _scan_envelopes(
        pathlib.Path(path), from_envelope, expected_format=_FORMAT
    )


def load_results(path: str | pathlib.Path) -> Iterator[DesResult | MonteCarloSummary]:
    """Stream results back from a JSON Lines file."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield load_result(line)
            except ParameterError as exc:
                raise ParameterError(f"{path}:{lineno}: {exc}") from exc


# ----------------------------------------------------------------------
# Framed records (out-of-order campaign sinks)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResultFrame:
    """One framed record: a result plus its campaign provenance.

    ``cell`` is the grid-cell index in the campaign's deterministic plan
    order, ``replica`` the replica index within that cell, and ``seq`` the
    file-wide write sequence (0, 1, 2, ... with no gaps) — the invariant a
    resume scan checks to tell "interrupted append" from "foreign file".
    """

    cell: int
    replica: int
    seq: int
    result: DesResult | MonteCarloSummary


def frame_envelope(
    result: DesResult | MonteCarloSummary, *, cell: int, replica: int, seq: int
) -> dict:
    """Wrap a result in the framed envelope (as a plain dict)."""
    for name, value in (("cell", cell), ("replica", replica), ("seq", seq)):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ParameterError(
                f"frame {name} must be a non-negative integer, got {value!r}"
            )
    return {
        "format": _FRAME_FORMAT,
        "version": _VERSION,
        "cell": cell,
        "replica": replica,
        "seq": seq,
        "payload": to_envelope(result),
    }


def frame_from_envelope(envelope: dict) -> ResultFrame:
    """Reconstruct a :class:`ResultFrame`; validates format and framing."""
    if not isinstance(envelope, dict) or envelope.get("format") != _FRAME_FORMAT:
        raise ParameterError("not a repro-frames envelope")
    if envelope.get("version") not in _READ_VERSIONS:
        raise ParameterError(
            f"unsupported frames version {envelope.get('version')!r} "
            f"(this library reads versions {sorted(_READ_VERSIONS)})"
        )
    fields = {}
    for name in ("cell", "replica", "seq"):
        value = envelope.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ParameterError(
                f"corrupt frame: {name} must be a non-negative integer, "
                f"got {value!r}"
            )
        fields[name] = value
    return ResultFrame(result=from_envelope(envelope.get("payload")), **fields)


def dump_frame(
    result: DesResult | MonteCarloSummary, *, cell: int, replica: int, seq: int
) -> str:
    """One framed result as a compact JSON string."""
    return json.dumps(
        frame_envelope(result, cell=cell, replica=replica, seq=seq),
        sort_keys=True,
    )


def load_frame(text: str) -> ResultFrame:
    """Inverse of :func:`dump_frame`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid JSON: {exc}") from exc
    return frame_from_envelope(envelope)


def scan_frames(
    path: str | pathlib.Path,
) -> Iterator[tuple[ResultFrame, int]]:
    """Tolerantly stream the valid prefix of a framed JSON Lines file.

    The framed twin of :func:`scan_results`: yields ``(frame,
    end_offset)`` pairs, ends silently at a torn trailing write, and
    raises (with the byte offset) on mid-file corruption or a sink-mode
    mismatch.
    """
    yield from _scan_envelopes(
        pathlib.Path(path), frame_from_envelope,
        expected_format=_FRAME_FORMAT,
    )


def _campaign_entry(envelope: Any) -> tuple[int | None, DesResult | MonteCarloSummary]:
    """Decode either campaign record shape into ``(cell_index, result)``.

    ``cell_index`` is the frame's grid-cell index, or ``None`` for plain
    (ordered-sink) records, whose file position *is* grid order.
    """
    if isinstance(envelope, dict) and envelope.get("format") == _FRAME_FORMAT:
        frame = frame_from_envelope(envelope)
        return frame.cell, frame.result
    return None, from_envelope(envelope)


def scan_campaign_runs(
    path: str | pathlib.Path,
) -> Iterator[tuple[int | None, DesResult]]:
    """Stream ``(cell_index, run)`` pairs out of a campaign results file.

    Accepts both sink formats — plain result envelopes (the ordered sink,
    ``cell_index=None``) and framed envelopes (the out-of-order sink) —
    deciding per line, so offline analyses (``repro-checkpoint report
    --from-campaign``) never need to know how a campaign was executed.
    Tolerant like the resume scanners: a torn *trailing* write ends the
    stream silently (an interrupted campaign's file is analysable as-is),
    while mid-file corruption raises.  Any *intact* record that is not a
    :class:`DesResult` raises wherever it sits: a campaign sink only ever
    holds raw runs, so anything else means the wrong file was pointed at.
    """
    path = pathlib.Path(path)
    for (cell, result), _ in _scan_envelopes(path, _campaign_entry):
        if not isinstance(result, DesResult):
            raise ParameterError(
                f"{path}: expected raw DES runs but found a "
                f"{type(result).__name__} record; this is not a campaign "
                "results file"
            )
        yield cell, result


def iter_campaign_runs(path: str | pathlib.Path) -> Iterator[DesResult]:
    """The raw DES runs of a campaign file (:func:`scan_campaign_runs`
    without the cell indices)."""
    for _, run in scan_campaign_runs(path):
        yield run
