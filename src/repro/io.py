"""Result persistence: JSON round-trips for simulation outputs.

Long parameter sweeps (hundreds of DES runs) need durable, versioned
results so analyses can be re-run without re-simulating.  This module
serialises the library's result types to a stable JSON envelope::

    {"format": "repro-results", "version": 1,
     "kind": "DesResult", "payload": {...}}

Guarantees:

* round-trips are lossless for every field, including ``nan``/``inf``
  (encoded as strings, since JSON has no literals for them);
* files written by older library versions either load or fail loudly —
  never silently mis-parse;
* batches are streamed as JSON Lines (one envelope per line), so a
  campaign can append results as runs finish.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Iterable, Iterator

from .errors import ParameterError
from .sim.results import DesResult, MonteCarloSummary

__all__ = [
    "dump_result",
    "load_result",
    "save_results",
    "load_results",
    "scan_results",
    "to_envelope",
    "from_envelope",
]

_FORMAT = "repro-results"
_VERSION = 1
_KINDS = {"DesResult": DesResult, "MonteCarloSummary": MonteCarloSummary}


def _encode_float(value: float) -> Any:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: Any) -> Any:
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


def _encode_payload(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {k: _encode_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode_payload(v) for v in obj]
    return _encode_float(obj)


def _decode_payload(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {k: _decode_payload(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_payload(v) for v in obj]
    return _decode_float(obj)


def to_envelope(result: DesResult | MonteCarloSummary) -> dict:
    """Wrap a result in the versioned JSON envelope (as a plain dict)."""
    kind = type(result).__name__
    if kind not in _KINDS:
        raise ParameterError(f"cannot serialise {kind}")
    payload = dict(result.__dict__)
    # Tuples must survive: mark which fields need re-tupling on load.
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "kind": kind,
        "payload": _encode_payload(payload),
    }


def from_envelope(envelope: dict) -> DesResult | MonteCarloSummary:
    """Reconstruct a result object; validates format and version."""
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise ParameterError("not a repro-results envelope")
    if envelope.get("version") != _VERSION:
        raise ParameterError(
            f"unsupported results version {envelope.get('version')!r} "
            f"(this library reads version {_VERSION})"
        )
    kind = envelope.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise ParameterError(f"unknown result kind {kind!r}")
    payload = _decode_payload(envelope.get("payload", {}))
    if not isinstance(payload, dict):
        raise ParameterError(
            f"corrupt {kind} payload: expected an object, "
            f"got {type(payload).__name__}"
        )
    try:
        if kind == "DesResult":
            payload["fatal_group"] = tuple(payload.get("fatal_group", ()))
        if kind == "MonteCarloSummary":
            payload["success_ci"] = tuple(payload.get("success_ci", (0.0, 1.0)))
        return cls(**payload)
    except TypeError as exc:
        raise ParameterError(f"corrupt {kind} payload: {exc}") from exc


def dump_result(result: DesResult | MonteCarloSummary) -> str:
    """One result as a compact JSON string."""
    return json.dumps(to_envelope(result), sort_keys=True)


def load_result(text: str) -> DesResult | MonteCarloSummary:
    """Inverse of :func:`dump_result`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid JSON: {exc}") from exc
    return from_envelope(envelope)


def save_results(
    results: Iterable[DesResult | MonteCarloSummary],
    path: str | pathlib.Path,
    *,
    append: bool = False,
) -> int:
    """Write results as JSON Lines; returns the number written."""
    path = pathlib.Path(path)
    mode = "a" if append else "w"
    count = 0
    with path.open(mode, encoding="utf-8") as fh:
        for result in results:
            fh.write(dump_result(result) + "\n")
            count += 1
    return count


def scan_results(
    path: str | pathlib.Path,
) -> Iterator[tuple[DesResult | MonteCarloSummary, int]]:
    """Tolerantly stream the valid prefix of a JSON Lines results file.

    Yields ``(result, end_offset)`` pairs, where ``end_offset`` is the byte
    offset just past the record's newline — i.e. the length the file can be
    truncated to while keeping every record seen so far.  Scanning stops
    (without raising) at the first partial or corrupt line: that is exactly
    the recovery behaviour an interrupted campaign needs
    (:mod:`repro.sim.executor` resumes from the last intact record).

    Contrast :func:`load_results`, which treats any bad line as an error.
    """
    path = pathlib.Path(path)
    offset = 0
    with path.open("rb") as fh:
        for raw in fh:
            end = offset + len(raw)
            if not raw.endswith(b"\n"):
                return  # partial trailing write (interrupted mid-record)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                return
            if line:
                try:
                    result = load_result(line)
                except ParameterError:
                    return
                yield result, end
            offset = end


def load_results(path: str | pathlib.Path) -> Iterator[DesResult | MonteCarloSummary]:
    """Stream results back from a JSON Lines file."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield load_result(line)
            except ParameterError as exc:
                raise ParameterError(f"{path}:{lineno}: {exc}") from exc
