"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs::

    try:
        period.optimal_period(spec, params)
    except repro.errors.InfeasibleModelError:
        ...  # MTBF too small for this protocol

The hierarchy distinguishes *user input* problems (:class:`ParameterError`,
:class:`UnitParseError`) from *model domain* problems
(:class:`InfeasibleModelError`) and *simulation* problems
(:class:`SimulationError`, :class:`FatalFailureError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A model or simulation parameter is invalid (negative time, ...)."""


class UnitParseError(ReproError, ValueError):
    """A human-readable quantity such as ``"7h"`` could not be parsed."""


class InfeasibleModelError(ReproError, ValueError):
    """The first-order model has no feasible operating point.

    Raised, for example, when the platform MTBF ``M`` is smaller than the
    constant part of the expected per-failure lost time, in which case the
    waste saturates at 1 and no checkpointing period can help.
    """


class SimulationError(ReproError, RuntimeError):
    """Internal inconsistency detected while running a simulation."""


class FatalFailureError(SimulationError):
    """An application suffered an unrecoverable (fatal) failure.

    Simulations normally *record* fatal failures in their results instead of
    raising; this exception is used by APIs explicitly asked to run to
    completion (``on_fatal="raise"``).
    """

    def __init__(self, time: float, group: tuple[int, ...], message: str = ""):
        self.time = float(time)
        self.group = tuple(group)
        super().__init__(
            message
            or f"fatal failure at t={self.time:.3f}s in group {self.group}"
        )


class ExperimentError(ReproError, RuntimeError):
    """An experiment definition is inconsistent or its inputs are missing."""


class CampaignCancelled(ReproError, RuntimeError):
    """A campaign execution was cancelled before completion.

    Raised out of :meth:`~repro.sim.executor.CampaignSession.events`
    after :meth:`~repro.sim.executor.CampaignSession.cancel` is called
    from another thread.  Cancellation is cooperative and cell-aligned:
    the producing loop stops *between* cells, so the results file is
    left a valid resumable prefix, never torn mid-cell.
    """
