"""Fleet-scale store layer: segments, layout migration, hot-cell cache.

The contracts under test, in order of importance:

* **Transparency** — compaction changes *where* bytes live, never which
  bytes a lookup serves: warm runs and exports are byte-identical
  before and after ``store compact``, and adversarial interleavings
  (reader/writer racing a compactor in separate OS processes) never
  lose an entry.
* **Retention parity** — ``gc`` ages and pins segment-resident entries
  by exactly the rules loose files follow, including the clock-skew
  clamp, and evicts from a segment by atomic rewrite.
* **Cache honesty** — the in-process hot-cell cache serves re-reads
  without disk I/O but still refuses corruption: a poisoned cached
  entry falls back to the (verified) disk copy, and disk corruption is
  caught on first read because publishes never pre-warm the cache.
* **Layout longevity** — historical flat-layout stores keep working and
  migrate to the sharded fan-out on first touch.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import ParameterError
from repro.sim.campaign import CampaignConfig
from repro.sim.executor import execute_spec, plan_cells
from repro.sim.spec import CampaignSpec, ExecutionPolicy
from repro.store import (
    CampaignStore,
    HotCellCache,
    configure_cache,
    default_cache,
    key_hash,
    replica_key,
)
from repro.store.cache import DEFAULT_CACHE_BYTES, CachedEntry, cache_key
from repro.store.segments import load_segments


def make_spec(*, m_values=(300.0, 600.0), replicas=2, seed=2027,
              policy=None) -> CampaignSpec:
    grid = CampaignConfig(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=m_values,
        phi_values=(1.0,),
        work_target=900.0,
        replicas=replicas,
        seed=seed,
    )
    return CampaignSpec(grid=grid, policy=policy or ExecutionPolicy())


def all_keys(spec: CampaignSpec) -> list[dict]:
    return [
        replica_key(spec.grid, plan, replica)
        for plan in plan_cells(spec.grid)
        for replica in range(spec.grid.replicas)
    ]


def populate(tmp_path, *, seed=2027) -> tuple[CampaignSpec, pathlib.Path]:
    """Run a small campaign into a fresh store; 8 entries."""
    spec = make_spec(seed=seed)
    store_dir = tmp_path / "store"
    execute_spec(spec, results_path=tmp_path / f"cold-{seed}.jsonl",
                 store=store_dir)
    return spec, store_dir


def loose_files(store_dir: pathlib.Path) -> list[pathlib.Path]:
    objects = store_dir / "objects"
    return sorted(objects.glob("*/*.json")) + sorted(objects.glob("*.json"))


def dump(result) -> str:
    from repro import io as repro_io

    return repro_io.dump_result(result)


class TestCompaction:
    def test_compact_packs_everything_and_lookups_survive(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        before = {key_hash(k): dump(store.lookup(k)) for k in all_keys(spec)}

        report = store.compact()
        assert report.packed_entries == 8
        assert report.loose_before == 8
        assert report.segment_id is not None
        assert report.segments_total == 1
        assert report.segment_entries_total == 8
        assert report.loose_remaining == 0
        assert not report.corrupt and not report.deduplicated
        assert loose_files(store_dir) == []
        assert "packed 8 of 8 loose entries" in report.describe()

        # Every lookup now resolves through the segment, byte-for-byte.
        for key in all_keys(spec):
            assert dump(store.lookup(key)) == before[key_hash(key)]
        # ... including from a store object that never saw the compaction.
        fresh = CampaignStore(store_dir, cache=None)
        for key in all_keys(spec):
            assert dump(fresh.lookup(key)) == before[key_hash(key)]

    def test_stat_and_entries_report_layout_breakdown(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        loose_stat = store.stat()
        assert (loose_stat.loose_entries, loose_stat.segment_entries,
                loose_stat.segments) == (8, 0, 0)
        loose_meta = {
            (e.hash, e.protocol, e.M, e.phi, e.n, e.seed, e.work_target,
             e.size)
            for e in store.entries()
        }

        store.compact()
        stat = store.stat()
        assert stat.entries == 8
        assert (stat.loose_entries, stat.segment_entries, stat.segments) \
            == (0, 8, 1)
        assert stat.describe().startswith("8 entries")
        assert "8 in 1 segment(s)" in stat.describe()
        # The queryable metadata is identical, served from the index
        # alone; only the origin changed.
        entries = list(store.entries())
        assert all(e.origin == "segment" for e in entries)
        assert {
            (e.hash, e.protocol, e.M, e.phi, e.n, e.seed, e.work_target,
             e.size)
            for e in entries
        } == loose_meta
        assert len(list(store.query(protocol="double-nbl"))) == 4

    def test_dry_run_changes_nothing(self, tmp_path):
        _, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        report = store.compact(dry_run=True)
        assert report.dry_run and report.packed_entries == 8
        assert report.segment_id is None
        assert "would pack" in report.describe()
        assert len(loose_files(store_dir)) == 8
        assert list(load_segments(store_dir / "segments")) == []

    def test_incremental_compaction_adds_segments(self, tmp_path):
        spec_a, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        # A second campaign publishes 8 new loose entries.
        spec_b, _ = populate(tmp_path, seed=999)
        report = store.compact()
        assert report.packed_entries == 8
        assert report.segments_total == 2
        stat = store.stat()
        assert stat.entries == 16 and stat.segments == 2
        for key in all_keys(spec_a) + all_keys(spec_b):
            assert store.lookup(key) is not None
        # Nothing loose left: a third pass is a no-op.
        report = store.compact()
        assert report.packed_entries == 0 and report.segment_id is None
        assert report.segments_total == 2

    def test_corrupt_loose_entry_is_left_loose_and_reported(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        victim = loose_files(store_dir)[0]
        victim.write_text("garbage\n")
        store = CampaignStore(store_dir, cache=None)
        report = store.compact()
        assert report.packed_entries == 7
        assert len(report.corrupt) == 1 and str(victim) in report.corrupt[0]
        assert "corrupt left loose" in report.describe()
        assert victim.exists()  # quarantined in place, never packed
        verify = store.verify()
        assert not verify.ok and len(verify.errors) == 1

    def test_duplicate_loose_copy_is_removed(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        victim = loose_files(store_dir)[0]
        aside = tmp_path / "aside.json"
        aside.write_bytes(victim.read_bytes())
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        # A compaction/publish race can leave a loose duplicate of a
        # segment-resident entry; the next pass retires it.
        victim.parent.mkdir(parents=True, exist_ok=True)
        victim.write_bytes(aside.read_bytes())
        report = store.compact()
        assert report.deduplicated == 1 and report.packed_entries == 0
        assert not victim.exists()
        assert store.stat().entries == 8


class TestByteIdentity:
    def test_export_identical_before_and_after_compaction(self, tmp_path):
        """The acceptance criterion: compaction must be invisible in
        every emitted byte."""
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.export(spec, tmp_path / "pre.jsonl")
        store.compact()
        store.export(spec, tmp_path / "post.jsonl")
        assert (tmp_path / "pre.jsonl").read_bytes() \
            == (tmp_path / "post.jsonl").read_bytes()
        assert (tmp_path / "pre.jsonl.manifest").read_bytes() \
            == (tmp_path / "post.jsonl.manifest").read_bytes()

    def test_warm_rerun_from_compacted_store_is_byte_identical(
            self, tmp_path):
        spec, store_dir = populate(tmp_path)
        CampaignStore(store_dir, cache=None).compact()
        warm = execute_spec(spec, results_path=tmp_path / "warm.jsonl",
                            store=store_dir)
        assert warm.report.cells_run == 0
        assert warm.report.cells_cached == 4
        assert (tmp_path / "warm.jsonl").read_bytes() \
            == (tmp_path / "cold-2027.jsonl").read_bytes()


class TestBulkReads:
    """Segment-aware footprint staging: few sequential reads, same bytes."""

    def test_read_many_coalesces_into_sequential_spans(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        (segment,) = load_segments(store_dir / "segments")
        rows = list(segment.entries.values())
        reads = []
        real_pread = os.pread

        def counting_pread(fd, length, offset):
            reads.append((offset, length))
            return real_pread(fd, length, offset)

        # Adjacent rows coalesce: the whole segment streams in one read.
        os.pread = counting_pread
        try:
            data = segment.read_many(rows)
        finally:
            os.pread = real_pread
        assert len(reads) == 1
        assert reads[0] == (0, segment.data_bytes)
        # Per-row bytes are exactly what the per-entry path serves.
        assert set(data) == set(segment.entries)
        for row in rows:
            assert data[row.hash] == segment.read(row)
        # gap=-1 forbids coalescing: one read per row, same bytes.
        os.pread = counting_pread
        reads.clear()
        try:
            sparse = segment.read_many(rows, gap=-1)
        finally:
            os.pread = real_pread
        assert len(reads) == len(rows)
        assert sparse == data

    def test_read_many_omits_torn_rows(self, tmp_path):
        from repro.store.segments import SegmentEntry

        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        (segment,) = load_segments(store_dir / "segments")
        good = next(iter(segment.entries.values()))
        torn = SegmentEntry(
            hash="deadbeef", offset=segment.data_bytes, length=64,
            mtime=good.mtime, protocol=good.protocol, M=good.M,
            phi=good.phi, n=good.n, seed=good.seed,
            trace_seed=good.trace_seed, work_target=good.work_target,
        )
        data = segment.read_many([good, torn])
        assert good.hash in data and "deadbeef" not in data
        # A vanished data file (concurrent gc rewrite) is an empty
        # result, not an exception — the caller's re-scan recovers.
        segment.data_path.unlink()
        assert segment.read_many([good]) == {}

    def test_preload_stages_footprint_into_cache(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        CampaignStore(store_dir, cache=None).compact()
        store = CampaignStore(store_dir, cache=HotCellCache())
        keys = all_keys(spec)
        assert store.preload(keys) == len(keys)
        # Staged entries are verified and complete: lookups succeed
        # purely from memory, even with the segment files gone.
        for path in (store_dir / "segments").iterdir():
            path.unlink()
        for key in keys:
            assert store.lookup(key) is not None
        # Re-priming a warm cache stages nothing (peek, not get: the
        # sweep must not inflate the hit counters).
        hits_before = store.cache_stats().hits
        assert store.preload(keys) == 0
        assert store.cache_stats().hits == hits_before

    def test_export_from_segments_is_cache_served_and_identical(
            self, tmp_path):
        spec, store_dir = populate(tmp_path)
        CampaignStore(store_dir, cache=None).export(
            spec, tmp_path / "loose.jsonl"
        )
        CampaignStore(store_dir, cache=None).compact()
        store = CampaignStore(store_dir, cache=HotCellCache())
        report = store.export(spec, tmp_path / "bulk.jsonl")
        assert report.frames == len(all_keys(spec))
        assert (tmp_path / "bulk.jsonl").read_bytes() \
            == (tmp_path / "loose.jsonl").read_bytes()
        stats = store.cache_stats()
        assert stats.entries == len(all_keys(spec))
        assert stats.misses == 0  # every read was staged first


class TestVerifySegments:
    def test_verify_covers_segment_entries(self, tmp_path):
        _, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        report = store.verify()
        assert report.ok and report.checked == 8
        assert "no corruption" in report.describe()
        assert report.stat.segment_entries == 8

    def test_flipped_segment_bytes_are_refused(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        seg = next((store_dir / "segments").glob("*.seg"))
        data = bytearray(seg.read_bytes())
        data[len(data) // 2] ^= 0xFF
        seg.write_bytes(bytes(data))
        report = CampaignStore(store_dir, cache=None).verify()
        assert not report.ok
        assert any(".seg@" in err for err in report.errors)
        # And the poisoned entry is refused at lookup, not served.
        victims = 0
        for key in all_keys(spec):
            try:
                CampaignStore(store_dir, cache=None).lookup(key)
            except ParameterError:
                victims += 1
        assert victims >= 1

    def test_tampered_index_row_is_refused(self, tmp_path):
        _, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        idx = next((store_dir / "segments").glob("*.idx"))
        index = json.loads(idx.read_text())
        index["entries"][0][4] = "not-a-protocol"
        idx.write_text(json.dumps(index) + "\n")
        report = CampaignStore(store_dir, cache=None).verify()
        assert not report.ok
        assert "index row disagrees" in report.errors[0]


class TestFlatLayoutMigration:
    def _flatten(self, store_dir: pathlib.Path) -> None:
        """Rewrite the objects tree into the historical flat layout."""
        objects = store_dir / "objects"
        for path in list(objects.glob("*/*.json")):
            os.replace(path, objects / path.name)
            path.parent.rmdir()

    def test_flat_store_reads_and_migrates_on_touch(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        self._flatten(store_dir)
        store = CampaignStore(store_dir, cache=None)
        # The flat store is fully readable as-is...
        assert store.stat().entries == 8
        key = all_keys(spec)[0]
        assert store.lookup(key) is not None
        # ...and the touched entry migrated into the 2-hex fan-out.
        hash_ = key_hash(key)
        assert not (store_dir / "objects" / f"{hash_}.json").exists()
        assert (store_dir / "objects" / hash_[:2] / f"{hash_}.json").exists()

    def test_flat_to_sharded_to_segment_round_trip(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        before = {
            key_hash(k): dump(CampaignStore(store_dir, cache=None).lookup(k))
            for k in all_keys(spec)
        }
        self._flatten(store_dir)
        store = CampaignStore(store_dir, cache=None)
        report = store.compact()
        assert report.packed_entries == 8
        assert list((store_dir / "objects").glob("*.json")) == []
        for key in all_keys(spec):
            assert dump(store.lookup(key)) == before[key_hash(key)]
        assert store.verify().ok


class TestGcSegments:
    def test_max_age_evicts_segment_entries_by_recorded_mtime(
            self, tmp_path):
        spec, store_dir = populate(tmp_path)
        # Age the first campaign's entries *before* compaction: the
        # segment index inherits these mtimes as its LRU clock.
        old = 1_000_000.0
        for path in loose_files(store_dir):
            os.utime(path, (old, old))
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        spec_b, _ = populate(tmp_path, seed=999)
        store.compact()

        now = os.stat(next(iter(loose_files(tmp_path / "store")), None)
                      or (store_dir / "store.json")).st_mtime
        report = store.gc(max_age=3600.0, now=now)
        assert report.evicted_entries == 8
        assert store.stat().entries == 8
        for key in all_keys(spec):
            assert store.lookup(key) is None
        for key in all_keys(spec_b):
            assert store.lookup(key) is not None
        # The aged-out segment was removed outright, the fresh one kept.
        assert len(list(load_segments(store_dir / "segments"))) == 1
        assert store.verify().ok

    def test_clock_skew_cannot_age_segment_entries(self, tmp_path):
        """The PR 6 clamped-age guarantee, extended to segments: a
        `now` far in the entries' past (skewed clock) clamps every age
        to zero instead of evicting the whole store."""
        _, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        store.compact()
        report = store.gc(max_age=5.0, now=0.0)
        assert report.evicted_entries == 0
        assert store.stat().entries == 8

    def test_pinned_footprint_survives_segment_rewrite(self, tmp_path):
        """gc to a zero budget right after compaction: the pinned
        spec's cells survive inside a rewritten segment, everything
        else goes."""
        spec_a, store_dir = populate(tmp_path)
        spec_b, _ = populate(tmp_path, seed=999)
        store = CampaignStore(store_dir, cache=None)
        store.compact()  # both campaigns land in one segment
        report = store.gc(max_bytes=0, pin_specs=[spec_a])
        assert report.pinned_entries == 8
        assert report.evicted_entries == 8
        for key in all_keys(spec_a):
            assert store.lookup(key) is not None
        for key in all_keys(spec_b):
            assert store.lookup(key) is None
        # Still one segment: the rewrite, holding exactly the pins.
        segments = list(load_segments(store_dir / "segments"))
        assert len(segments) == 1
        assert set(segments[0].entries) \
            == {key_hash(k) for k in all_keys(spec_a)}
        assert store.verify().ok

    def test_gc_mixed_layout_applies_one_lru_order(self, tmp_path):
        """Half the entries compacted, half loose: a byte budget evicts
        oldest-first across both layouts."""
        spec_a, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=None)
        old = 1_000_000.0
        for path in loose_files(store_dir):
            os.utime(path, (old, old))
        store.compact()  # old entries, segment-resident
        spec_b, _ = populate(tmp_path, seed=999)  # fresh, loose
        total = store.stat().total_bytes
        keep = total - sum(p.stat().st_size for p in loose_files(store_dir)) // 2
        report = store.gc(max_bytes=keep)
        assert report.evicted_entries > 0
        # Only the *old* (segment) side lost entries.
        for key in all_keys(spec_b):
            assert store.lookup(key) is not None


class TestHotCellCache:
    def test_cache_bounds_and_lru(self):
        cache = HotCellCache(max_bytes=100)

        def entry(i, size):
            text = "x" * size
            import hashlib

            return CachedEntry(
                key={"i": i}, result=None, payload_text=text,
                payload_sha256=hashlib.sha256(
                    text.encode("utf-8")).hexdigest(),
            )

        cache.put("r", "a", entry(1, 40))
        cache.put("r", "b", entry(2, 40))
        assert cache.get("r", "a") is not None  # a is now most-recent
        cache.put("r", "c", entry(3, 40))  # evicts b, the LRU
        assert cache.get("r", "b") is None
        assert cache.get("r", "a") is not None
        stats = cache.stats()
        assert stats.bytes <= 100 and stats.evictions == 1
        cache.put("r", "d", entry(4, 1000))  # over budget: dropped
        assert cache.get("r", "d") is None

    def test_lookup_populates_cache_and_serves_without_disk(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        cache = HotCellCache()
        store = CampaignStore(store_dir, cache=cache)
        key = all_keys(spec)[0]
        first = dump(store.lookup(key))
        # Remove the bytes from disk entirely: a cached re-read must
        # still serve the verified copy (entries are immutable).
        (store_dir / "objects" / key_hash(key)[:2]
         / f"{key_hash(key)}.json").unlink()
        assert dump(store.lookup(key)) == first
        assert cache.stats().hits == 1

    def test_publish_never_prewarms_the_cache(self, tmp_path):
        """Disk corruption must be caught on *first* read: if publish
        populated the cache, a corrupted file would be silently papered
        over by the in-memory copy."""
        spec, store_dir = populate(tmp_path)  # publishes via executor
        for path in loose_files(store_dir):
            path.write_text("garbage\n")
        store = CampaignStore(store_dir)  # default shared cache
        with pytest.raises(ParameterError):
            store.lookup(all_keys(spec)[0])

    def test_poisoned_cache_entry_falls_back_to_disk(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        cache = HotCellCache()
        store = CampaignStore(store_dir, cache=cache)
        key = all_keys(spec)[0]
        truth = dump(store.lookup(key))
        cache.put(str(store_dir.resolve()), cache_key(key), CachedEntry(
            key=key, result=None, payload_text="tampered",
            payload_sha256="0" * 64, hash=key_hash(key),
        ))
        # Digest re-check fails → invalidate → disk re-read, full check.
        assert dump(store.lookup(key)) == truth
        # The cache healed: next read hits the good entry.
        assert dump(store.lookup(key)) == truth

    def test_surrogate_collision_is_a_miss_not_a_mixup(self, tmp_path):
        """Two keys sharing a cache surrogate must never serve each
        other's results: the full-key comparison turns the collision
        into a plain miss, resolved on the content-addressed path."""
        spec, store_dir = populate(tmp_path)
        cache = HotCellCache()
        store = CampaignStore(store_dir, cache=cache)
        key = all_keys(spec)[0]
        truth = dump(store.lookup(key))
        # Force a colliding occupant: same surrogate, different key.
        other = dict(key, distribution={"kind": "weibull", "shape": 0.7})
        assert cache_key(other) == cache_key(key)
        occupant = cache.get(str(store_dir.resolve()), cache_key(key))
        cache.put(str(store_dir.resolve()), cache_key(other),
                  CachedEntry(key=other, result=occupant.result,
                              payload_text=occupant.payload_text,
                              payload_sha256=occupant.payload_sha256))
        # The poisoned surrogate does not satisfy `key` ...
        assert dump(store.lookup(key)) == truth
        # ... and `other` itself is an honest disk miss, not a cache hit.
        assert store.lookup(other) is None

    def test_full_cached_verification_level(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        store = CampaignStore(store_dir, cache=HotCellCache(),
                              cached_verification="full")
        key = all_keys(spec)[0]
        first = dump(store.lookup(key))
        assert dump(store.lookup(key)) == first

    def test_unknown_verification_level_refused(self, tmp_path):
        _, store_dir = populate(tmp_path)
        with pytest.raises(ParameterError, match="cached_verification"):
            CampaignStore(store_dir, cached_verification="paranoid")

    def test_configure_cache_resizes_shared_instance(self):
        original = default_cache()
        try:
            disabled = configure_cache(0)
            assert default_cache() is disabled
            assert disabled.max_bytes == 0
            with pytest.raises(ParameterError):
                configure_cache(-1)
        finally:
            restored = configure_cache(DEFAULT_CACHE_BYTES)
            assert default_cache() is restored


_READER_WRITER = textwrap.dedent("""\
    import json, pathlib, sys
    from repro.errors import ParameterError
    from repro.sim.results import DesResult
    from repro.store import CampaignStore

    root, keys_path, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
    keys = json.loads(pathlib.Path(keys_path).read_text())
    store = CampaignStore(root, cache=None)
    synthetic = DesResult(
        status="success", makespan=1000.0, work_target=900.0,
        work_done=900.0, failures=1, rollbacks=1, work_lost=10.0,
        commits=9, risk_time=100.0,
    )
    for i in range(rounds):
        for key in keys:
            if store.lookup(key) is None:
                raise SystemExit(f"lost entry during compaction: {key}")
        store.publish({
            "format": "repro-store-entry", "version": 1,
            "protocol": "double-nbl", "phi": 1.0, "work_target": 900.0,
            "max_time": None, "params": {"M": 600.0, "n": 12},
            "distribution": None, "seed": 10_000 + i, "trace_seed": None,
        }, synthetic)
    print("reader-writer-ok")
""")

_COMPACTOR = textwrap.dedent("""\
    import sys, time
    from repro.store import CampaignStore

    root, rounds = sys.argv[1], int(sys.argv[2])
    packed = 0
    for _ in range(rounds):
        packed += CampaignStore(root, cache=None).compact().packed_entries
        time.sleep(0.01)
    print(f"compactor-ok {packed}")
""")


@pytest.mark.campaign
class TestConcurrentCompaction:
    """Two independently started OS processes against one store: a
    reader/writer hammering lookups and publishes while a compactor
    repeatedly packs loose entries out from under it."""

    def _spawn(self, code, *argv):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-c", code, *map(str, argv)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def test_reader_writer_races_compactor_losslessly(self, tmp_path):
        spec, store_dir = populate(tmp_path)
        keys_path = tmp_path / "keys.json"
        keys_path.write_text(json.dumps(all_keys(spec)))
        rounds = 30

        reader = self._spawn(_READER_WRITER, store_dir, keys_path, rounds)
        compactor = self._spawn(_COMPACTOR, store_dir, rounds)
        r_out, r_err = reader.communicate(timeout=120)
        c_out, c_err = compactor.communicate(timeout=120)
        assert reader.returncode == 0, r_err
        assert compactor.returncode == 0, c_err
        assert "reader-writer-ok" in r_out
        assert "compactor-ok" in c_out

        # Whatever the interleaving: nothing lost, nothing corrupt.
        store = CampaignStore(store_dir, cache=None)
        for key in all_keys(spec):
            assert store.lookup(key) is not None
        stat = store.stat()
        assert stat.entries == 8 + rounds  # originals + publishes
        assert store.verify().ok
        # A final pass leaves the store fully compacted and consistent.
        store.compact()
        assert store.stat().loose_entries == 0
        assert store.verify().ok
