"""Protocol specs vs the paper's printed formulas (Eqs. 7, 8, 14)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    PROTOCOLS,
    Parameters,
    get_protocol,
)
from repro.core.protocols import PhaseKind
from repro.errors import ParameterError
from tests.conftest import ALL_PROTOCOLS


@pytest.fixture
def params() -> Parameters:
    return Parameters(D=0, delta=2, R=4, alpha=10, M=25200, n=10368)


@pytest.fixture
def exa() -> Parameters:
    return Parameters(D=60, delta=30, R=60, alpha=10, M=25200, n=10**6)


class TestRegistry:
    def test_all_registered(self):
        assert set(PROTOCOLS) == {
            "double-blocking", "double-nbl", "double-bof", "triple", "triple-bof",
        }

    def test_lookup_by_key_and_instance(self):
        assert get_protocol("triple") is TRIPLE
        assert get_protocol(TRIPLE) is TRIPLE

    def test_unknown_key(self):
        with pytest.raises(ParameterError):
            get_protocol("quadruple")

    def test_group_sizes(self):
        assert DOUBLE_NBL.group_size == 2
        assert DOUBLE_BOF.group_size == 2
        assert DOUBLE_BLOCKING.group_size == 2
        assert TRIPLE.group_size == 3
        assert TRIPLE_BOF.group_size == 3


class TestLostTimeFormulas:
    """F = A + P/2 against Eqs. (7), (8), (14)."""

    def test_eq7_double_nbl(self, params):
        phi, P = 1.0, 300.0
        theta = 4 + 10 * (4 - phi)
        expected = params.D + params.R + theta + P / 2
        got = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, phi, P)))
        assert got == pytest.approx(expected)

    def test_eq8_double_bof(self, params):
        phi, P = 1.0, 300.0
        f_nbl = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, phi, P)))
        f_bof = float(np.asarray(DOUBLE_BOF.expected_lost_time(params, phi, P)))
        assert f_bof == pytest.approx(f_nbl + params.R - phi)

    def test_eq14_triple_equals_nbl(self, params):
        # F_tri = F_nbl = D + R + θ + P/2 (§V-A observation).
        phi, P = 1.0, 300.0
        f_nbl = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, phi, P)))
        f_tri = float(np.asarray(TRIPLE.expected_lost_time(params, phi, P)))
        assert f_tri == pytest.approx(f_nbl)

    def test_blocking_double_pins_phi(self, params):
        # F for the original blocking algorithm: D + 2R + P/2.
        P = 300.0
        got = float(np.asarray(DOUBLE_BLOCKING.expected_lost_time(params, 0.0, P)))
        assert got == pytest.approx(params.D + 2 * params.R + P / 2)


class TestReExpectationConsistency:
    """F = recovery + Σ (l_i/P)·RE_i must reproduce A + P/2 exactly."""

    @pytest.mark.parametrize("spec", ALL_PROTOCOLS, ids=lambda s: s.key)
    @pytest.mark.parametrize("phi", [0.0, 0.5, 2.0, 4.0])
    @pytest.mark.parametrize("P", [120.0, 300.0, 1000.0])
    def test_weighted_re_equals_f(self, spec, phi, P, params):
        lengths = [float(np.asarray(x)) for x in spec.phase_lengths(params, phi, P)]
        if lengths[2] < 0:
            pytest.skip("period below minimum for this phi")
        res = spec.re_expectations(params, phi, P)
        recovery = float(np.asarray(spec.recovery_constant(params, phi)))
        f_weighted = recovery + sum(
            (l / P) * float(np.asarray(re)) for l, re in zip(lengths, res)
        )
        f_formula = float(np.asarray(spec.expected_lost_time(params, phi, P)))
        if spec.blocking_on_failure and spec.group_size == 3 and phi > 0:
            # TRIPLE-BOF's RE clamp at 0 may bite at extreme phi.
            assert f_weighted == pytest.approx(f_formula, rel=0.05)
        else:
            assert f_weighted == pytest.approx(f_formula, rel=1e-12)

    @pytest.mark.parametrize("spec", ALL_PROTOCOLS, ids=lambda s: s.key)
    def test_re_time_expectation_matches_re_expectations(self, spec, params):
        """Uniform-offset average of re_time == RE_i (numerical quadrature)."""
        phi, P = 1.0, 400.0
        lengths = [float(np.asarray(x)) for x in spec.phase_lengths(params, phi, P)]
        res = spec.re_expectations(params, phi, P)
        for phase, (length, re_expected) in enumerate(zip(lengths, res)):
            if length <= 0:
                continue
            offsets = np.linspace(0, length, 20001)[:-1] + length / 40000
            mean_re = float(
                np.mean(np.asarray(spec.re_time(params, phi, P, phase, offsets)))
            )
            assert mean_re == pytest.approx(float(np.asarray(re_expected)), rel=1e-6)

    def test_re_time_rejects_bad_phase(self, params):
        with pytest.raises(ParameterError):
            DOUBLE_NBL.re_time(params, 1.0, 300.0, 3, 0.0)


class TestPhaseStructure:
    def test_double_phases(self, params):
        kinds = DOUBLE_NBL.phase_kinds()
        assert kinds == (
            PhaseKind.LOCAL_CHECKPOINT, PhaseKind.EXCHANGE, PhaseKind.COMPUTE,
        )
        l1, l2, sigma = DOUBLE_NBL.phase_lengths(params, 1.0, 300.0)
        assert float(l1) == pytest.approx(2.0)  # δ
        assert float(l2) == pytest.approx(34.0)  # θ(1) = 4 + 30
        assert float(sigma) == pytest.approx(300.0 - 2.0 - 34.0)

    def test_triple_phases(self, params):
        kinds = TRIPLE.phase_kinds()
        assert kinds == (PhaseKind.EXCHANGE, PhaseKind.EXCHANGE, PhaseKind.COMPUTE)
        l1, l2, sigma = TRIPLE.phase_lengths(params, 1.0, 300.0)
        assert float(l1) == float(l2) == pytest.approx(34.0)
        assert float(sigma) == pytest.approx(300.0 - 68.0)

    def test_work_per_period(self, params):
        # W = P − δ − φ (doubles), P − 2φ (triple).
        assert float(np.asarray(
            DOUBLE_NBL.work_per_period(params, 1.0, 300.0))) == pytest.approx(297.0)
        assert float(np.asarray(
            TRIPLE.work_per_period(params, 1.0, 300.0))) == pytest.approx(298.0)

    def test_min_period(self, params):
        assert float(np.asarray(DOUBLE_NBL.min_period(params, 1.0))) == pytest.approx(36.0)
        assert float(np.asarray(TRIPLE.min_period(params, 1.0))) == pytest.approx(68.0)

    def test_commit_phase(self):
        assert DOUBLE_NBL.commit_phase() == 1
        assert DOUBLE_BOF.commit_phase() == 1
        assert TRIPLE.commit_phase() == 0

    def test_blocking_forces_phi(self, params):
        # DOUBLE-BLOCKING ignores the requested phi.
        assert float(np.asarray(DOUBLE_BLOCKING.effective_phi(params, 0.0))) == 4.0
        assert float(np.asarray(DOUBLE_BLOCKING.theta(params, 0.0))) == 4.0


class TestRiskWindows:
    """§III-C / §V-C risk windows."""

    def test_windows_base(self, params):
        phi = 0.0  # θ = 44
        assert float(np.asarray(DOUBLE_NBL.risk_window(params, phi))) == pytest.approx(48.0)
        assert float(np.asarray(DOUBLE_BOF.risk_window(params, phi))) == pytest.approx(8.0)
        assert float(np.asarray(DOUBLE_BLOCKING.risk_window(params, phi))) == pytest.approx(8.0)
        assert float(np.asarray(TRIPLE.risk_window(params, phi))) == pytest.approx(92.0)
        assert float(np.asarray(TRIPLE_BOF.risk_window(params, phi))) == pytest.approx(12.0)

    def test_windows_exa(self, exa):
        phi = 0.0  # θ = 660
        assert float(np.asarray(DOUBLE_NBL.risk_window(exa, phi))) == pytest.approx(780.0)
        assert float(np.asarray(DOUBLE_BOF.risk_window(exa, phi))) == pytest.approx(180.0)
        assert float(np.asarray(TRIPLE.risk_window(exa, phi))) == pytest.approx(1440.0)
        assert float(np.asarray(TRIPLE_BOF.risk_window(exa, phi))) == pytest.approx(240.0)

    @given(phi=st.floats(min_value=0.0, max_value=4.0))
    def test_bof_window_never_longer(self, phi):
        params = Parameters(D=0, delta=2, R=4, alpha=10, M=25200, n=10368)
        w_nbl = float(np.asarray(DOUBLE_NBL.risk_window(params, phi)))
        w_bof = float(np.asarray(DOUBLE_BOF.risk_window(params, phi)))
        assert w_bof <= w_nbl + 1e-12


class TestMemoryClaim:
    def test_all_protocols_hold_two_images(self, any_protocol):
        # §IV: TRIPLE is "equally memory-demanding".
        assert any_protocol.checkpoint_images_held() == 2

    def test_phi_validation(self, params, any_protocol):
        with pytest.raises(ParameterError):
            any_protocol.effective_phi(params, -1.0)
        with pytest.raises(ParameterError):
            any_protocol.effective_phi(params, 5.0)
