"""Optimal periods against the paper's closed forms (Eqs. 9, 10, 15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    feasible,
    optimal_period,
    scenarios,
)
from repro.core.period import optimal_period_unclamped


@pytest.fixture
def base_7h():
    return scenarios.BASE.parameters(M="7h")


class TestClosedForms:
    @pytest.mark.parametrize("phi", [0.5, 1.0, 2.0, 3.5])
    def test_eq9_double_nbl(self, base_7h, phi):
        theta = 4 + 10 * (4 - phi)
        expected = np.sqrt(2 * (2 + phi) * (25200 - 4 - 0 - theta))
        assert optimal_period_unclamped(
            DOUBLE_NBL, base_7h, phi
        ) == pytest.approx(expected)

    @pytest.mark.parametrize("phi", [0.5, 1.0, 2.0, 3.5])
    def test_eq10_double_bof(self, base_7h, phi):
        theta = 4 + 10 * (4 - phi)
        expected = np.sqrt(2 * (2 + phi) * (25200 - 2 * 4 - 0 - theta + phi))
        assert optimal_period_unclamped(
            DOUBLE_BOF, base_7h, phi
        ) == pytest.approx(expected)

    @pytest.mark.parametrize("phi", [0.5, 1.0, 2.0, 3.5])
    def test_eq15_triple(self, base_7h, phi):
        theta = 4 + 10 * (4 - phi)
        expected = 2 * np.sqrt(phi * (25200 - 0 - 4 - theta))
        assert optimal_period_unclamped(TRIPLE, base_7h, phi) == pytest.approx(expected)

    def test_buddy_period_much_larger_than_daly_with_global_c(self, base_7h):
        # §III-B: with per-node δ, buddy periods dwarf centralised ones
        # computed with a global checkpoint cost (here 100x δ).
        from repro.core.comparators import daly_period

        p_buddy = optimal_period(DOUBLE_NBL, base_7h, 1.0)
        p_central_like = daly_period(C=200.0, M=base_7h.M / 100)
        assert p_buddy > 0
        assert p_central_like > 0


class TestClamping:
    def test_triple_phi0_clamps_to_2theta(self, base_7h):
        assert optimal_period(TRIPLE, base_7h, 0.0) == pytest.approx(88.0)

    def test_clamp_only_when_needed(self, base_7h):
        p_un = optimal_period_unclamped(DOUBLE_NBL, base_7h, 1.0)
        p_cl = optimal_period(DOUBLE_NBL, base_7h, 1.0)
        assert p_cl == pytest.approx(p_un)  # interior optimum feasible here

    def test_infeasible_nan(self):
        params = scenarios.BASE.parameters(M=15)
        assert np.isnan(optimal_period(DOUBLE_NBL, params, 0.0))

    def test_vectorised_over_m(self, base_7h):
        ms = np.array([15.0, 600.0, 25200.0])
        out = optimal_period(DOUBLE_NBL, base_7h, 1.0, M=ms)
        assert np.isnan(out[0]) and np.all(np.isfinite(out[1:]))
        assert out[1] < out[2]  # larger MTBF, larger period


class TestFeasible:
    def test_scalar(self, base_7h):
        assert feasible(DOUBLE_NBL, base_7h, 1.0) is True

    def test_saturated(self):
        params = scenarios.BASE.parameters(M=15)
        assert feasible(DOUBLE_NBL, params, 0.0) in (False, np.False_)

    def test_blocking_needs_bigger_m(self):
        # DOUBLE-BLOCKING pins phi=R: A = D+2R = 8 on Base.
        params = scenarios.BASE.parameters(M=9)
        assert not feasible(DOUBLE_BLOCKING, params, 0.0)
        params = scenarios.BASE.parameters(M=120)
        assert feasible(DOUBLE_BLOCKING, params, 0.0)

    def test_exa_one_failure_per_minute_saturates(self):
        # §VI-B: at exascale, waste is crippling when M is a minute.
        params = scenarios.EXA.parameters(M=60)
        assert not feasible(DOUBLE_NBL, params, 0.0)
