"""DES runner: configuration handling and statistical agreement with the model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.core.waste import waste_at_optimum
from repro.errors import InfeasibleModelError, ParameterError
from repro.sim.des import DesConfig, run_des, run_des_batch, summarize_waste
from repro.sim.distributions import Weibull
from repro.sim.protocols.coordinated import CoordinatedSimProtocol
from repro.sim.topology import contiguous_groups


@pytest.fixture
def quiet_params():
    """Safe regime: failures present but fatal ones very unlikely."""
    return scenarios.BASE.parameters(M=1200.0, n=32)


class TestConfig:
    def test_rejects_bad_work(self, quiet_params):
        with pytest.raises(ParameterError):
            DesConfig(protocol=DOUBLE_NBL, params=quiet_params, work_target=0.0)

    def test_rejects_bad_grouping(self, quiet_params):
        with pytest.raises(ParameterError):
            DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                      work_target=10.0, grouping="fancy")

    def test_infeasible_period_raises(self):
        params = scenarios.BASE.parameters(M=15.0, n=32)
        cfg = DesConfig(protocol=DOUBLE_NBL, params=params, work_target=100.0,
                        phi=0.0)
        with pytest.raises(InfeasibleModelError):
            run_des(cfg)

    def test_n_not_divisible_by_group(self):
        params = scenarios.BASE.parameters(M=1200.0, n=32)
        cfg = DesConfig(protocol=TRIPLE, params=params, work_target=100.0,
                        phi=1.0)
        with pytest.raises(ParameterError):
            run_des(cfg)

    def test_explicit_period_below_min_rejected(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=100.0, phi=1.0, period=10.0)
        with pytest.raises(ParameterError):
            run_des(cfg)

    def test_group_assignment_mismatch(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=100.0, phi=1.0,
                        grouping=contiguous_groups(16, 2))
        with pytest.raises(ParameterError):
            run_des(cfg)


class TestRuns:
    def test_reproducible(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=3600.0, phi=1.0, seed=3)
        a, b = run_des(cfg), run_des(cfg)
        assert a.makespan == b.makespan
        assert a.failures == b.failures

    def test_seed_changes_outcome(self, quiet_params):
        cfg1 = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                         work_target=3600.0, phi=1.0, seed=3)
        cfg2 = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                         work_target=3600.0, phi=1.0, seed=4)
        assert run_des(cfg1).makespan != run_des(cfg2).makespan

    def test_result_fields(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=1800.0, phi=1.0, seed=5)
        r = run_des(cfg)
        assert r.status == "completed"
        assert r.work_done == pytest.approx(1800.0)
        assert r.makespan >= 1800.0
        assert 0.0 <= r.waste < 1.0
        assert r.meta["protocol"] == "double-nbl"

    def test_custom_sim_protocol(self, quiet_params):
        proto = CoordinatedSimProtocol(10.0, 0.0, 5.0, 200.0)
        cfg = DesConfig(protocol=proto, params=quiet_params,
                        work_target=1800.0, seed=5)
        r = run_des(cfg)
        assert r.status == "completed"
        assert r.meta["protocol"] == "coordinated"

    def test_weibull_distribution(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=1800.0, phi=1.0, seed=5,
                        distribution=Weibull(1.0, shape=0.7))
        r = run_des(cfg)
        assert r.status in ("completed", "fatal")

    @pytest.mark.parametrize("grouping", ["contiguous", "strided", "random"])
    def test_grouping_strategies(self, quiet_params, grouping):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=900.0, phi=1.0, seed=5, grouping=grouping)
        assert run_des(cfg).status == "completed"

    def test_batch_distinct_seeds(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=900.0, phi=1.0, seed=5)
        results = run_des_batch(cfg, replicas=4)
        assert len({r.makespan for r in results}) > 1

    def test_batch_validation(self, quiet_params):
        cfg = DesConfig(protocol=DOUBLE_NBL, params=quiet_params,
                        work_target=900.0, phi=1.0)
        with pytest.raises(ParameterError):
            run_des_batch(cfg, replicas=0)


class TestModelAgreement:
    """DES measured waste brackets the analytical waste (statistical)."""

    @pytest.mark.parametrize("spec", [DOUBLE_NBL, TRIPLE], ids=lambda s: s.key)
    def test_waste_matches_model(self, spec):
        n = 36  # divisible by 2 and 3
        params = scenarios.BASE.parameters(M=900.0, n=n)
        cfg = DesConfig(protocol=spec, params=params, work_target=6 * 3600.0,
                        phi=1.0, seed=11)
        results = [r for r in run_des_batch(cfg, replicas=10) if r.succeeded]
        assert len(results) >= 8  # fatal failures rare in this regime
        summary = summarize_waste(results)
        model = float(np.asarray(waste_at_optimum(spec, params, 1.0).total))
        # CI + slack for finite-horizon bias.
        slack = 0.25 * model
        assert summary.ci_low - slack <= model <= summary.ci_high + slack

    def test_high_risk_regime_produces_fatals(self):
        params = scenarios.BASE.parameters(M=40.0, n=16)
        cfg = DesConfig(protocol=DOUBLE_NBL, params=params,
                        work_target=40 * 3600.0, phi=2.0, seed=1)
        results = run_des_batch(cfg, replicas=6)
        assert any(r.status == "fatal" for r in results)
        fatal = next(r for r in results if r.status == "fatal")
        assert len(fatal.fatal_group) == 2
        assert np.isfinite(fatal.fatal_time)
