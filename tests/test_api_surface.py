"""Remaining API-surface coverage: vectorised paths, alt methods, exports."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import DOUBLE_BLOCKING, DOUBLE_NBL, TRIPLE_BOF, scenarios
from repro.analysis.sweep import risk_surface
from repro.core.waste import execution_time
from repro.sim.des import DesConfig, run_des
from repro.sim.riskmc import RiskMcConfig, run_risk_mc

DAY = 86400.0


class TestVectorisedPaths:
    def test_execution_time_array(self):
        params = scenarios.BASE.parameters(M="7h")
        phis = np.linspace(0, 4, 5)
        out = execution_time(DOUBLE_NBL, params, phis, t_base=1e5)
        assert np.asarray(out).shape == (5,)
        assert np.all(np.asarray(out) > 1e5)

    def test_execution_time_m_sweep(self):
        params = scenarios.BASE.parameters(M="7h")
        out = execution_time(DOUBLE_NBL, params, 1.0, t_base=1e5,
                             M=np.array([60.0, 25200.0]))
        assert out[0] > out[1]  # harsher platform runs longer

    def test_risk_surface_exponential_method(self):
        paper = risk_surface(DOUBLE_NBL, "base", num_m=4, num_t=4)
        expo = risk_surface(DOUBLE_NBL, "base", num_m=4, num_t=4,
                            method="exponential")
        np.testing.assert_allclose(paper.success, expo.success, atol=5e-3)
        assert expo.meta["method"] == "exponential"

    def test_success_probability_phi_and_t_broadcast(self):
        params = scenarios.BASE.parameters(M=60.0)
        phis = np.linspace(0, 4, 3)[:, None]
        ts = np.array([1.0, 10.0])[None, :] * DAY
        out = repro.success_probability(DOUBLE_NBL, params, phis, ts)
        assert np.asarray(out).shape == (3, 2)


class TestAlternateProtocols:
    def test_riskmc_blocking_double(self):
        params = scenarios.BASE.parameters(M=60.0)
        mc = run_risk_mc(RiskMcConfig(protocol=DOUBLE_BLOCKING, params=params,
                                      T=5 * DAY, replicas=40_000, seed=4))
        model = repro.success_probability(DOUBLE_BLOCKING, params, 0.0, 5 * DAY)
        assert mc.success_ci[0] - 0.05 <= model <= mc.success_ci[1] + 0.05

    def test_riskmc_triple_bof(self):
        params = scenarios.BASE.parameters(M=60.0)
        mc = run_risk_mc(RiskMcConfig(protocol=TRIPLE_BOF, params=params,
                                      T=5 * DAY, replicas=40_000, seed=4))
        assert mc.risk_window == pytest.approx(12.0)
        assert mc.success_probability > 0.999

    def test_des_triple_bof_runs(self):
        params = scenarios.BASE.parameters(M=900.0, n=12)
        r = run_des(DesConfig(protocol=TRIPLE_BOF, params=params, phi=1.0,
                              work_target=1800.0, seed=6))
        assert r.status == "completed"

    def test_des_timeout_status(self):
        params = scenarios.BASE.parameters(M=900.0, n=4)
        r = run_des(DesConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                              work_target=1e9, seed=6, max_time=2000.0))
        assert r.status == "timeout"
        assert np.isnan(r.waste)


class TestExports:
    def test_top_level_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_extension_exports(self):
        from repro.core import (
            KBuddyModel,
            optimal_period_renewal,
            recommend_k,
            waste_gap,
            waste_renewal,
            waste_renewal_at_optimum,
        )

        assert KBuddyModel(3).k == 3
        assert callable(waste_renewal) and callable(waste_gap)
        assert callable(optimal_period_renewal)
        assert callable(waste_renewal_at_optimum)
        assert callable(recommend_k)

    def test_analysis_exports(self):
        from repro.analysis import (
            candidate_points,
            cheapest_safe,
            pareto_front,
            safest_within,
        )

        assert all(callable(f) for f in
                   (candidate_points, cheapest_safe, pareto_front,
                    safest_within))

    def test_lazy_experiment_modules(self):
        import repro.experiments as exp

        assert exp.table1.generate().rows
        with pytest.raises(AttributeError):
            exp.nonexistent_module


class TestUnitsEdges:
    def test_format_size_zero(self):
        assert repro.units.format_size(0) == "0B"

    def test_format_rate_small(self):
        assert repro.units.format_rate(10.0) == "10B/s"

    def test_parse_time_scientific(self):
        assert repro.units.parse_time("2.5e2") == 250.0

    def test_format_size_rejects_negative(self):
        from repro.errors import UnitParseError

        with pytest.raises(UnitParseError):
            repro.units.format_size(-1)
