"""Skew-tolerant timestamp arithmetic and its two consumers.

The bug class under test: lease expiry (work-stealing queue) and store
``gc --max-age`` used to compute ages as ``time.time() − st_mtime``.
On a shared filesystem the mtime is stamped by the *server* clock while
``time.time()`` is the *client's* — a client running ahead inflates
every age, steals live leases, and evicts just-published store entries.
The fix (:mod:`repro.fsclock`) samples *now* from the judged
directory's own filesystem clock and clamps negative ages at zero.

The regression tests below simulate the dangerous direction — client
wall clock a million seconds ahead of the filesystem — by patching
``time.time`` while the files keep their honest mtimes, and prove both
consumers now ignore the wall clock entirely.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.fsclock import clamped_age, filesystem_now
from repro.sim.campaign import CampaignConfig
from repro.sim.adaptive import FixedReplicas
from repro.sim.distributed import DistributedBackend, ensure_queue
from repro.sim.executor import _campaign_fingerprint, execute_spec
from repro.sim.spec import CampaignSpec, ExecutionPolicy
from repro.store import CampaignStore

SKEW = 1_000_000.0  # client clock a million seconds ahead of the files


@pytest.fixture
def skewed_wall_clock(monkeypatch):
    """Make every ``time.time()`` read run far ahead of file mtimes."""
    real = time.time
    monkeypatch.setattr(time, "time", lambda: real() + SKEW)


def make_spec(**overrides) -> CampaignSpec:
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0,),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=2,
        seed=2027,
    )
    fields.update(overrides)
    return CampaignSpec(grid=CampaignConfig(**fields),
                        policy=ExecutionPolicy())


class TestFsClock:
    def test_probe_shares_the_directory_clock(self, tmp_path):
        """filesystem_now agrees with the mtime a plain write gets —
        they are the same clock, which is the whole point."""
        (tmp_path / "witness").write_text("x")
        now = filesystem_now(tmp_path)
        assert abs(now - (tmp_path / "witness").stat().st_mtime) < 5.0

    def test_probe_file_is_cleaned_up(self, tmp_path):
        filesystem_now(tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_missing_directory_falls_back_to_wall_clock(self, tmp_path):
        before = time.time()
        now = filesystem_now(tmp_path / "does-not-exist")
        assert before <= now <= time.time()

    def test_fallback_follows_a_skewed_wall_clock(
        self, tmp_path, skewed_wall_clock
    ):
        """Only the *fallback* sees wall-clock skew (nothing better is
        available there); a writable directory never does."""
        skewed_now = time.time()  # patched, so ~real + SKEW
        assert abs(filesystem_now(tmp_path / "nope") - skewed_now) < 5.0
        assert filesystem_now(tmp_path) < skewed_now - SKEW / 2

    def test_clamped_age(self):
        assert clamped_age(100.0, 40.0) == 60.0
        assert clamped_age(40.0, 100.0) == 0.0  # future mtime: brand new
        assert clamped_age(40.0, 40.0) == 0.0


class TestLeaseSkewRegression:
    """A worker whose wall clock runs ahead must not steal live leases."""

    def make_queue(self, tmp_path):
        spec = make_spec()
        queue = tmp_path / "queue"
        ensure_queue(
            queue,
            _campaign_fingerprint(spec.config(), "framed", FixedReplicas(2)),
            n_chunks=2, chunk_size=1, n_cells=2,
        )
        return queue

    def test_fresh_lease_survives_a_skewed_thief(
        self, tmp_path, skewed_wall_clock
    ):
        queue = self.make_queue(tmp_path)
        owner = DistributedBackend(queue, "owner", lease_timeout=60.0)
        assert owner._try_claim_pending() is not None
        assert owner._try_claim_pending() is not None
        # Pre-fix, the thief computed age = time.time() − mtime ≈ SKEW
        # and stole both live leases here.
        thief = DistributedBackend(queue, "thief", lease_timeout=60.0)
        assert thief._try_steal_expired() is None

    def test_genuinely_expired_lease_is_still_stolen(
        self, tmp_path, skewed_wall_clock
    ):
        """Skew tolerance must not break real crash recovery: a lease
        whose *filesystem* age exceeds the timeout is reclaimed even
        while the wall clock is useless."""
        queue = self.make_queue(tmp_path)
        owner = DistributedBackend(queue, "owner", lease_timeout=5.0)
        chunk, claim = owner._try_claim_pending()
        past = claim.stat().st_mtime - 100.0
        os.utime(claim, (past, past))  # owner died 100 fs-seconds ago
        thief = DistributedBackend(queue, "thief", lease_timeout=5.0)
        stolen = thief._try_steal_expired()
        assert stolen is not None
        assert stolen[0] == chunk
        assert "thief" in stolen[1].name

    def test_future_stamped_lease_reads_as_fresh(self, tmp_path):
        """A claim stamped *ahead* of the filesystem clock (writer on a
        fast machine) clamps to age zero instead of wrapping."""
        queue = self.make_queue(tmp_path)
        owner = DistributedBackend(queue, "owner", lease_timeout=5.0)
        _, claim = owner._try_claim_pending()
        future = claim.stat().st_mtime + SKEW
        os.utime(claim, (future, future))
        thief = DistributedBackend(queue, "thief", lease_timeout=5.0)
        assert thief._try_steal_expired() is None


class TestStoreGcSkewRegression:
    """``gc --max-age`` must judge entry idleness by the store's own
    filesystem clock, not the evicting client's wall clock."""

    def make_store(self, tmp_path) -> CampaignStore:
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "out.jsonl",
                     store=store_dir)
        return CampaignStore(store_dir)

    def test_fresh_entries_survive_a_skewed_client(
        self, tmp_path, skewed_wall_clock
    ):
        store = self.make_store(tmp_path)
        entries = store.stat().entries
        assert entries > 0
        # Pre-fix: now = time.time() ran SKEW ahead, every just-written
        # entry looked a million seconds idle, and this evicted it all.
        report = store.gc(max_age=3600.0)
        assert report.evicted_entries == 0
        assert store.stat().entries == entries

    def test_genuinely_idle_entries_are_still_evicted(
        self, tmp_path, skewed_wall_clock
    ):
        store = self.make_store(tmp_path)
        entries = store.stat().entries
        for path in (tmp_path / "store" / "objects").glob("*/*.json"):
            os.utime(path, (1.0, 1.0))  # idle since the epoch, fs-time
        report = store.gc(max_age=3600.0)
        assert report.evicted_entries == entries
        assert store.stat().entries == 0

    def test_explicit_now_hook_bypasses_the_probe(self, tmp_path):
        """Callers that pass ``now=`` (tests, offline audits) keep full
        control of the clock."""
        store = self.make_store(tmp_path)
        entries = store.stat().entries
        mtimes = [p.stat().st_mtime for p in
                  (tmp_path / "store" / "objects").glob("*/*.json")]
        report = store.gc(max_age=3600.0, now=max(mtimes) + 7200.0)
        assert report.evicted_entries == entries
