"""Result containers: waste computation, Wilson/t intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.results import DesResult, MonteCarloSummary, wilson_interval


def make_result(**kw) -> DesResult:
    defaults = dict(
        status="completed", makespan=1100.0, work_target=1000.0,
        work_done=1000.0, failures=3, rollbacks=3, work_lost=42.0,
        commits=10, risk_time=12.0,
    )
    defaults.update(kw)
    return DesResult(**defaults)


class TestDesResult:
    def test_waste(self):
        assert make_result().waste == pytest.approx(1 - 1000.0 / 1100.0)

    def test_waste_nan_when_not_completed(self):
        assert np.isnan(make_result(status="fatal").waste)
        assert np.isnan(make_result(status="timeout").waste)

    def test_succeeded(self):
        assert make_result().succeeded
        assert not make_result(status="fatal").succeeded


class TestWilson:
    def test_symmetric_midpoint(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert lo == pytest.approx(1 - hi, abs=1e-9)

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.1

    def test_all_successes(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert 0.9 < lo < 1.0

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            wilson_interval(1, 0)
        with pytest.raises(ParameterError):
            wilson_interval(5, 3)


class TestSummary:
    def test_from_samples(self):
        s = MonteCarloSummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.ci_low < 2.5 < s.ci_high
        assert s.success_rate == 1.0

    def test_ci_contains_true_mean_mostly(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            samples = rng.normal(10.0, 2.0, size=30)
            s = MonteCarloSummary.from_samples(samples)
            hits += s.contains(10.0)
        assert hits >= 85  # 95% CI

    def test_nans_count_as_failures(self):
        s = MonteCarloSummary.from_samples([1.0, float("nan"), 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.success_rate == pytest.approx(2 / 3)

    def test_explicit_successes(self):
        s = MonteCarloSummary.from_samples([1.0, 2.0], successes=1)
        assert s.success_rate == 0.5

    def test_single_sample(self):
        s = MonteCarloSummary.from_samples([5.0])
        assert s.mean == 5.0
        assert s.ci_low == s.ci_high == 5.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            MonteCarloSummary.from_samples([])
        with pytest.raises(ParameterError):
            MonteCarloSummary.from_samples([1.0], confidence=2.0)
