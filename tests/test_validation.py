"""The validation experiment (E7): model-vs-simulation checks pass."""

from __future__ import annotations

import pytest

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import ParameterError
from repro.experiments.validation import (
    ValidationCheck,
    validate_all,
    validate_protocol,
)


class TestValidationChecks:
    @pytest.mark.parametrize("spec", [DOUBLE_NBL, DOUBLE_BOF, TRIPLE],
                             ids=lambda s: s.key)
    def test_renewal_checks_pass(self, spec):
        params = scenarios.BASE.parameters(M=600.0)
        checks = validate_protocol(spec, params, phi=1.0,
                                   renewal_replicas=8, renewal_periods=30_000,
                                   seed=77)
        assert len(checks) == 2
        for check in checks:
            assert check.passed, check

    def test_risk_check_passes(self):
        params = scenarios.BASE.parameters(M=60.0)
        checks = validate_protocol(
            DOUBLE_NBL, params, phi=0.0,
            renewal_replicas=2, renewal_periods=5_000,
            risk_T=5 * 86400.0, risk_replicas=120_000, seed=78,
        )
        risk_checks = [c for c in checks if "success" in c.name]
        assert len(risk_checks) == 1
        assert risk_checks[0].passed, risk_checks[0]

    def test_des_check_runs(self):
        params = scenarios.BASE.parameters(M=900.0, n=24)
        checks = validate_protocol(
            DOUBLE_NBL, params, phi=1.0,
            renewal_replicas=2, renewal_periods=5_000,
            des_replicas=4, des_work=2 * 3600.0, seed=79,
        )
        des_checks = [c for c in checks if "DES" in c.name]
        assert len(des_checks) == 1
        assert des_checks[0].passed, des_checks[0]

    def test_infeasible_raises(self):
        params = scenarios.BASE.parameters(M=15.0)
        with pytest.raises(ParameterError):
            validate_protocol(DOUBLE_NBL, params, phi=0.0)

    def test_report_rendering(self):
        params = scenarios.BASE.parameters(M=600.0)
        report = validate_all(params, 1.0, protocols=(DOUBLE_NBL,),
                              renewal_replicas=3, renewal_periods=5_000)
        assert report.all_passed
        text = report.render()
        assert "PASS" in text and "double-nbl" in text

    def test_check_verdict_logic(self):
        good = ValidationCheck("x", "p", model_value=1.0, estimate=1.01,
                               ci_low=0.99, ci_high=1.03, tolerance=0.0)
        assert good.passed
        bad = ValidationCheck("x", "p", model_value=2.0, estimate=1.0,
                              ci_low=0.9, ci_high=1.1, tolerance=0.01)
        assert not bad.passed
        # Tolerance slack rescues a near miss.
        near = ValidationCheck("x", "p", model_value=1.2, estimate=1.0,
                               ci_low=0.9, ci_high=1.1, tolerance=0.1)
        assert near.passed
