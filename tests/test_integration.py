"""End-to-end integration: the three layers agree on one configuration.

Story: pick a platform, derive its parameters from hardware models, compute
the model's prediction, and confirm both simulators against it — the full
pipeline a user of the library would run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    Parameters,
    optimal_period,
    success_probability,
)
from repro.core.waste import waste, waste_at_optimum
from repro.sim.des import DesConfig, run_des_batch, summarize_waste
from repro.sim.network import Link, blocking_transfer_time
from repro.sim.renewal import RenewalConfig, run_renewal_batch
from repro.sim.riskmc import RiskMcConfig, run_risk_mc
from repro.sim.storage import SSD_2013, local_checkpoint_time

MB = 10**6
DAY = 86400.0


@pytest.fixture(scope="module")
def derived_params() -> Parameters:
    """Parameters derived from hardware characteristics, not Table I."""
    ckpt = 512 * MB
    delta = local_checkpoint_time(ckpt, SSD_2013)
    R = blocking_transfer_time(ckpt, Link(bandwidth=128 * MB))
    return Parameters(D=0.0, delta=delta, R=R, alpha=10.0, M=600.0, n=48)


def test_hardware_derivation_matches_table1(derived_params):
    assert derived_params.delta == pytest.approx(2.0)
    assert derived_params.R == pytest.approx(4.0)


def test_model_renewal_des_three_way_agreement(derived_params):
    """Model waste ≈ renewal waste ≈ DES waste on one configuration."""
    phi = 1.0
    spec = DOUBLE_NBL
    period = optimal_period(spec, derived_params, phi)
    w_model = float(waste(spec, derived_params, phi, period))

    _, renewal_summary = run_renewal_batch(
        RenewalConfig(protocol=spec, params=derived_params, phi=phi,
                      period=float(period), n_periods=60_000, seed=101),
        replicas=6,
    )
    # Renewal carries a documented O((F/M)^2) bias: assert closeness.
    assert renewal_summary.mean == pytest.approx(w_model, rel=0.10)

    des_results = [
        r for r in run_des_batch(
            DesConfig(protocol=spec, params=derived_params, phi=phi,
                      work_target=8 * 3600.0, seed=202),
            replicas=8,
        )
        if r.succeeded
    ]
    assert len(des_results) >= 6
    des_summary = summarize_waste(des_results)
    assert des_summary.mean == pytest.approx(w_model, rel=0.25)


def test_protocol_ranking_is_consistent_across_layers(derived_params):
    """TRIPLE < NBL ≤ BOF on waste at low φ — in the model and the DES."""
    phi = 0.4
    model = {
        spec.key: float(np.asarray(waste_at_optimum(spec, derived_params, phi).total))
        for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE)
    }
    assert model["triple"] < model["double-nbl"] <= model["double-bof"]

    measured = {}
    for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE):
        results = [
            r for r in run_des_batch(
                DesConfig(protocol=spec, params=derived_params, phi=phi,
                          work_target=8 * 3600.0, seed=303),
                replicas=8,
            )
            if r.succeeded
        ]
        measured[spec.key] = summarize_waste(results).mean
    assert measured["triple"] < measured["double-nbl"]


def test_risk_story_end_to_end():
    """High-failure regime: formula and MC agree that TRIPLE is far safer."""
    params = Parameters(D=0.0, delta=2.0, R=4.0, alpha=10.0, M=60.0, n=10368)
    T = 10 * DAY
    p_model_nbl = success_probability(DOUBLE_NBL, params, 0.0, T)
    p_model_tri = success_probability(TRIPLE, params, 0.0, T)
    mc_nbl = run_risk_mc(RiskMcConfig(protocol=DOUBLE_NBL, params=params, T=T,
                                      phi=0.0, replicas=300_000, seed=7))
    mc_tri = run_risk_mc(RiskMcConfig(protocol=TRIPLE, params=params, T=T,
                                      phi=0.0, replicas=300_000, seed=7))
    # Order preserved and magnitudes in the right ballpark.
    assert p_model_tri > 0.99 and mc_tri.success_probability > 0.99
    assert p_model_nbl < 0.5 and mc_nbl.success_probability < 0.6
    assert mc_tri.success_probability > mc_nbl.success_probability


def test_cli_pipeline(tmp_path, capsys):
    """The packaged CLI regenerates an artefact and writes its CSV."""
    from repro.cli import main

    assert main(["fig8", "--csv", str(tmp_path)]) == 0
    csv = (tmp_path / "fig8.csv").read_text()
    header = csv.splitlines()[0].split(",")
    assert header == ["phi_over_R", "DoubleBoF/DoubleNBL", "Triple/DoubleNBL"]
