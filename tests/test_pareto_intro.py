"""Bi-criteria Pareto selection and the §I motivation numbers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.analysis.pareto import (
    OperatingPoint,
    candidate_points,
    cheapest_safe,
    pareto_front,
    safest_within,
)
from repro.errors import ParameterError
from repro.experiments import intro

DAY = 86400.0


@pytest.fixture(scope="module")
def points():
    # Moderate regime: waste a few %, fatal probabilities spread out.
    params = scenarios.BASE.parameters(M=600.0)
    return candidate_points(params, T=30 * DAY, num_phi=17)


class TestCandidates:
    def test_all_feasible_fractions(self, points):
        assert points
        for p in points:
            assert 0.0 <= p.waste < 1.0
            assert 0.0 <= p.fatal_probability <= 1.0
            assert np.isfinite(p.period)

    def test_every_protocol_represented(self, points):
        assert {p.protocol for p in points} == {
            "double-blocking", "double-nbl", "double-bof", "triple",
            "triple-bof",
        }

    def test_infeasible_platform_yields_nothing(self):
        params = scenarios.BASE.parameters(M=3.0)
        assert candidate_points(params, T=DAY, num_phi=5) == []

    def test_validation(self):
        params = scenarios.BASE.parameters(M=120.0)
        with pytest.raises(ParameterError):
            candidate_points(params, T=0.0)
        with pytest.raises(ParameterError):
            candidate_points(params, T=1.0, num_phi=1)


class TestPareto:
    def test_front_is_nondominated(self, points):
        front = pareto_front(points)
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in points)

    def test_front_sorted_and_tradeoff_shaped(self, points):
        front = pareto_front(points)
        wastes = [p.waste for p in front]
        fatals = [p.fatal_probability for p in front]
        assert wastes == sorted(wastes)
        # Along a Pareto front, lower waste must mean higher risk.
        assert fatals == sorted(fatals, reverse=True)

    def test_triple_variants_dominate_front(self, points):
        """The paper's conclusion, bi-criteria form: the efficient set is
        (almost) exclusively triple protocols in the favourable regime."""
        front = pareto_front(points)
        triple_share = sum(p.protocol.startswith("triple") for p in front)
        assert triple_share / len(front) > 0.8

    def test_dominates_semantics(self):
        a = OperatingPoint("x", 0.0, 100.0, waste=0.1, fatal_probability=0.01)
        b = OperatingPoint("y", 0.0, 100.0, waste=0.2, fatal_probability=0.01)
        c = OperatingPoint("z", 0.0, 100.0, waste=0.1, fatal_probability=0.01)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal points do not dominate


class TestConstraints:
    def test_cheapest_safe(self, points):
        pick = cheapest_safe(points, min_success=0.999)
        assert pick is not None
        assert pick.success_probability >= 0.999
        cheaper = [p for p in points if p.waste < pick.waste]
        assert all(p.success_probability < 0.999 for p in cheaper)

    def test_safest_within(self, points):
        pick = safest_within(points, max_waste=0.2)
        assert pick is not None
        assert pick.waste <= 0.2

    def test_unsatisfiable_returns_none(self, points):
        assert cheapest_safe(points, min_success=1.0) is None or all(
            p.success_probability < 1.0 for p in points
        )
        assert safest_within(points, max_waste=1e-9) is None

    def test_validation(self, points):
        with pytest.raises(ParameterError):
            cheapest_safe(points, min_success=0.0)
        with pytest.raises(ParameterError):
            safest_within(points, max_waste=2.0)


class TestIntro:
    def test_paper_headline_086(self):
        facts = intro.generate(node_mtbf_years=50.0, n_nodes=10**6)
        # §I: "jumps to 1 − 0.999998^1e6 > 0.86".
        assert facts.p_platform_failure_within_hour > 0.86
        assert facts.p_node_survives_hour == pytest.approx(0.999998, abs=2e-6)

    def test_platform_mtbf_is_minutes(self):
        facts = intro.generate()
        assert 60.0 < facts.platform_mtbf_seconds < 3600.0

    def test_no_checkpoint_day_run_hopeless(self):
        facts = intro.generate()
        assert facts.p_one_day_run_no_checkpoint < 1e-20

    def test_small_machine_is_fine(self):
        facts = intro.generate(node_mtbf_years=50.0, n_nodes=100)
        assert facts.p_platform_failure_within_hour < 0.001

    def test_render_and_csv(self):
        facts = intro.generate()
        assert "0.86" in facts.render() or "0.8" in facts.render()
        assert facts.to_csv().count("\n") == 2

    def test_registered_in_cli(self, capsys):
        from repro.cli import main

        assert main(["intro"]) == 0
        assert "exascale reliability" in capsys.readouterr().out
