"""Result persistence: lossless JSON round-trips, corruption handling."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.io import (
    dump_frame,
    dump_result,
    from_envelope,
    iter_campaign_runs,
    load_frame,
    load_result,
    load_results,
    save_results,
    scan_frames,
    scan_results,
    to_envelope,
)
from repro.sim.results import DesResult, MonteCarloSummary


def sample_des(**kw) -> DesResult:
    defaults = dict(
        status="completed", makespan=1234.5, work_target=1000.0,
        work_done=1000.0, failures=7, rollbacks=6, work_lost=55.25,
        commits=12, risk_time=33.5, fatal_time=float("nan"),
        fatal_group=(), meta={"protocol": "triple", "seed": 42},
    )
    defaults.update(kw)
    return DesResult(**defaults)


def sample_summary() -> MonteCarloSummary:
    return MonteCarloSummary.from_samples([0.1, 0.12, 0.11], meta={"x": 1})


class TestRoundTrip:
    def test_des_result(self):
        original = sample_des()
        restored = load_result(dump_result(original))
        assert isinstance(restored, DesResult)
        assert restored.makespan == original.makespan
        assert restored.meta == original.meta
        assert math.isnan(restored.fatal_time)

    def test_fatal_result_with_group(self):
        original = sample_des(status="fatal", fatal_time=99.5,
                              fatal_group=(4, 5))
        restored = load_result(dump_result(original))
        assert restored.fatal_group == (4, 5)
        assert restored.fatal_time == 99.5
        assert math.isnan(restored.waste)  # derived property still works

    def test_infinities(self):
        original = sample_des(fatal_time=float("inf"))
        restored = load_result(dump_result(original))
        assert restored.fatal_time == float("inf")
        original = sample_des(fatal_time=float("-inf"))
        assert load_result(dump_result(original)).fatal_time == float("-inf")

    def test_summary(self):
        original = sample_summary()
        restored = load_result(dump_result(original))
        assert isinstance(restored, MonteCarloSummary)
        assert restored.mean == original.mean
        assert restored.success_ci == original.success_ci

    def test_waste_preserved_through_roundtrip(self):
        original = sample_des()
        assert load_result(dump_result(original)).waste == original.waste

    def test_float_lookalike_strings_stay_strings(self):
        """Regression: literal "nan"/"inf"/"-inf" *strings* in a payload
        must not be coerced into floats by the non-finite float encoding."""
        meta = {"note": "nan", "bound": "inf", "floor": "-inf",
                "nested": ["nan", {"deep": "inf"}]}
        restored = load_result(dump_result(sample_des(meta=dict(meta))))
        assert restored.meta == meta
        assert all(isinstance(v, str)
                   for v in (restored.meta["note"], restored.meta["bound"],
                             restored.meta["floor"]))

    def test_non_finite_floats_still_round_trip(self):
        meta = {"a": float("nan"), "b": float("inf"), "c": float("-inf")}
        restored = load_result(dump_result(sample_des(meta=meta)))
        assert math.isnan(restored.meta["a"])
        assert restored.meta["b"] == float("inf")
        assert restored.meta["c"] == float("-inf")

    def test_marker_shaped_meta_dicts_round_trip(self):
        """User dicts that *look* like the encoder's sentinels must be
        escaped, not reinterpreted."""
        meta = {
            "x": {"__float__": "nan"},
            "y": {"__str__": "inf"},
            "z": {"__dict__": "plain"},
            "w": {"__float__": float("nan")},
        }
        restored = load_result(dump_result(sample_des(meta=meta)))
        assert restored.meta["x"] == {"__float__": "nan"}
        assert isinstance(restored.meta["x"]["__float__"], str)
        assert restored.meta["y"] == {"__str__": "inf"}
        assert restored.meta["z"] == {"__dict__": "plain"}
        assert math.isnan(restored.meta["w"]["__float__"])

    def test_legacy_bare_string_floats_still_load(self):
        """Version-1 files spelled non-finite floats as bare strings;
        records declaring version 1 must keep loading them as floats."""
        import json

        env = json.loads(dump_result(sample_des()))
        env["version"] = 1
        env["payload"]["fatal_time"] = "nan"
        env["payload"]["meta"] = {"period": "inf", "seed": 42}
        restored = from_envelope(env)
        assert math.isnan(restored.fatal_time)
        assert restored.meta["period"] == float("inf")

    def test_legacy_records_never_see_sentinels(self):
        """Version-1 payloads predate the sentinels: a v1 user dict that
        happens to be marker-shaped must load as a dict exactly like the
        old decoder produced (values string-coerced, shape intact) — it
        must never collapse into a float."""
        import json

        env = json.loads(dump_result(sample_des()))
        env["version"] = 1
        env["payload"]["fatal_time"] = 0.0  # keep the payload JSON-clean
        env["payload"]["meta"] = {"odd": {"__float__": "nan"},
                                  "wrapped": {"__dict__": {"a": 1}}}
        restored = from_envelope(env)
        odd = restored.meta["odd"]
        assert isinstance(odd, dict) and math.isnan(odd["__float__"])
        assert restored.meta["wrapped"] == {"__dict__": {"a": 1}}

    def test_version_is_stamped_per_record(self):
        import json

        assert json.loads(dump_result(sample_des()))["version"] == 2
        assert json.loads(
            dump_frame(sample_des(), cell=0, replica=0, seq=0)
        )["version"] == 2


class TestMetaRoundTripProperties:
    """Hypothesis: envelopes are lossless for arbitrary meta payloads."""

    from hypothesis import given, settings, strategies as st

    meta_strings = st.dictionaries(st.text(), st.text(), max_size=8)

    @settings(max_examples=150)
    @given(meta=meta_strings)
    def test_string_valued_meta_round_trips(self, meta):
        restored = load_result(dump_result(sample_des(meta=meta)))
        assert restored.meta == meta

    @settings(max_examples=150)
    @given(meta=st.dictionaries(
        st.text(max_size=20),
        st.one_of(
            st.text(max_size=20),
            st.floats(allow_nan=False),
            st.just(float("inf")),
            st.just(float("-inf")),
            st.integers(min_value=-2**53, max_value=2**53),
            st.booleans(),
            st.none(),
            st.dictionaries(st.text(max_size=10), st.text(max_size=10),
                            max_size=3),
        ),
        max_size=6,
    ))
    def test_json_valued_meta_round_trips(self, meta):
        restored = load_result(dump_result(sample_des(meta=meta)))
        assert restored.meta == meta


class TestFiles:
    def test_save_and_stream(self, tmp_path):
        results = [sample_des(makespan=1000.0 + i) for i in range(5)]
        path = tmp_path / "runs.jsonl"
        assert save_results(results, path) == 5
        loaded = list(load_results(path))
        assert [r.makespan for r in loaded] == [r.makespan for r in results]

    def test_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des()], path)
        save_results([sample_summary()], path, append=True)
        loaded = list(load_results(path))
        assert len(loaded) == 2
        assert isinstance(loaded[0], DesResult)
        assert isinstance(loaded[1], MonteCarloSummary)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n\n\n")
        assert len(list(load_results(path))) == 1

    def test_corrupt_line_reports_position(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n{broken\n")
        with pytest.raises(ParameterError, match="runs.jsonl:2"):
            list(load_results(path))


class TestValidation:
    def test_rejects_foreign_envelope(self):
        with pytest.raises(ParameterError):
            from_envelope({"format": "something-else"})
        with pytest.raises(ParameterError):
            from_envelope([1, 2, 3])

    def test_rejects_future_version(self):
        env = to_envelope(sample_des())
        env["version"] = 99
        with pytest.raises(ParameterError, match="version"):
            from_envelope(env)

    def test_rejects_unknown_kind(self):
        env = to_envelope(sample_des())
        env["kind"] = "Mystery"
        with pytest.raises(ParameterError, match="kind"):
            from_envelope(env)

    def test_rejects_corrupt_payload(self):
        env = to_envelope(sample_des())
        env["payload"]["bogus_field"] = 1
        with pytest.raises(ParameterError, match="corrupt"):
            from_envelope(env)

    def test_rejects_unserialisable(self):
        with pytest.raises(ParameterError):
            to_envelope(object())  # type: ignore[arg-type]

    def test_rejects_bad_json(self):
        with pytest.raises(ParameterError):
            load_result("{nope")


class TestScanResults:
    """Tolerant prefix scanning (the campaign-resume recovery primitive)."""

    def test_yields_offsets_usable_for_truncation(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des(), sample_des(failures=9)], path)
        scanned = list(scan_results(path))
        assert len(scanned) == 2
        (first, off1), (second, off2) = scanned
        assert first.failures == 7 and second.failures == 9
        assert path.read_bytes()[:off1].endswith(b"\n")
        assert off2 == path.stat().st_size

    def test_stops_at_partial_trailing_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des()], path)
        full = path.read_bytes()
        path.write_bytes(full + full[: len(full) // 2])  # torn second write
        scanned = list(scan_results(path))
        assert len(scanned) == 1
        assert scanned[0][1] == len(full)

    def test_stops_at_corrupt_line_without_raising(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n{broken}\n"
                        + dump_result(sample_des()) + "\n")
        scanned = list(scan_results(path))
        assert len(scanned) == 1  # nothing after the corruption is trusted

    def test_stops_at_valid_json_with_corrupt_payload(self, tmp_path):
        """Bit-flipped payloads that still parse as JSON must not escape
        as AttributeError — they end the scan like any corruption."""
        import json

        path = tmp_path / "runs.jsonl"
        bad = json.dumps({"format": "repro-results", "version": 1,
                          "kind": "DesResult", "payload": "oops"})
        path.write_text(dump_result(sample_des()) + "\n" + bad + "\n")
        scanned = list(scan_results(path))
        assert len(scanned) == 1
        with pytest.raises(ParameterError, match="payload"):
            load_result(bad)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("\n" + dump_result(sample_des()) + "\n\n")
        results = [r for r, _ in scan_results(path)]
        assert len(results) == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(scan_results(path)) == []

    def test_rejects_midfile_corrupt_record_with_offset(self, tmp_path):
        """A JSON-parseable record failing identity checks *mid-file* —
        with intact data behind it — is corruption no append can produce:
        it must raise (with the byte offset), never silently truncate the
        intact tail away."""
        import json

        path = tmp_path / "runs.jsonl"
        first = dump_result(sample_des()) + "\n"
        bad = json.dumps({"format": "repro-results", "version": 1,
                          "kind": "DesResult", "payload": "oops"}) + "\n"
        path.write_text(first + bad + dump_result(sample_des()) + "\n")
        with pytest.raises(ParameterError, match=rf"byte offset {len(first)}"):
            list(scan_results(path))

    def test_midfile_wrong_format_also_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n"
                        + '{"format": "something-else"}' + "\n"
                        + dump_result(sample_des()) + "\n")
        with pytest.raises(ParameterError, match="byte offset"):
            list(scan_results(path))

    def test_trailing_corrupt_record_still_tolerated(self, tmp_path):
        """The same damaged record at the *end* of the file is a torn
        trailing write — the scan ends silently there (resume re-runs)."""
        import json

        path = tmp_path / "runs.jsonl"
        bad = json.dumps({"format": "repro-results", "version": 1,
                          "kind": "DesResult", "payload": "oops"})
        path.write_text(dump_result(sample_des()) + "\n" + bad + "\n")
        assert len(list(scan_results(path))) == 1


class TestFrames:
    """Framed envelopes: the out-of-order sink's record format."""

    def test_round_trip(self):
        original = sample_des()
        frame = load_frame(dump_frame(original, cell=7, replica=2, seq=30))
        assert (frame.cell, frame.replica, frame.seq) == (7, 2, 30)
        assert isinstance(frame.result, DesResult)
        assert frame.result.makespan == original.makespan

    def test_summary_payloads_frame_too(self):
        frame = load_frame(dump_frame(sample_summary(), cell=0, replica=0,
                                      seq=0))
        assert isinstance(frame.result, MonteCarloSummary)

    @pytest.mark.parametrize("field,value", [
        ("cell", -1), ("replica", -2), ("seq", None), ("cell", 1.5),
        ("seq", True),
    ])
    def test_rejects_bad_framing(self, field, value):
        import json

        env = json.loads(dump_frame(sample_des(), cell=0, replica=0, seq=0))
        env[field] = value
        with pytest.raises(ParameterError, match=field):
            load_frame(json.dumps(env))

    def test_rejects_plain_result_envelope(self):
        with pytest.raises(ParameterError, match="repro-frames"):
            load_frame(dump_result(sample_des()))

    def test_dump_rejects_bad_framing(self):
        with pytest.raises(ParameterError, match="cell"):
            dump_frame(sample_des(), cell=-1, replica=0, seq=0)

    def test_scan_frames_offsets_and_truncation(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        lines = [dump_frame(sample_des(failures=i), cell=0, replica=i, seq=i)
                 for i in range(3)]
        full = "\n".join(lines) + "\n"
        path.write_text(full + lines[0][:20])  # torn fourth frame
        scanned = list(scan_frames(path))
        assert [f.replica for f, _ in scanned] == [0, 1, 2]
        assert scanned[-1][1] == len(full.encode())

    def test_scan_frames_rejects_midfile_corruption(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        good = dump_frame(sample_des(), cell=0, replica=0, seq=0)
        path.write_text(good + "\n" + '{"format": "repro-frames"}' + "\n"
                        + good + "\n")
        with pytest.raises(ParameterError, match="byte offset"):
            list(scan_frames(path))

    def test_sink_mode_mismatch_is_named_not_called_corruption(self, tmp_path):
        """Scanning one sink format's file with the other scanner is a
        mode mismatch — the intact file must not be diagnosed as damage."""
        plain, framed = tmp_path / "p.jsonl", tmp_path / "f.jsonl"
        save_results([sample_des()], plain)
        framed.write_text(
            dump_frame(sample_des(), cell=0, replica=0, seq=0) + "\n"
        )
        with pytest.raises(ParameterError, match="other sink mode"):
            list(scan_results(framed))
        with pytest.raises(ParameterError, match="other sink mode"):
            list(scan_frames(plain))


class TestIterCampaignRuns:
    def test_reads_plain_and_framed(self, tmp_path):
        plain, framed = tmp_path / "p.jsonl", tmp_path / "f.jsonl"
        runs = [sample_des(failures=i) for i in range(3)]
        save_results(runs, plain)
        framed.write_text("".join(
            dump_frame(r, cell=0, replica=i, seq=i) + "\n"
            for i, r in enumerate(runs)
        ))
        for path in (plain, framed):
            loaded = list(iter_campaign_runs(path))
            assert [r.failures for r in loaded] == [0, 1, 2]

    def test_rejects_summary_records_anywhere(self, tmp_path):
        """A summary record means the wrong file — even as the last
        intact record, it must not be silently dropped."""
        path = tmp_path / "mixed.jsonl"
        save_results([sample_des(), sample_summary()], path)
        with pytest.raises(ParameterError, match="not a campaign results"):
            list(iter_campaign_runs(path))

    def test_tolerates_torn_trailing_write(self, tmp_path):
        """An interrupted campaign's file is analysable as-is: the intact
        prefix streams, the torn tail is ignored (like the resume scans)."""
        path = tmp_path / "p.jsonl"
        good = dump_result(sample_des())
        path.write_text(good + "\n" + good[:30])
        assert len(list(iter_campaign_runs(path))) == 1

    def test_rejects_midfile_corruption(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text(dump_result(sample_des()) + "\n"
                        + '{"format": "something-else"}' + "\n"
                        + dump_result(sample_des()) + "\n")
        with pytest.raises(ParameterError, match="byte offset"):
            list(iter_campaign_runs(path))

    def test_cell_indices_surface_for_frames_only(self, tmp_path):
        from repro.io import scan_campaign_runs

        plain, framed = tmp_path / "p.jsonl", tmp_path / "f.jsonl"
        save_results([sample_des()], plain)
        framed.write_text(
            dump_frame(sample_des(), cell=5, replica=0, seq=0) + "\n"
        )
        assert [c for c, _ in scan_campaign_runs(plain)] == [None]
        assert [c for c, _ in scan_campaign_runs(framed)] == [5]
