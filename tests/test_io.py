"""Result persistence: lossless JSON round-trips, corruption handling."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.io import (
    dump_result,
    from_envelope,
    load_result,
    load_results,
    save_results,
    scan_results,
    to_envelope,
)
from repro.sim.results import DesResult, MonteCarloSummary


def sample_des(**kw) -> DesResult:
    defaults = dict(
        status="completed", makespan=1234.5, work_target=1000.0,
        work_done=1000.0, failures=7, rollbacks=6, work_lost=55.25,
        commits=12, risk_time=33.5, fatal_time=float("nan"),
        fatal_group=(), meta={"protocol": "triple", "seed": 42},
    )
    defaults.update(kw)
    return DesResult(**defaults)


def sample_summary() -> MonteCarloSummary:
    return MonteCarloSummary.from_samples([0.1, 0.12, 0.11], meta={"x": 1})


class TestRoundTrip:
    def test_des_result(self):
        original = sample_des()
        restored = load_result(dump_result(original))
        assert isinstance(restored, DesResult)
        assert restored.makespan == original.makespan
        assert restored.meta == original.meta
        assert math.isnan(restored.fatal_time)

    def test_fatal_result_with_group(self):
        original = sample_des(status="fatal", fatal_time=99.5,
                              fatal_group=(4, 5))
        restored = load_result(dump_result(original))
        assert restored.fatal_group == (4, 5)
        assert restored.fatal_time == 99.5
        assert math.isnan(restored.waste)  # derived property still works

    def test_infinities(self):
        original = sample_des(fatal_time=float("inf"))
        restored = load_result(dump_result(original))
        assert restored.fatal_time == float("inf")
        original = sample_des(fatal_time=float("-inf"))
        assert load_result(dump_result(original)).fatal_time == float("-inf")

    def test_summary(self):
        original = sample_summary()
        restored = load_result(dump_result(original))
        assert isinstance(restored, MonteCarloSummary)
        assert restored.mean == original.mean
        assert restored.success_ci == original.success_ci

    def test_waste_preserved_through_roundtrip(self):
        original = sample_des()
        assert load_result(dump_result(original)).waste == original.waste


class TestFiles:
    def test_save_and_stream(self, tmp_path):
        results = [sample_des(makespan=1000.0 + i) for i in range(5)]
        path = tmp_path / "runs.jsonl"
        assert save_results(results, path) == 5
        loaded = list(load_results(path))
        assert [r.makespan for r in loaded] == [r.makespan for r in results]

    def test_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des()], path)
        save_results([sample_summary()], path, append=True)
        loaded = list(load_results(path))
        assert len(loaded) == 2
        assert isinstance(loaded[0], DesResult)
        assert isinstance(loaded[1], MonteCarloSummary)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n\n\n")
        assert len(list(load_results(path))) == 1

    def test_corrupt_line_reports_position(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n{broken\n")
        with pytest.raises(ParameterError, match="runs.jsonl:2"):
            list(load_results(path))


class TestValidation:
    def test_rejects_foreign_envelope(self):
        with pytest.raises(ParameterError):
            from_envelope({"format": "something-else"})
        with pytest.raises(ParameterError):
            from_envelope([1, 2, 3])

    def test_rejects_future_version(self):
        env = to_envelope(sample_des())
        env["version"] = 99
        with pytest.raises(ParameterError, match="version"):
            from_envelope(env)

    def test_rejects_unknown_kind(self):
        env = to_envelope(sample_des())
        env["kind"] = "Mystery"
        with pytest.raises(ParameterError, match="kind"):
            from_envelope(env)

    def test_rejects_corrupt_payload(self):
        env = to_envelope(sample_des())
        env["payload"]["bogus_field"] = 1
        with pytest.raises(ParameterError, match="corrupt"):
            from_envelope(env)

    def test_rejects_unserialisable(self):
        with pytest.raises(ParameterError):
            to_envelope(object())  # type: ignore[arg-type]

    def test_rejects_bad_json(self):
        with pytest.raises(ParameterError):
            load_result("{nope")


class TestScanResults:
    """Tolerant prefix scanning (the campaign-resume recovery primitive)."""

    def test_yields_offsets_usable_for_truncation(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des(), sample_des(failures=9)], path)
        scanned = list(scan_results(path))
        assert len(scanned) == 2
        (first, off1), (second, off2) = scanned
        assert first.failures == 7 and second.failures == 9
        assert path.read_bytes()[:off1].endswith(b"\n")
        assert off2 == path.stat().st_size

    def test_stops_at_partial_trailing_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([sample_des()], path)
        full = path.read_bytes()
        path.write_bytes(full + full[: len(full) // 2])  # torn second write
        scanned = list(scan_results(path))
        assert len(scanned) == 1
        assert scanned[0][1] == len(full)

    def test_stops_at_corrupt_line_without_raising(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(dump_result(sample_des()) + "\n{broken}\n"
                        + dump_result(sample_des()) + "\n")
        scanned = list(scan_results(path))
        assert len(scanned) == 1  # nothing after the corruption is trusted

    def test_stops_at_valid_json_with_corrupt_payload(self, tmp_path):
        """Bit-flipped payloads that still parse as JSON must not escape
        as AttributeError — they end the scan like any corruption."""
        import json

        path = tmp_path / "runs.jsonl"
        bad = json.dumps({"format": "repro-results", "version": 1,
                          "kind": "DesResult", "payload": "oops"})
        path.write_text(dump_result(sample_des()) + "\n" + bad + "\n")
        scanned = list(scan_results(path))
        assert len(scanned) == 1
        with pytest.raises(ParameterError, match="payload"):
            load_result(bad)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("\n" + dump_result(sample_des()) + "\n\n")
        results = [r for r, _ in scan_results(path)]
        assert len(results) == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(scan_results(path)) == []
